"""Shared plumbing for the figure-reproduction benches.

Each bench builds the paper's testbed, deploys instances, runs the
figure's workload, prints the same rows/series the paper plots, and
asserts the *shape* (who wins, by roughly what factor).  Results are also
appended to ``benchmarks/results/`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import json
import pathlib

from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed
from repro.guest.osimage import OsImage
from repro.vmm.moderation import FULL_SPEED

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Regression-tracking records live at the repo root (``BENCH_*.json``)
#: so CI can diff them across runs without digging into results/.
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

MB = 2**20
GB = 2**30


def small_image(size_mb: int = 2048, boot_mb: int = 24) -> OsImage:
    """A shrunken image for benches that only need steady state."""
    return OsImage(size_bytes=size_mb * MB, boot_read_bytes=boot_mb * MB,
                   boot_think_seconds=6.0)


def deploy_instances(method: str, node_count: int = 1,
                     image: OsImage | None = None,
                     skip_firmware: bool = True,
                     policy=None,
                     **testbed_kwargs):
    """Build a testbed and deploy ``node_count`` instances."""
    testbed = build_testbed(node_count=node_count, image=image,
                            **testbed_kwargs)
    provisioner = Provisioner(testbed)
    env = testbed.env
    instances = []

    def scenario():
        for index in range(node_count):
            instance = yield from provisioner.deploy(
                method, node_index=index, skip_firmware=skip_firmware,
                policy=policy)
            instances.append(instance)

    env.run(until=env.process(scenario()))
    return testbed, instances


def deploy_to_devirt(method: str = "bmcast", image: OsImage | None = None,
                     node_count: int = 1, **testbed_kwargs):
    """Deploy with BMcast at full speed and wait for de-virtualization."""
    image = image or small_image()
    testbed, instances = deploy_instances(
        method, node_count=node_count, image=image, policy=FULL_SPEED,
        **testbed_kwargs)
    env = testbed.env
    for instance in instances:
        env.run(until=instance.platform.copier.done)
    env.run(until=env.now + 10.0)
    for instance in instances:
        assert instance.platform.phase == "baremetal"
    return testbed, instances


def run(env, generator):
    return env.run(until=env.process(generator))


def emit(name: str, text: str, data=None, figures=None) -> None:
    """Print a figure's table and persist it under results/.

    ``data`` (any JSON-serializable structure — typically the rows the
    table was built from) is additionally written to ``{name}.json`` so
    downstream tooling can consume results without screen-scraping the
    text tables.

    ``figures`` is a flat ``{metric_name: number}`` dict of the bench's
    headline *simulated-time* figures (ready seconds, hit ratios — never
    wall-clock timings, which would make records machine-dependent).
    When given, a record is appended to ``BENCH_{name}.json`` at the
    repo root; ``benchmarks/check_regression.py`` compares the last two
    records and fails CI on a >10% regression.
    """
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(data, indent=2, sort_keys=True, default=str)
            + "\n")
    if figures is not None:
        _append_bench_record(name, figures)


def _append_bench_record(name: str, figures: dict) -> None:
    """Append one normalized record to ``BENCH_{name}.json``.

    The file holds a JSON list of ``{"run": n, "figures": {...}}``
    records in append order.  Only deterministic simulated-time metrics
    belong here: two runs of the same code must produce byte-identical
    figures, so any drift between records is a real code change.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    records = []
    if path.exists():
        try:
            records = json.loads(path.read_text())
        except (ValueError, OSError):
            records = []
        if not isinstance(records, list):
            records = []
    records.append({
        "run": len(records),
        "figures": {key: round(float(value), 6)
                    for key, value in sorted(figures.items())},
    })
    path.write_text(json.dumps(records, indent=2, sort_keys=True)
                    + "\n")


def once(benchmark, function):
    """Run a whole-figure simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
