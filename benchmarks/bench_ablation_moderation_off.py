"""Ablation: moderation disabled (full-speed background copy).

The design-choice check for Section 3.3: without moderation the image
lands sooner, but the guest's storage performance collapses while the
copy runs.  With the paper's three-parameter policy the guest keeps most
of its throughput and deployment still completes in reasonable time.
"""

import pytest

from _common import deploy_instances, emit, once, small_image
from repro.apps.fio import FioBenchmark
from repro.metrics.report import format_table
from repro.vmm.moderation import FULL_SPEED, ModerationPolicy


def run_case(policy, label):
    testbed, [instance] = deploy_instances(
        "bmcast", image=small_image(2048, 8), policy=policy)
    env = testbed.env
    fio = FioBenchmark(instance)
    fio.TOTAL_BYTES = 128 * 2**20
    result = {}

    def scenario():
        yield from fio.layout()
        result["guest_rate"] = yield from fio.read_throughput()

    env.run(until=env.process(scenario()))
    vmm = instance.platform
    env.run(until=vmm.copier.done)
    result["deploy_seconds"] = vmm.copier.elapsed
    return result


def test_ablation_moderation(benchmark):
    results = once(benchmark, lambda: {
        "moderated (paper defaults)": run_case(ModerationPolicy(),
                                               "moderated"),
        "full speed (no moderation)": run_case(FULL_SPEED, "full"),
    })

    rows = [[label, round(result["guest_rate"] / 1e6, 1),
             round(result["deploy_seconds"], 1)]
            for label, result in results.items()]
    emit("ablation_moderation", format_table(
        ["policy", "guest read MB/s during copy", "deployment s"], rows,
        title="Ablation: moderation on/off"))

    moderated = results["moderated (paper defaults)"]
    full = results["full speed (no moderation)"]
    # Moderation trades deployment time for guest throughput.
    assert moderated["guest_rate"] > full["guest_rate"]
    assert full["deploy_seconds"] < moderated["deploy_seconds"]
