"""Ablation: preemption-timer polling vs the soft-timer fallback.

Paper 4.1: the VMX preemption timer gives cycle-granular VMM scheduling;
on CPUs without it, the VMM falls back to piggybacking on hardware
interrupts (soft timers), making polling coarser and jittery.  Measured
as guest OS boot time (copy-on-read latency is polling-bound) and
redirect latency.
"""

import pytest

from _common import deploy_instances, emit, once
from repro.metrics.report import format_table


def boot_metrics(has_preemption_timer: bool):
    testbed, [instance] = deploy_instances(
        "bmcast", has_preemption_timer=has_preemption_timer)
    vmm = instance.platform
    redirects = vmm.deployment.redirects
    mean_redirect = sum(record.latency for record in redirects) \
        / len(redirects)
    return {
        "boot_seconds": instance.guest.boot_seconds,
        "mean_redirect": mean_redirect,
        "poll_interval": vmm.poll_interval,
    }


def test_ablation_soft_timer_fallback(benchmark):
    results = once(benchmark, lambda: {
        "preemption timer": boot_metrics(True),
        "soft-timer fallback": boot_metrics(False),
    })

    rows = [[label,
             f"{result['poll_interval'] * 1e6:.0f}us",
             round(result["boot_seconds"], 1),
             round(result["mean_redirect"] * 1e3, 2)]
            for label, result in results.items()]
    emit("ablation_polling", format_table(
        ["scheduling", "poll interval", "guest boot s",
         "mean redirect ms"], rows,
        title="Ablation: preemption timer vs soft timers"))

    timer = results["preemption timer"]
    soft = results["soft-timer fallback"]
    # Coarser polling -> slower redirects -> slower boot.
    assert soft["mean_redirect"] > timer["mean_redirect"]
    assert soft["boot_seconds"] > timer["boot_seconds"]
    # But the fallback still works (boot completes within ~2x).
    assert soft["boot_seconds"] < timer["boot_seconds"] * 2.0
