"""Ablation: prefetch-aware background copy (paper 3.3's optimization).

"We could configure the moderation function to prefetch the disk regions
required for OS startup ... which would potentially boost OS startup
time."  The provider profiles the image's boot once; the copier then
copies those blocks first, un-moderated, so most boot reads find local
data instead of redirecting to the server.
"""

import pytest

from _common import emit, once
from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed
from repro.metrics.report import format_table


def boot_with(prefetch: bool):
    testbed = build_testbed()
    provisioner = Provisioner(testbed)
    env = testbed.env
    options = {}
    if prefetch:
        options["prefetch_lbas"] = testbed.image.boot_lbas()

    def scenario():
        return (yield from provisioner.deploy(
            "bmcast", skip_firmware=True, **options))

    instance = env.run(until=env.process(scenario()))
    vmm = instance.platform
    return {
        "boot_seconds": instance.guest.boot_seconds,
        "redirects": vmm.mediator.redirected_reads,
        "redirected_mb": vmm.deployment.redirected_bytes / 2**20,
    }


def test_ablation_boot_prefetch(benchmark):
    results = once(benchmark, lambda: {
        "no prefetch (paper default)": boot_with(False),
        "boot-profile prefetch": boot_with(True),
    })

    rows = [[label, round(result["boot_seconds"], 1),
             result["redirects"], round(result["redirected_mb"], 1)]
            for label, result in results.items()]
    emit("ablation_prefetch", format_table(
        ["configuration", "guest boot s", "redirects", "redirected MB"],
        rows, title="Ablation: prefetching the boot working set"))

    plain = results["no prefetch (paper default)"]
    prefetched = results["boot-profile prefetch"]
    # Prefetch converts redirects into local reads and speeds up boot.
    assert prefetched["redirects"] < plain["redirects"] * 0.7
    assert prefetched["boot_seconds"] < plain["boot_seconds"]
