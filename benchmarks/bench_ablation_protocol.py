"""Ablations on the extended AoE protocol (paper 4.2).

* Jumbo frames (9000 MTU) vs standard Ethernet (1500): the paper's
  protocol extension; measured as background-copy retrieval rate.
* Retransmission under loss: deployment completes correctly across a
  lossy switch, at a throughput cost.
"""

import pytest

from _common import emit, once, small_image
from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed
from repro.metrics.report import format_table
from repro.vmm.moderation import FULL_SPEED

IMAGE_MB = 1024


def deployment_metrics(mtu: int = 9000, loss: float = 0.0):
    testbed = build_testbed(image=small_image(IMAGE_MB, 8), mtu=mtu,
                            loss_probability=loss)
    provisioner = Provisioner(testbed)
    env = testbed.env

    def scenario():
        return (yield from provisioner.deploy(
            "bmcast", skip_firmware=True, policy=FULL_SPEED))

    instance = env.run(until=env.process(scenario()))
    vmm = instance.platform
    env.run(until=vmm.copier.done)
    env.run(until=env.now + 5.0)
    rate = IMAGE_MB * 2**20 / vmm.copier.elapsed
    return {
        "rate": rate,
        "retransmissions": vmm.initiator.retransmissions,
        "complete": vmm.bitmap.complete,
        "verified": testbed.image.verify_deployed(
            testbed.node.disk.contents, instance.guest.written),
    }


def test_ablation_jumbo_frames(benchmark):
    results = once(benchmark, lambda: {
        "jumbo (9000)": deployment_metrics(mtu=9000),
        "standard (1500)": deployment_metrics(mtu=1500),
    })

    rows = [[label, round(result["rate"] / 1e6, 1),
             result["retransmissions"]]
            for label, result in results.items()]
    emit("ablation_jumbo", format_table(
        ["MTU", "copy rate MB/s", "retransmissions"], rows,
        title="Ablation: jumbo frames"))

    assert results["jumbo (9000)"]["rate"] \
        > results["standard (1500)"]["rate"]
    for result in results.values():
        assert result["complete"] and result["verified"]


def test_ablation_retransmission_under_loss(benchmark):
    results = once(benchmark, lambda: {
        "lossless": deployment_metrics(loss=0.0),
        "0.5% frame loss": deployment_metrics(loss=0.005),
    })

    rows = [[label, round(result["rate"] / 1e6, 1),
             result["retransmissions"], str(result["verified"])]
            for label, result in results.items()]
    emit("ablation_loss", format_table(
        ["network", "copy rate MB/s", "retransmissions", "verified"],
        rows, title="Ablation: retransmission under frame loss"))

    lossy = results["0.5% frame loss"]
    assert lossy["retransmissions"] > 0
    assert lossy["complete"] and lossy["verified"], \
        "deployment must stay correct under loss"
    assert lossy["rate"] < results["lossless"]["rate"]
