"""Ablation: dedicated vs shared management NIC (paper Section 6).

The paper implements shared-NIC mediation (shadow ring buffers) but
chooses a dedicated NIC "mainly because of the performance reason":
mediation adds latency and jitter to guest networking, and deployment
traffic scrambles for bandwidth with the guest.  This bench measures all
three effects during an active full-speed background copy.
"""

import statistics

import pytest

from _common import emit, once, small_image
from repro.cloud.scenario import build_testbed
from repro.guest.driver_e1000 import E1000Driver
from repro.metrics.report import format_table
from repro.net.e1000 import E1000Nic
from repro.net.nic import Nic
from repro.sim import Interrupt
from repro.vmm.bmcast import BmcastVmm
from repro.vmm.mediator_nic import NicMediator, SharedNicPort
from repro.vmm.moderation import FULL_SPEED

E1000_BASE = 0xFE00_0000
PINGS = 200


def run_config(shared: bool):
    testbed = build_testbed(image=small_image(2048, 8))
    env = testbed.env
    node = testbed.node
    nic = E1000Nic(env, testbed.switch, f"{node.machine.name}-e1000",
                   node.machine, mmio_base=E1000_BASE)
    peer = Nic(env, testbed.switch, "peer")

    def echo():
        try:
            while True:
                frame = yield from peer.recv()
                yield from peer.send(frame.src, frame.payload,
                                     frame.payload_bytes,
                                     protocol=frame.protocol)
        except Interrupt:
            return

    env.process(echo(), name="echo")

    extra = []
    if shared:
        mediator = NicMediator(env, node.machine, nic)
        vmm_port = SharedNicPort(mediator)
        extra = [mediator]
    else:
        vmm_port = node.vmm_nic
    vmm = BmcastVmm(env, node.machine, vmm_port, testbed.server_port,
                    image_sectors=testbed.image.total_sectors,
                    policy=FULL_SPEED, extra_mediators=extra,
                    auto_devirtualize=False)
    driver = E1000Driver(node.machine, nic)
    rtts = []

    def scenario():
        yield from node.machine.power_on()
        yield from node.machine.firmware.network_boot()
        yield from vmm.boot()
        yield from driver.start()
        # Ping while the copier streams at full speed.
        for index in range(PINGS):
            start = env.now
            yield from driver.send("peer", index, 100)
            yield from driver.recv()
            rtts.append(env.now - start)
            yield env.timeout(2e-3)

    env.run(until=env.process(scenario()))
    copy_rate = vmm.copier.write_rate()
    return {
        "mean_rtt": statistics.mean(rtts),
        "p95_rtt": sorted(rtts)[int(len(rtts) * 0.95)],
        "jitter": statistics.stdev(rtts),
        "copy_rate": copy_rate,
    }


def test_ablation_shared_nic(benchmark):
    results = once(benchmark, lambda: {
        "dedicated NIC (paper's choice)": run_config(shared=False),
        "shared NIC (shadow rings)": run_config(shared=True),
    })

    rows = [[label,
             round(result["mean_rtt"] * 1e6, 1),
             round(result["p95_rtt"] * 1e6, 1),
             round(result["jitter"] * 1e6, 1),
             round(result["copy_rate"] / 1e6, 1)]
            for label, result in results.items()]
    emit("ablation_shared_nic", format_table(
        ["configuration", "ping RTT us", "p95 us", "jitter us",
         "copy MB/s"], rows,
        title="Ablation: dedicated vs shared management NIC "
        "(during full-speed copy)"))

    dedicated = results["dedicated NIC (paper's choice)"]
    shared = results["shared NIC (shadow rings)"]
    # The paper's reasons to prefer a dedicated NIC, quantified:
    # 1. mediation + contention increase guest latency and jitter;
    assert shared["mean_rtt"] > dedicated["mean_rtt"]
    assert shared["jitter"] > dedicated["jitter"]
    # 2. the copy and the guest scramble for one wire, so the copy is
    #    slower than with its own NIC.
    assert shared["copy_rate"] < dedicated["copy_rate"] * 1.02
