"""Ablation: single-threaded vblade vs the paper's thread-pool server.

Paper 4.2: stock vblade is single-threaded and bottlenecks when the VMM
streams read requests; the paper added a thread pool.  Measured here as
the aggregate image-copy rate of several instances deploying at once.
"""

import pytest

from _common import emit, once, small_image
from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed
from repro.metrics.report import format_table
from repro.vmm.moderation import FULL_SPEED

NODES = 3


def deployment_time(workers: int) -> float:
    """Wall time from first copy start to the last node fully deployed,
    with all nodes deploying simultaneously (the scale-up burst)."""
    testbed = build_testbed(node_count=NODES, image=small_image(1024, 8),
                            server_workers=workers)
    provisioner = Provisioner(testbed)
    env = testbed.env
    instances = []

    def one(index):
        instance = yield from provisioner.deploy(
            "bmcast", node_index=index, skip_firmware=True,
            policy=FULL_SPEED)
        instances.append(instance)
        yield instance.platform.copier.done

    processes = [env.process(one(index)) for index in range(NODES)]
    env.run(until=env.all_of(processes))
    copiers = [instance.platform.copier for instance in instances]
    first_start = min(copier.started_at for copier in copiers)
    last_finish = max(copier.finished_at for copier in copiers)
    return last_finish - first_start


def test_ablation_vblade_thread_pool(benchmark):
    times = once(benchmark, lambda: {
        "single-threaded (stock vblade)": deployment_time(1),
        "thread pool (paper's version)": deployment_time(8),
    })

    rows = [[label, round(seconds, 1)] for label, seconds in times.items()]
    emit("ablation_vblade", format_table(
        ["server", f"time to deploy {NODES} nodes (s)"], rows,
        title="Ablation: AoE server threading"))

    single = times["single-threaded (stock vblade)"]
    pooled = times["thread pool (paper's version)"]
    assert pooled < single, "the pool must help under concurrent deploys"
