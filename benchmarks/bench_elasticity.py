"""Elasticity: what agility buys when demand moves.

The paper makes a single deployment fast; this bench closes the loop
the argument implies.  A flash crowd hits a small fleet run by the
elastic control plane (repro.ctl), and we score each autoscaler
policy on the two numbers an operator actually trades off:

* **SLO attainment** — fraction of requests whose arrival-to-ready
  time met the deadline (higher is better);
* **wasted node-seconds** — provisioned-but-not-serving capacity
  (lower is better; the overprovisioning bill).

The headroom policy buys its deadlines with spare metal around the
clock; the reactive policy leans on fast deploy + fast reclaim and
should land a far smaller waste bill.

Second measurement: **cache-aware placement**.  Reclaimed-with-
preserve nodes keep their pristine image blocks, so a placement
policy that lands deployments on them skips the origin fetch
entirely.  We pre-warm half the fleet via the reclaim path, then
launch a 4-node wave under each placement at *equal fleet size* and
compare p95 time-to-ready — round-robin sends the wave to cold nodes
that contend for one origin server; cache-aware sends it to the warm
ones.
"""

import os

from _common import MB, emit, once
from repro.cloud import build_testbed
from repro.ctl import (DEMANDS, PLACEMENTS, POLICIES, ElasticController,
                       NodePool, image_block_set, percentile)
from repro.guest.osimage import OsImage
from repro.metrics.report import format_table

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

IMAGE_MB = 64 if QUICK else 256
NODES = 6 if QUICK else 8
DURATION = 1500.0 if QUICK else 2700.0
SPIKE_AT = 600.0
TICK = 15.0
SEED = 20150314
WAVE = 4

POLICY_NAMES = ("reactive", "predictive", "headroom")


def _image() -> OsImage:
    return OsImage(size_bytes=IMAGE_MB * MB, boot_read_bytes=16 * MB,
                   boot_think_seconds=3.0)


def _run_policy(policy_name: str) -> dict:
    """One flash-crowd run; returns the controller's report."""
    testbed = build_testbed(node_count=NODES, server_count=1, p2p=True,
                            image=_image())
    pool = NodePool(testbed, vmxoff_mode="resident")
    demand = DEMANDS["flash-crowd"](spike_at=SPIKE_AT, seed=SEED)
    controller = ElasticController(
        pool, demand, POLICIES[policy_name](),
        PLACEMENTS["cache-aware"](), tick=TICK)
    env = testbed.env
    env.run(until=env.process(controller.run(DURATION), name="ctl-loop"))
    return controller.report()


def _run_placement(placement_name: str) -> float:
    """p95 time-to-ready of a 4-node wave after pre-warming the fleet.

    The high-index half of the fleet is deployed, de-virtualized, and
    reclaimed with preserve — free nodes that still hold the image.
    Round-robin then sends the wave to the cold low indexes; the
    cache-aware policy finds the warm ones.  Same fleet, same image,
    same origin: the difference is pure placement.
    """
    testbed = build_testbed(node_count=NODES, server_count=1, p2p=True,
                            image=_image())
    pool = NodePool(testbed, vmxoff_mode="resident")
    env = testbed.env
    warm = range(NODES // 2, NODES)

    def prewarm():
        for index in warm:
            yield from pool.deploy(index)
        for index in warm:
            while pool.nodes[index].vmm.phase != "baremetal":
                yield env.timeout(5.0)
        for index in warm:
            yield from pool.reclaim(index, preserve=True)

    env.run(until=env.process(prewarm(), name="prewarm"))
    placement = PLACEMENTS[placement_name]()
    blocks = image_block_set(testbed)
    before = len(pool.time_to_ready)

    def wave():
        free = pool.free_nodes()
        deploys = []
        for _ in range(WAVE):
            index = placement.choose(pool, free, blocks)
            free = [record for record in free if record.index != index]
            deploys.append(env.process(pool.deploy(index),
                                       name=f"wave-{index}"))
        yield env.all_of(deploys)

    env.run(until=env.process(wave(), name="wave"))
    return percentile(pool.time_to_ready[before:], 95)


def run_figure():
    policies = {name: _run_policy(name) for name in POLICY_NAMES}
    placements = {name: _run_placement(name)
                  for name in ("round-robin", "cache-aware")}
    return {"policies": policies, "placements": placements}


def test_elasticity(benchmark):
    results = once(benchmark, run_figure)
    policies = results["policies"]
    placements = results["placements"]

    rows = [
        [name,
         report["requests"], report["served"],
         f"{report['slo_attainment']:.0%}",
         report["ttr_p95_seconds"],
         round(report["wasted_node_seconds"], 0),
         report["scale_ups"], report["scale_downs"],
         report["reclaims"]]
        for name, report in policies.items()
    ]
    placement_rows = [
        [name, round(p95, 1)] for name, p95 in placements.items()
    ]
    text = format_table(
        ["policy", "requests", "served", "SLO met", "p95 ttr (s)",
         "wasted node-s", "ups", "downs", "reclaims"],
        rows,
        title=f"Flash crowd: {NODES} nodes, {IMAGE_MB}-MB image"
        f"{', quick' if QUICK else ''}")
    text += "\n" + format_table(
        ["placement", "wave p95 ttr (s)"], placement_rows,
        title=f"Warm-pool placement: {WAVE}-node wave, "
        f"{NODES // 2} nodes pre-warmed via reclaim")
    emit("elasticity", text,
         data={
             "image_mb": IMAGE_MB, "nodes": NODES, "quick": QUICK,
             "duration": DURATION, "seed": SEED,
             "policies": policies,
             "placements": {name: round(p95, 3)
                            for name, p95 in placements.items()},
         },
         figures={
             **{f"{name}_slo_attainment": report["slo_attainment"]
                for name, report in policies.items()},
             **{f"{name}_wasted_node_seconds":
                report["wasted_node_seconds"]
                for name, report in policies.items()},
             **{f"{name}_ttr_p95_seconds": report["ttr_p95_seconds"]
                for name, report in policies.items()},
             "round_robin_wave_p95_seconds": placements["round-robin"],
             "cache_aware_wave_p95_seconds": placements["cache-aware"],
         })

    if QUICK:
        return  # tiny image: crash/JSON health only, no shape asserts
    # 1. Placement: at equal fleet size, landing the wave on warm
    #    reclaimed nodes must measurably beat round-robin's cold picks.
    assert placements["cache-aware"] < 0.9 * placements["round-robin"], \
        (f"cache-aware {placements['cache-aware']:.1f}s vs "
         f"round-robin {placements['round-robin']:.1f}s")
    # 2. Overprovisioning pays for its deadlines with idle metal: the
    #    headroom policy must waste more node-seconds than reactive.
    assert (policies["headroom"]["wasted_node_seconds"]
            > policies["reactive"]["wasted_node_seconds"]), \
        "headroom should waste more capacity than reactive"
    # 3. The loop actually breathes: every policy grew, reclaimed, and
    #    served (nearly) everything — a sub-threshold tail request may
    #    legitimately still be queued when the run ends.
    for name, report in policies.items():
        assert report["served"] >= 0.9 * report["requests"], name
        assert report["scale_ups"] >= 1, name
        assert report["reclaims"] >= 1, name
