"""Figure 4: OS startup time by deployment method.

Paper's measured bars (seconds): Baremetal 162 (133 firmware + 29 boot),
BMcast 63 (5 VMM + 58 boot), Image Copy 544, NFS-root netboot 49 (boot
only), KVM/NFS 72, KVM/iSCSI 85.  Headline: BMcast starts a bare-metal
instance 8.6x faster than image copying (excluding the first firmware
initialization) and 3.5x faster including it.
"""

import os

from _common import deploy_instances, emit, once, small_image
from repro.metrics.report import format_table

#: Quick mode (CI smoke): a small image instead of the paper's 32 GB,
#: so absolute times shift and the shape assertions are skipped — the
#: run only has to complete and emit well-formed results.
QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

METHODS = ("baremetal", "bmcast", "image-copy", "network-boot",
           "kvm-nfs", "kvm-iscsi")

PAPER_SECONDS = {
    "baremetal": 162.0,
    "bmcast": 63.0,
    "image-copy": 544.0,
    "network-boot": 49.0,
    "kvm-nfs": 72.0,
    "kvm-iscsi": 85.0,
}


def run_figure():
    results = {}
    image = small_image(512, 16) if QUICK else None
    for method in METHODS:
        # skip_firmware reproduces the paper's headline accounting
        # (excluding the first firmware initialization); the baremetal
        # row keeps it so the full cold-boot bar exists too.
        testbed, [instance] = deploy_instances(
            method, image=image, skip_firmware=(method != "baremetal"))
        results[method] = instance.timeline
    return results


def test_fig04_startup_time(benchmark):
    timelines = once(benchmark, run_figure)

    rows = []
    for method in METHODS:
        timeline = timelines[method]
        segments = "; ".join(f"{label} {seconds:.0f}s"
                             for label, seconds in timeline.segments)
        rows.append([method, round(timeline.total, 1),
                     PAPER_SECONDS[method], segments])
    measured = {method: timelines[method].total for method in METHODS}
    emit("fig04_startup", format_table(
        ["method", "measured s", "paper s", "segments"], rows,
        title="Figure 4: OS startup time"),
        data={method: {
            "measured_seconds": round(measured[method], 3),
            "paper_seconds": PAPER_SECONDS[method],
            "segments": [[label, round(seconds, 3)] for label, seconds
                         in timelines[method].segments],
        } for method in METHODS},
        figures={f"{method}_ready_seconds": measured[method]
                 for method in METHODS})
    if QUICK:
        return  # shrunken image: paper-shape bands do not apply
    # Shape assertions (the paper's claims):
    # 1. BMcast ~8-9x faster than image copy (both exclude firmware).
    speedup = measured["image-copy"] / measured["bmcast"]
    assert 6.0 < speedup < 11.0, f"speedup {speedup:.1f} out of band"
    # 2. Network boot is the quickest start (no deployment at all).
    assert measured["network-boot"] < measured["bmcast"]
    # 3. BMcast's VMM boots much faster than KVM (5 s vs 30 s) and the
    #    full BMcast start beats both KVM variants.
    assert measured["bmcast"] < measured["kvm-nfs"]
    assert measured["bmcast"] < measured["kvm-iscsi"]
    # 4. KVM/NFS guest boots faster than KVM/iSCSI.
    assert measured["kvm-nfs"] < measured["kvm-iscsi"]
    # 5. Everything lands within ~25% of the paper's absolute numbers.
    for method, paper in PAPER_SECONDS.items():
        ratio = measured[method] / paper
        assert 0.7 < ratio < 1.3, f"{method}: {measured[method]:.0f}s " \
            f"vs paper {paper:.0f}s"
