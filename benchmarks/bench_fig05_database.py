"""Figure 5: database throughput/latency across the deployment phases.

Paper: YCSB against memcached (95/5 reads) and Cassandra (30/70) on a
freshly launched BMcast instance.  During the deploy phase throughput
sits at ~94.8% (memcached) / ~91.4% (Cassandra) of bare metal — on par
with KVM+ELI, which is *not* deploying anything — then steps up to the
bare-metal level at de-virtualization with no suspension.  Latency
mirrors it (+7% during deploy, bare-metal after).
"""

import pytest

from _common import deploy_instances, emit, once, run
from repro.apps.kvstore import CASSANDRA, MEMCACHED, KvStoreServer
from repro.apps.ycsb import READ_HEAVY, WRITE_HEAVY, YcsbBenchmark
from repro.guest.osimage import OsImage
from repro.metrics.report import format_table

#: Sized so the deploy phase lasts minutes (like the paper's 16-17) but
#: the bench stays tractable: 8 GB at the same ~45 MB/s copy rate.
IMAGE = dict(size_bytes=8 * 2**30, boot_read_bytes=24 * 2**20,
             boot_think_seconds=6.0)

POST_DEVIRT_SECONDS = 120.0
WINDOW = 10.0

ENGINES = {
    "memcached": (MEMCACHED, READ_HEAVY),
    "cassandra": (CASSANDRA, WRITE_HEAVY),
}

PAPER = {
    # (deploy tp ratio, deploy latency ratio) vs bare metal
    "memcached": (0.948, 1.036),
    "cassandra": (0.914, 1.068),
}


def run_engine(engine_name):
    profile, write_fraction = ENGINES[engine_name]
    series = {}
    devirt_at = {}
    for method in ("baremetal", "kvm-local", "bmcast"):
        testbed, [instance] = deploy_instances(
            method, image=OsImage(**IMAGE))
        env = testbed.env
        store = KvStoreServer(instance, profile)
        bench = YcsbBenchmark(store, write_fraction, window=WINDOW)
        if method == "bmcast":
            vmm = instance.platform
            started = env.now

            def scenario():
                from repro.sim import Interrupt
                try:
                    yield from bench.run(3600.0)
                except Interrupt:
                    pass

            client = env.process(scenario())
            env.run(until=vmm.copier.done)
            env.run(until=env.now + POST_DEVIRT_SECONDS)
            client.interrupt("enough")
            env.run(until=env.now + WINDOW)
            devirt_stamp = next(stamp for stamp, phase in vmm.phase_log
                                if phase == "baremetal")
            devirt_at[method] = devirt_stamp - started
        else:
            def scenario():
                yield from bench.run(300.0)

            run(env, scenario())
        series[method] = bench
    return series, devirt_at


def summarize(engine_name, series, devirt_at):
    bare_tp = series["baremetal"].mean_throughput()
    bare_lat = series["baremetal"].mean_latency()
    devirt = devirt_at["bmcast"]
    bmcast = series["bmcast"]
    deploy_tp = bmcast.throughput.mean_between(WINDOW, devirt) / bare_tp
    deploy_lat = bmcast.latency.mean_between(WINDOW, devirt) / bare_lat
    after_tp = bmcast.throughput.mean_between(
        devirt + WINDOW, float("inf")) / bare_tp
    after_lat = bmcast.latency.mean_between(
        devirt + WINDOW, float("inf")) / bare_lat
    kvm_tp = series["kvm-local"].mean_throughput() / bare_tp
    kvm_lat = series["kvm-local"].mean_latency() / bare_lat
    return {
        "bare_tp": bare_tp, "bare_lat": bare_lat,
        "deploy_tp": deploy_tp, "deploy_lat": deploy_lat,
        "after_tp": after_tp, "after_lat": after_lat,
        "kvm_tp": kvm_tp, "kvm_lat": kvm_lat,
        "devirt_at": devirt,
    }


@pytest.mark.parametrize("engine_name", ["memcached", "cassandra"])
def test_fig05_database(benchmark, engine_name):
    series, devirt_at = once(
        benchmark, lambda: run_engine(engine_name))
    stats = summarize(engine_name, series, devirt_at)

    paper_tp, paper_lat = PAPER[engine_name]
    rows = [
        ["bare-metal tp (KT/s)", stats["bare_tp"] / 1e3, "", ""],
        ["deploy tp ratio", stats["deploy_tp"], paper_tp, ""],
        ["KVM tp ratio", stats["kvm_tp"], "~0.93", ""],
        ["post-devirt tp ratio", stats["after_tp"], 1.0, ""],
        ["deploy latency ratio", stats["deploy_lat"], paper_lat, ""],
        ["KVM latency ratio", stats["kvm_lat"], "1.1-1.19", ""],
        ["post-devirt latency ratio", stats["after_lat"], 1.0, ""],
        ["devirt at (s)", stats["devirt_at"], "960-1020 @32GB", ""],
    ]
    emit(f"fig05_{engine_name}", format_table(
        ["metric", "measured", "paper", ""], rows,
        title=f"Figure 5 ({engine_name}): performance across phases"))

    # Also emit the time series the figure actually plots (normalized to
    # bare metal, with the de-virtualization step visible).
    bmcast = series["bmcast"]
    bare_tp = series["baremetal"].mean_throughput()
    bare_lat = series["baremetal"].mean_latency()
    series_rows = [
        [round(time, 0), round(tp / bare_tp, 3),
         round(latency / bare_lat, 3),
         "devirt" if abs(time - stats["devirt_at"]) < WINDOW else ""]
        for (time, tp), (_, latency) in zip(
            bmcast.throughput.samples, bmcast.latency.samples)
    ]
    emit(f"fig05_{engine_name}_series", format_table(
        ["t (s)", "tp ratio", "latency ratio", ""], series_rows,
        title=f"Figure 5 ({engine_name}): BMcast series vs bare metal"))

    # Shape assertions:
    # 1. Deploy-phase throughput sits in the low-90s% of bare metal,
    #    comparable to KVM (which is not deploying anything).
    assert 0.88 < stats["deploy_tp"] < 0.98
    assert abs(stats["deploy_tp"] - stats["kvm_tp"]) < 0.06
    # 2. De-virtualization steps performance back to bare metal; KVM
    #    never does.
    assert stats["after_tp"] == pytest.approx(1.0, abs=0.03)
    assert stats["after_lat"] == pytest.approx(1.0, abs=0.03)
    assert stats["kvm_tp"] < 0.97
    # 3. Latency during deploy is a few percent worse than bare metal.
    assert 1.0 < stats["deploy_lat"] < 1.15
