"""Figure 6: MPI collective latency on a 10-node InfiniBand cluster.

Paper: OSU micro-benchmarks with MPICH2.  BMcast (while deploying) is
nearly identical to bare metal on most collectives; KVM pays heavily —
Allgather latency reaches 235% of bare metal, Allreduce +35%.
"""

from _common import deploy_instances, emit, once, run, small_image
from repro.apps.mpi import COLLECTIVES, MpiCluster
from repro.metrics.report import format_table

NODES = 10
MESSAGE_BYTES = 1024

PAPER_KVM_RATIO = {
    "allgather": 2.35,
    "allreduce": 1.35,
}
PAPER_BMCAST_RATIO = {
    "allgather": 1.0,
    "allreduce": 1.22,
}


def run_figure():
    latencies = {}
    for method in ("baremetal", "bmcast", "kvm-local"):
        testbed, instances = deploy_instances(
            method, node_count=NODES, with_infiniband=True,
            image=small_image(512, 8))
        cluster = MpiCluster(instances)
        measured = {}

        def scenario():
            for collective in COLLECTIVES:
                measured[collective] = yield from cluster.measure(
                    collective, MESSAGE_BYTES, iterations=10)

        run(testbed.env, scenario())
        latencies[method] = measured
    return latencies


def test_fig06_mpi_collectives(benchmark):
    latencies = once(benchmark, run_figure)

    rows = []
    for collective in COLLECTIVES:
        bare = latencies["baremetal"][collective]
        bmcast_ratio = latencies["bmcast"][collective] / bare
        kvm_ratio = latencies["kvm-local"][collective] / bare
        rows.append([collective, bare * 1e6, round(bmcast_ratio, 3),
                     round(kvm_ratio, 3)])
    emit("fig06_mpi", format_table(
        ["collective", "baremetal us", "bmcast ratio", "kvm ratio"],
        rows, title=f"Figure 6: MPI collectives, {NODES} nodes, "
        f"{MESSAGE_BYTES}B messages"))

    for collective in COLLECTIVES:
        bare = latencies["baremetal"][collective]
        bmcast_ratio = latencies["bmcast"][collective] / bare
        kvm_ratio = latencies["kvm-local"][collective] / bare
        # BMcast is near bare metal everywhere; KVM is always worse
        # than BMcast.
        assert bmcast_ratio < 1.3, f"{collective}: bmcast {bmcast_ratio}"
        assert kvm_ratio > bmcast_ratio, f"{collective}"
    # The latency-bound collective shows KVM's big multiple.
    allgather_kvm = (latencies["kvm-local"]["allgather"]
                     / latencies["baremetal"]["allgather"])
    assert allgather_kvm > 1.5
