"""Figure 7: kernel-compile elapsed time.

Paper: kernbench (allnoconfig, -j12) takes ~16 s on bare metal; +8% on
BMcast during deployment (storage sharing cost, bounded by moderation);
+3% on KVM (pure virtualization overhead); identical to bare metal after
de-virtualization.
"""

import pytest

from _common import deploy_instances, deploy_to_devirt, emit, once, run
from repro.apps.kernbench import KernbenchRun
from repro.metrics.report import format_table

PAPER_RATIOS = {
    "baremetal": 1.0,
    "bmcast-deploy": 1.08,
    "bmcast-devirt": 1.0,
    "kvm": 1.03,
}


def run_figure():
    elapsed = {}

    def measure(instance):
        bench = KernbenchRun(instance)

        def scenario():
            return (yield from bench.run())

        return run(instance.env, scenario())

    testbed, [instance] = deploy_instances("baremetal")
    elapsed["baremetal"] = measure(instance)

    testbed, [instance] = deploy_instances("bmcast")
    elapsed["bmcast-deploy"] = measure(instance)

    testbed, [instance] = deploy_to_devirt()
    elapsed["bmcast-devirt"] = measure(instance)

    testbed, [instance] = deploy_instances("kvm-local")
    elapsed["kvm"] = measure(instance)
    return elapsed


def test_fig07_kernbench(benchmark):
    elapsed = once(benchmark, run_figure)
    bare = elapsed["baremetal"]

    rows = [[case, seconds, round(seconds / bare, 3),
             PAPER_RATIOS[case]]
            for case, seconds in elapsed.items()]
    emit("fig07_kernbench", format_table(
        ["case", "seconds", "ratio", "paper ratio"], rows,
        title="Figure 7: kernbench elapsed time"))

    # Shape: deploy > kvm > bare; devirt == bare; deploy cost bounded.
    assert elapsed["bmcast-deploy"] > elapsed["kvm"] > bare
    assert elapsed["bmcast-devirt"] == pytest.approx(bare, rel=0.01)
    assert elapsed["bmcast-deploy"] / bare < 1.15
    assert elapsed["kvm"] / bare == pytest.approx(1.03, abs=0.03)
