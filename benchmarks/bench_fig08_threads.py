"""Figure 8: sysbench threads — lock-holder preemption.

Paper: 1,000 acquire-yield-release iterations over 8 mutexes, 1-24
threads.  KVM's overhead explodes with thread count (+68% at 24 threads,
the lock-holder preemption problem); BMcast stays within ~6% even while
deploying, because it traps almost nothing.
"""

import pytest

from _common import deploy_instances, emit, once, run
from repro.apps.sysbench import ThreadBenchmark
from repro.metrics.report import format_table

THREAD_COUNTS = (1, 2, 4, 8, 12, 16, 20, 24)


def run_figure():
    times = {}
    for method, label in (("baremetal", "baremetal"),
                          ("bmcast", "bmcast-deploy"),
                          ("kvm-local", "kvm")):
        testbed, [instance] = deploy_instances(method)
        bench = ThreadBenchmark(instance)
        measured = {}

        def scenario():
            for threads in THREAD_COUNTS:
                measured[threads] = yield from bench.run(threads)

        run(testbed.env, scenario())
        times[label] = measured
    return times


def test_fig08_threads(benchmark):
    times = once(benchmark, run_figure)

    rows = []
    for threads in THREAD_COUNTS:
        bare = times["baremetal"][threads]
        rows.append([
            threads,
            round(bare * 1e3, 3),
            round(times["bmcast-deploy"][threads] / bare, 3),
            round(times["kvm"][threads] / bare, 3),
        ])
    emit("fig08_threads", format_table(
        ["threads", "baremetal ms", "bmcast ratio", "kvm ratio"], rows,
        title="Figure 8: sysbench threads"))

    bare24 = times["baremetal"][24]
    # KVM +68% at 24 threads (paper), growing with thread count.
    assert times["kvm"][24] / bare24 == pytest.approx(1.68, abs=0.1)
    ratios = [times["kvm"][t] / times["baremetal"][t]
              for t in THREAD_COUNTS]
    assert ratios == sorted(ratios), "KVM overhead must grow"
    # BMcast modest even at 24 threads (paper: ~6%).
    assert times["bmcast-deploy"][24] / bare24 < 1.10
