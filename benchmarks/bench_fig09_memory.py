"""Figure 9: sysbench memory — nested paging and cache pollution.

Paper: allocate-and-write blocks (1-16 KB) until 1 MB is written.  KVM
loses up to 35% at 16-KB blocks (nested paging walks + cache pollution
despite huge pages); BMcast loses ~6% during deployment and nothing
after de-virtualization.
"""

import pytest

from _common import deploy_instances, deploy_to_devirt, emit, once, run
from repro.apps.sysbench import BLOCK_KB_SWEEP, MemoryBenchmark
from repro.metrics.report import format_table


def run_figure():
    throughput = {}
    cases = (("baremetal", deploy_instances, "baremetal"),
             ("bmcast", deploy_instances, "bmcast-deploy"),
             ("bmcast", deploy_to_devirt, "bmcast-devirt"),
             ("kvm-local", deploy_instances, "kvm"))
    for method, builder, label in cases:
        testbed, [instance] = builder(method)
        bench = MemoryBenchmark(instance)
        measured = {}

        def scenario():
            for block_kb in BLOCK_KB_SWEEP:
                measured[block_kb] = yield from bench.run(block_kb)

        run(testbed.env, scenario())
        throughput[label] = measured
    return throughput


def test_fig09_memory(benchmark):
    throughput = once(benchmark, run_figure)

    rows = []
    for block_kb in BLOCK_KB_SWEEP:
        bare = throughput["baremetal"][block_kb]
        rows.append([
            block_kb,
            round(bare / 2**30, 2),
            round(throughput["bmcast-deploy"][block_kb] / bare, 3),
            round(throughput["bmcast-devirt"][block_kb] / bare, 3),
            round(throughput["kvm"][block_kb] / bare, 3),
        ])
    emit("fig09_memory", format_table(
        ["block KB", "baremetal GiB/s", "deploy", "devirt", "kvm"],
        rows, title="Figure 9: sysbench memory throughput ratios"))

    bare16 = throughput["baremetal"][16]
    # KVM: ~35% down at 16-KB blocks.
    assert throughput["kvm"][16] / bare16 == pytest.approx(1 / 1.35,
                                                           abs=0.04)
    # BMcast during deploy: mild (paper ~6%).
    assert throughput["bmcast-deploy"][16] / bare16 > 0.90
    # After devirt: identical to bare metal.
    for block_kb in BLOCK_KB_SWEEP:
        assert throughput["bmcast-devirt"][block_kb] == pytest.approx(
            throughput["baremetal"][block_kb], rel=0.01)
