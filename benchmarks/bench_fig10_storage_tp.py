"""Figure 10: storage throughput (fio, 200 MB sequential, 1-MB blocks).

Paper bare metal: 116.6 MB/s read, 111.9 MB/s write.  BMcast: -4.1%
read during deploy, -1.7% after devirt, writes unchanged.  KVM virtio:
-10.5%/-13.6% (local) and -12.3%/-15.3% (NFS).  Network boot pays the
wire for everything.
"""

import pytest

from _common import deploy_instances, deploy_to_devirt, emit, once, run
from repro.apps.fio import FioBenchmark
from repro.metrics.report import format_table

PAPER_MB_S = {
    "baremetal": (116.6, 111.9),
    "bmcast-deploy": (111.8, 111.9),
    "bmcast-devirt": (114.6, 111.9),
    "netboot": (None, None),
    "kvm-local": (104.4, 96.7),
    "kvm-nfs": (102.3, 94.8),
}


def run_figure():
    rates = {}
    cases = (("baremetal", deploy_instances, "baremetal"),
             ("bmcast", deploy_instances, "bmcast-deploy"),
             ("bmcast", deploy_to_devirt, "bmcast-devirt"),
             ("network-boot", deploy_instances, "netboot"),
             ("kvm-local", deploy_instances, "kvm-local"),
             ("kvm-nfs", deploy_instances, "kvm-nfs"))
    for method, builder, label in cases:
        testbed, [instance] = builder(method)
        fio = FioBenchmark(instance)

        def scenario():
            yield from fio.layout()
            read_bw = yield from fio.read_throughput()
            write_bw = yield from fio.write_throughput()
            return read_bw, write_bw

        rates[label] = run(testbed.env, scenario())
    return rates


def test_fig10_storage_throughput(benchmark):
    rates = once(benchmark, run_figure)

    rows = []
    for label, (read_bw, write_bw) in rates.items():
        paper_read, paper_write = PAPER_MB_S[label]
        rows.append([label, round(read_bw / 1e6, 1),
                     paper_read if paper_read else "-",
                     round(write_bw / 1e6, 1),
                     paper_write if paper_write else "-"])
    emit("fig10_storage_tp", format_table(
        ["case", "read MB/s", "paper", "write MB/s", "paper"], rows,
        title="Figure 10: fio sequential throughput"))

    bare_read, bare_write = rates["baremetal"]
    # Bare metal matches the calibrated drive.
    assert bare_read / 1e6 == pytest.approx(116.6, rel=0.03)
    assert bare_write / 1e6 == pytest.approx(111.9, rel=0.03)
    # BMcast deploy: small read penalty; devirt within a couple %.
    deploy_read, deploy_write = rates["bmcast-deploy"]
    assert 0.90 < deploy_read / bare_read < 1.0
    devirt_read, devirt_write = rates["bmcast-devirt"]
    assert devirt_read / bare_read > 0.97
    assert devirt_write / bare_write > 0.97
    # KVM: roughly 10-15% down on both (paper's virtio penalties).
    kvm_read, kvm_write = rates["kvm-local"]
    assert kvm_read / bare_read == pytest.approx(0.895, abs=0.03)
    assert kvm_write / bare_write == pytest.approx(0.864, abs=0.03)
    nfs_read, nfs_write = rates["kvm-nfs"]
    assert nfs_read < kvm_read * 1.05
