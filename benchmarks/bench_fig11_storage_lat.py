"""Figure 11: storage latency (ioping small reads).

Paper: during the deploy phase guest requests that arrive while a
multiplexed VMM request is in flight get queued, adding ~4.3 ms to the
average small-read latency; after de-virtualization the latency is back
at bare metal (even marginally better in their run).
"""

import pytest

from _common import deploy_instances, deploy_to_devirt, emit, once, run
from repro.apps.fio import IopingBenchmark
from repro.metrics.report import format_table


def run_figure():
    latencies = {}
    cases = (("baremetal", deploy_instances, "baremetal"),
             ("bmcast", deploy_instances, "bmcast-deploy"),
             ("bmcast", deploy_to_devirt, "bmcast-devirt"))
    for method, builder, label in cases:
        testbed, [instance] = builder(method)
        ioping = IopingBenchmark(instance)

        def scenario():
            yield from ioping.layout()
            return (yield from ioping.run())

        latencies[label] = run(testbed.env, scenario())
    return latencies


def test_fig11_storage_latency(benchmark):
    latencies = once(benchmark, run_figure)
    bare = latencies["baremetal"]

    rows = [
        ["baremetal", round(bare * 1e3, 2), "-"],
        ["bmcast-deploy", round(latencies["bmcast-deploy"] * 1e3, 2),
         "+4.3 ms vs baremetal"],
        ["bmcast-devirt", round(latencies["bmcast-devirt"] * 1e3, 2),
         "== baremetal"],
    ]
    emit("fig11_storage_lat", format_table(
        ["case", "mean latency ms", "paper"], rows,
        title="Figure 11: ioping small-read latency"))

    # Deploy adds milliseconds (queueing behind multiplexed VMM writes).
    extra = latencies["bmcast-deploy"] - bare
    assert 0.5e-3 < extra < 10e-3, f"deploy adds {extra * 1e3:.2f} ms"
    # Devirt: no residual latency.
    assert latencies["bmcast-devirt"] == pytest.approx(bare, rel=0.02)
