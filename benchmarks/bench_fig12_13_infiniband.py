"""Figures 12 & 13: raw InfiniBand RDMA throughput and latency.

Paper (ib_rdma_bw / ib_rdma_lat, 64-KB messages x1000): throughput is
identical everywhere — the HCA's command queuing hides virtualization —
but latency is taxed: KVM direct assignment +23.6% (IOMMU, cache
pollution, nested paging), BMcast <1% during deployment, zero after.
"""

import pytest

from _common import deploy_instances, deploy_to_devirt, emit, once, \
    run, small_image
from repro.apps.perftest import RdmaPerfTest
from repro.metrics.report import format_table


def run_figure():
    bandwidth = {}
    latency = {}
    cases = (("baremetal", deploy_instances, "baremetal"),
             ("bmcast", deploy_instances, "bmcast-deploy"),
             ("bmcast", deploy_to_devirt, "bmcast-devirt"),
             ("kvm-local", deploy_instances, "kvm-direct"))
    for method, builder, label in cases:
        testbed, instances = builder(method, node_count=2,
                                     with_infiniband=True,
                                     image=small_image(512, 8))
        test = RdmaPerfTest(instances[0], instances[1])

        def scenario():
            bw = yield from test.bandwidth()
            lat = yield from test.latency(message_bytes=8)
            return bw, lat

        bandwidth[label], latency[label] = run(testbed.env, scenario())
    return bandwidth, latency


def test_fig12_13_infiniband(benchmark):
    bandwidth, latency = once(benchmark, run_figure)
    bare_bw = bandwidth["baremetal"]
    bare_lat = latency["baremetal"]

    rows = [[label,
             round(bandwidth[label] / 1e9, 3),
             round(bandwidth[label] / bare_bw, 4),
             round(latency[label] * 1e6, 3),
             round(latency[label] / bare_lat, 3)]
            for label in bandwidth]
    emit("fig12_13_infiniband", format_table(
        ["case", "bw GB/s", "bw ratio", "lat us", "lat ratio"], rows,
        title="Figures 12-13: RDMA throughput and latency"))

    # Figure 12: throughput identical across platforms.
    for label, bw in bandwidth.items():
        assert bw == pytest.approx(bare_bw, rel=0.01), label
    # Figure 13: KVM +23.6%; BMcast <1% deploy, zero after devirt.
    assert latency["kvm-direct"] / bare_lat == pytest.approx(1.236,
                                                             abs=0.03)
    assert latency["bmcast-deploy"] / bare_lat < 1.02
    assert latency["bmcast-devirt"] == pytest.approx(bare_lat, rel=0.005)
