"""Figure 14: moderation of background copy — the write-interval sweep.

Paper 5.6: with 1024-KB VMM blocks, sweep the VMM-write interval from
1 s down to 1 us and then full speed, measuring guest read (14a) and
guest write (14b) throughput against the VMM's own write throughput.
As the interval shrinks the VMM rate rises and the guest rate falls; the
two never sum to bare metal because the interleaved streams seek against
each other.
"""

import pytest

from _common import deploy_instances, emit, once
from repro import params
from repro.apps.fio import FioBenchmark
from repro.metrics.report import format_table
from repro.vmm.moderation import interval_sweep_policy

INTERVALS = (1.0, 0.1, 0.01, 1e-3, 1e-6, 0.0)
MEASURE_BYTES = 256 * 2**20


def measure_point(interval: float, guest_op: str):
    """Guest and VMM throughput (bytes/s) at one write interval."""
    testbed, [instance] = deploy_instances(
        "bmcast", policy=interval_sweep_policy(interval))
    env = testbed.env
    vmm = instance.platform
    fio = FioBenchmark(instance)
    fio.TOTAL_BYTES = MEASURE_BYTES
    result = {}

    def scenario():
        yield from fio.layout()
        copier = vmm.copier
        vmm_bytes_before = copier.bytes_written + copier.writeback_bytes
        start = env.now
        if guest_op == "read":
            guest_rate = yield from fio.read_throughput()
        else:
            guest_rate = yield from fio.write_throughput()
        elapsed = env.now - start
        vmm_bytes = (copier.bytes_written + copier.writeback_bytes
                     - vmm_bytes_before)
        result["guest"] = guest_rate
        result["vmm"] = vmm_bytes / elapsed

    env.run(until=env.process(scenario()))
    return result["guest"], result["vmm"]


def run_figure(guest_op: str):
    return {interval: measure_point(interval, guest_op)
            for interval in INTERVALS}


@pytest.mark.parametrize("guest_op", ["read", "write"])
def test_fig14_moderation_sweep(benchmark, guest_op):
    points = once(benchmark, lambda: run_figure(guest_op))

    rows = []
    for interval in INTERVALS:
        guest_rate, vmm_rate = points[interval]
        label = "full-speed" if interval == 0 else f"{interval:g}s"
        rows.append([label, round(guest_rate / 1e6, 1),
                     round(vmm_rate / 1e6, 1),
                     round((guest_rate + vmm_rate) / 1e6, 1)])
    bare = params.DISK_READ_BW if guest_op == "read" \
        else params.DISK_WRITE_BW
    emit(f"fig14_moderation_{guest_op}", format_table(
        ["VMM write interval", f"guest {guest_op} MB/s", "VMM MB/s",
         "sum MB/s"], rows,
        title=f"Figure 14{'a' if guest_op == 'read' else 'b'}: "
        f"moderation sweep (bare metal {bare / 1e6:.1f} MB/s)"))

    guest_rates = [points[i][0] for i in INTERVALS]
    vmm_rates = [points[i][1] for i in INTERVALS]
    # Monotone trade-off: shrinking the interval raises VMM throughput
    # and lowers the guest's.
    assert vmm_rates[0] < vmm_rates[-1]
    assert guest_rates[0] > guest_rates[-1]
    # At a 1-s interval the guest is near bare metal.
    assert guest_rates[0] > 0.9 * bare
    # At full speed the VMM gets a large share...
    assert vmm_rates[-1] > 20e6
    # ...and the sum stays below bare metal (seek interference).
    assert guest_rates[-1] + vmm_rates[-1] < bare
