"""Fleet-scale deploy: fluid-flow fast path vs packet mode.

The tentpole figure for the fluid-flow transfer mode
(``repro.net.flow``): a 256-node scale-out deployment — 32 waves of 8,
16 origin replicas, staggered power-ons — run twice on the same seed,
once per-packet and once with ``fluid=True``.  Three claims are
asserted:

* **Wall-clock**: the fluid run must be at least ``SPEEDUP_FLOOR``
  times faster than the packet run (the events collapse from one per
  128 KiB chunk to one per flow arrival/departure).
* **Parity**: per-instance mean time-to-ready and time-to-deploy-
  complete must agree with packet mode within ``PARITY_TOLERANCE``
  (5%) — the fluid model is a fast path, not a different simulation.
* **Steady state**: zero retransmissions in either mode; a NAK or RTO
  would demote fluid mode and invalidate the comparison.

Scenario notes (docs/performance.md#fleet-scale-sizing has the full
derivation):

* ``server_cache_hit_ratio=1.0`` makes the origin stores stateless, so
  every wave is *identical* and the parity figures are exact,
  reproducible numbers rather than samples of a chaotic contention
  process.
* ``poll_interval=100ms`` quantizes the fetch cadence onto a 50 ms
  completion-poll grid in both modes, which absorbs the sub-50 ms
  timing differences between chunk-FIFO and max-min sharing that
  otherwise let the two modes drift into different collision
  equilibria.
* ``stagger_seconds=1.0`` (longer than one coalesced fetch) breaks the
  boot-storm lockstep where a synchronized wave walks its selector
  cursors in unison; 16 replicas for 8-node waves keep the origin
  ports below saturation so collisions stay rare in both modes.
* ``initial_rto=2.0`` is the TCP-style cold-start RTO: a 32 MiB
  coalesced fetch takes ~350 ms, so the protocol's 50 ms default would
  retransmit-storm before the estimator warms up.

Wall figures are the median of ``WALL_REPEATS`` full runs (scheduler
noise is real; the simulated figures are deterministic and identical
across repeats, so only the walls are re-measured).
"""

import os
import statistics
import time

from _common import MB, emit, once
from repro.cloud import Cluster, build_testbed
from repro.cloud.scaleout import WaveScheduler
from repro.guest.osimage import OsImage
from repro.sim import Environment
from repro.vmm.moderation import FULL_SPEED

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

NODES = 32 if QUICK else 256
REPLICAS = 16
WAVE_SIZE = 8
STAGGER_SECONDS = 1.0
COALESCE_BLOCKS = 32
POLL_INTERVAL = 100e-3
INITIAL_RTO = 2.0
IMAGE_MB = 1024
WALL_REPEATS = 3

#: Acceptance floors/tolerances (the tentpole's numbers).  Quick mode
#: keeps a looser wall floor: the fluid run is well under a second per
#: wave, so the ratio is at the mercy of interpreter warm-up.
SPEEDUP_FLOOR = 3.0 if QUICK else 5.0
PARITY_TOLERANCE = 0.05


def _deploy_fleet(fluid: bool) -> dict:
    """One full fleet deployment; returns walls, events, and figures."""
    env = Environment()
    image = OsImage(size_bytes=IMAGE_MB * MB, boot_read_bytes=128 * 1024,
                    boot_think_seconds=0.25)
    testbed = build_testbed(node_count=NODES, server_count=REPLICAS,
                            select_policy="least-outstanding",
                            server_cache_hit_ratio=1.0,
                            image=image, env=env)
    cluster = Cluster(testbed)
    scheduler = WaveScheduler(cluster, wave_size=WAVE_SIZE,
                              seed_fill_fraction=1.0,
                              stagger_seconds=STAGGER_SECONDS)

    def scenario():
        yield from scheduler.run(
            "bmcast", policy=FULL_SPEED, fluid=fluid,
            coalesce_blocks=COALESCE_BLOCKS,
            poll_interval=POLL_INTERVAL, initial_rto=INITIAL_RTO)
        yield from cluster.wait_deployment_complete(settle_seconds=1.0)

    started = time.perf_counter()
    env.run(until=env.process(scenario()))
    wall = time.perf_counter() - started

    instances = cluster.instances
    assert len(instances) == NODES
    ready = [instance.timeline.total for instance in instances]
    complete = [instance.platform.copier.finished_at
                - instance.platform.copier.started_at
                for instance in instances]
    retransmissions = sum(instance.platform.initiator.retransmissions
                          for instance in instances)
    return {
        "wall": wall,
        "events": env.events_processed,
        "ready_mean": sum(ready) / len(ready),
        "complete_mean": sum(complete) / len(complete),
        "retransmissions": retransmissions,
        "fluid_state": instances[0].platform.fluid.describe(),
    }


def run_figure():
    packet_runs = [_deploy_fleet(fluid=False) for _ in range(WALL_REPEATS)]
    fluid_runs = [_deploy_fleet(fluid=True) for _ in range(WALL_REPEATS)]
    # Simulated figures are deterministic — identical across repeats —
    # so any run's copy serves; only the walls need the median.
    packet, fluid = packet_runs[-1], fluid_runs[-1]
    packet_wall = statistics.median(r["wall"] for r in packet_runs)
    fluid_wall = statistics.median(r["wall"] for r in fluid_runs)
    return {
        "fleet_packet_wall_seconds": round(packet_wall, 3),
        "fleet_fluid_wall_seconds": round(fluid_wall, 3),
        "fleet_wall_speedup_ratio": round(packet_wall / fluid_wall, 3),
        "fleet_event_speedup_ratio": round(
            packet["events"] / fluid["events"], 3),
        "fleet_packet_ready_seconds": round(packet["ready_mean"], 3),
        "fleet_fluid_ready_seconds": round(fluid["ready_mean"], 3),
        "fleet_packet_complete_seconds": round(packet["complete_mean"], 3),
        "fleet_fluid_complete_seconds": round(fluid["complete_mean"], 3),
    }, packet, fluid


def test_fleet(benchmark):
    figures, packet, fluid = once(benchmark, run_figure)
    ready_diff = (figures["fleet_fluid_ready_seconds"]
                  - figures["fleet_packet_ready_seconds"]) \
        / figures["fleet_packet_ready_seconds"]
    complete_diff = (figures["fleet_fluid_complete_seconds"]
                     - figures["fleet_packet_complete_seconds"]) \
        / figures["fleet_packet_complete_seconds"]
    lines = [
        f"Fleet deploy, fluid vs packet ({NODES} nodes, "
        f"{REPLICAS} replicas, waves of {WAVE_SIZE}"
        f"{', quick' if QUICK else ''})",
        f"  packet wall      : {figures['fleet_packet_wall_seconds']:8.2f}s"
        f"  ({packet['events']:,} events)",
        f"  fluid wall       : {figures['fleet_fluid_wall_seconds']:8.2f}s"
        f"  ({fluid['events']:,} events)",
        f"  wall speedup     : "
        f"{figures['fleet_wall_speedup_ratio']:8.2f}x",
        f"  event reduction  : "
        f"{figures['fleet_event_speedup_ratio']:8.2f}x",
        f"  time-to-ready    : {figures['fleet_packet_ready_seconds']:8.2f}s"
        f" packet / {figures['fleet_fluid_ready_seconds']:.2f}s fluid"
        f" ({ready_diff:+.2%})",
        f"  time-to-complete : "
        f"{figures['fleet_packet_complete_seconds']:8.2f}s"
        f" packet / {figures['fleet_fluid_complete_seconds']:.2f}s fluid"
        f" ({complete_diff:+.2%})",
    ]
    emit("fleet", "\n".join(lines), data={"packet": packet, "fluid": fluid},
         figures=figures)

    # Steady state: a retransmission in either run means the scenario
    # is not measuring what it claims (and would demote fluid mode).
    assert packet["retransmissions"] == 0, packet
    assert fluid["retransmissions"] == 0, fluid
    assert fluid["fluid_state"] == "active", fluid
    assert packet["fluid_state"] == "off", packet

    # The tentpole's acceptance numbers.
    assert figures["fleet_wall_speedup_ratio"] >= SPEEDUP_FLOOR, \
        (f"fluid mode only {figures['fleet_wall_speedup_ratio']:.2f}x "
         f"faster than packet mode (floor {SPEEDUP_FLOOR}x)")
    assert abs(ready_diff) <= PARITY_TOLERANCE, \
        f"time-to-ready diverged {ready_diff:+.2%} (envelope 5%)"
    assert abs(complete_diff) <= PARITY_TOLERANCE, \
        f"time-to-complete diverged {complete_diff:+.2%} (envelope 5%)"
