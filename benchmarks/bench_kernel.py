"""Simulation-kernel fast path: how fast does the simulator itself run?

Every other bench measures *simulated* time; this one measures the
simulator.  Three loads:

* **Scheduler churn** — a callback chain burning zero-delay timeouts
  over a 10k-event far-future heap ballast, once on the fast-lane
  kernel and once on the pure-heap reference
  (``Environment(fast_lane=False)``, the pre-optimization code path).
  The chain is callback-to-callback (no generator machinery) so the
  measurement isolates the scheduler itself.  The fast lane must
  clear at least 2x the reference's events/sec — that ratio is the
  headline number the kernel fast path exists for.
* **Fleet deploy** — a 64-node full-speed BMcast deployment (the
  event-heaviest scenario in the repo: per-frame NIC events times 64
  nodes).
* **Control loop** — the elastic autoscaler ticking over a flash
  crowd.

Unlike the figure benches, these figures are **wall-clock** by nature
(benchmarking the simulator in simulated time would be circular), so
``check_regression.py`` scores the ``*_per_sec`` / ``*_wall_seconds``
families with a wider tolerance (25%) than the simulated figures:
consecutive records come from the same machine in the same CI job, but
scheduler noise is real.  Every wall figure is therefore the *median*
of ``CHURN_PASSES`` inner repeats — a stable center rather than a
noise-tail sample — which is what lets that tolerance sit at 25%
instead of the 50% the old best-of-3 figures needed.  The speedup
*ratio* divides machine speed out entirely, which is why the shape
assert lives on the ratio.
"""

import os
import statistics
import time

from _common import MB, emit, once
from repro.guest.osimage import OsImage
from repro.sim import Environment, Event

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

CHURN_EVENTS = 50_000 if QUICK else 200_000
CHURN_PASSES = 5
BALLAST_EVENTS = 10_000
DEPLOY_NODES = 8 if QUICK else 64
DEPLOY_IMAGE_MB = 16
CTL_NODES = 4 if QUICK else 6
CTL_DURATION = 900.0 if QUICK else 1800.0


# -- scheduler churn ---------------------------------------------------------

def _churn(fast_lane: bool) -> float:
    """Events/sec popping ``CHURN_EVENTS`` zero-delay timeouts.

    Median of ``CHURN_PASSES`` passes — a single pass is at the mercy
    of a scheduler hiccup, and best-of-N turned out to track the tail
    of the noise distribution (run-to-run churn figures swung ~40%
    between records).  The median is a stable center, which is what
    lets ``check_regression.py`` hold the wall-clock families to a
    25% tolerance instead of 50%.

    The ballast keeps the heap ``BALLAST_EVENTS`` deep for the whole
    run, so the reference kernel pays a log-10k heap push+pop per
    event while the fast lane side-steps the heap entirely; the run
    stops at the worker's completion event, never draining the
    ballast.
    """
    return statistics.median(
        _churn_pass(fast_lane) for _ in range(CHURN_PASSES))


def _churn_pass(fast_lane: bool) -> float:
    env = Environment(fast_lane=fast_lane)
    for index in range(BALLAST_EVENTS):
        env.timeout(1e9 + index)
    done = Event(env)
    remaining = [CHURN_EVENTS]

    def fire(event):
        n = remaining[0]
        if n:
            remaining[0] = n - 1
            env.pooled_timeout(0).callbacks.append(fire)
        else:
            done.succeed()

    env.pooled_timeout(0).callbacks.append(fire)
    started = time.perf_counter()
    env.run(until=done)
    elapsed = time.perf_counter() - started
    return CHURN_EVENTS / elapsed


# -- fleet deploy ------------------------------------------------------------

def _deploy_fleet() -> dict:
    from _common import deploy_instances
    from repro.vmm.moderation import FULL_SPEED

    image = OsImage(size_bytes=DEPLOY_IMAGE_MB * MB,
                    boot_read_bytes=4 * MB, boot_think_seconds=1.0)
    started = time.perf_counter()
    testbed, instances = deploy_instances(
        "bmcast", node_count=DEPLOY_NODES, image=image,
        policy=FULL_SPEED, p2p=True)
    env = testbed.env
    for instance in instances:
        env.run(until=instance.platform.copier.done)
    elapsed = time.perf_counter() - started
    assert len(instances) == DEPLOY_NODES
    return {"wall_seconds": elapsed,
            "deploys_per_sec": DEPLOY_NODES / elapsed}


# -- control loop ------------------------------------------------------------

def _ctl_loop() -> float:
    from repro.cloud import build_testbed
    from repro.ctl import (DEMANDS, PLACEMENTS, POLICIES,
                           ElasticController, NodePool)

    image = OsImage(size_bytes=32 * MB, boot_read_bytes=8 * MB,
                    boot_think_seconds=3.0)
    testbed = build_testbed(node_count=CTL_NODES, server_count=1,
                            p2p=True, image=image)
    pool = NodePool(testbed, vmxoff_mode="resident")
    controller = ElasticController(
        pool, DEMANDS["flash-crowd"](seed=20150314),
        POLICIES["reactive"](), PLACEMENTS["cache-aware"]())
    env = testbed.env
    started = time.perf_counter()
    env.run(until=env.process(controller.run(CTL_DURATION),
                              name="ctl-loop"))
    return time.perf_counter() - started


def run_figure():
    reference = _churn(fast_lane=False)
    fastlane = _churn(fast_lane=True)
    # Same median-of-N treatment for the deploy and ctl walls: every
    # wall-clock figure in the record is a median, so a single noisy
    # pass can never move a published number.
    deploy_wall = statistics.median(
        _deploy_fleet()["wall_seconds"] for _ in range(CHURN_PASSES))
    ctl_wall = statistics.median(
        _ctl_loop() for _ in range(CHURN_PASSES))
    return {
        "churn_reference_events_per_sec": round(reference, 1),
        "churn_fastlane_events_per_sec": round(fastlane, 1),
        "churn_speedup_ratio": round(fastlane / reference, 3),
        "deploy_wall_seconds": round(deploy_wall, 3),
        "deploy_per_sec": round(DEPLOY_NODES / deploy_wall, 3),
        "ctl_wall_seconds": round(ctl_wall, 3),
    }


def test_kernel(benchmark):
    figures = once(benchmark, run_figure)
    lines = [
        f"Kernel fast path ({CHURN_EVENTS} churn events, "
        f"{DEPLOY_NODES}-node deploy{', quick' if QUICK else ''})",
        f"  scheduler churn, reference heap : "
        f"{figures['churn_reference_events_per_sec']:>12,.0f} events/s",
        f"  scheduler churn, fast lane      : "
        f"{figures['churn_fastlane_events_per_sec']:>12,.0f} events/s",
        f"  speedup                         : "
        f"{figures['churn_speedup_ratio']:.2f}x",
        f"  {DEPLOY_NODES}-node BMcast deploy         : "
        f"{figures['deploy_wall_seconds']:.2f}s wall "
        f"({figures['deploy_per_sec']:.2f} deploys/s)",
        f"  ctl loop ({CTL_DURATION:.0f} sim-s)          : "
        f"{figures['ctl_wall_seconds']:.2f}s wall",
    ]
    emit("kernel", "\n".join(lines), data=figures, figures=figures)

    # The tentpole's acceptance number: the fast-lane kernel must at
    # least double the reference's churn throughput.  Quick mode keeps
    # a looser floor — CI runners are noisy, and the regression
    # checker tracks the ratio across records anyway.
    floor = 1.2 if QUICK else 2.0
    assert figures["churn_speedup_ratio"] >= floor, \
        (f"fast lane only {figures['churn_speedup_ratio']:.2f}x the "
         f"reference scheduler (floor {floor}x)")
