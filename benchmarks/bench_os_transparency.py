"""OS transparency matrix (paper Sections 1, 4.3, 6).

"BMcast can deploy Windows (Vista, 7, 8.1, Server 2008) and Linux
(Ubuntu 10.04 and later, and CentOS 6.3 and later) without any
modifications."  The OS-streaming baseline, by contrast, only deploys
the OSs its in-kernel driver was ported to.  This bench deploys three
OS images by both methods, verifies the deployed disks, and prints the
support matrix — the paper's transparency argument as an artifact.
"""

import pytest

from _common import emit, once
from repro.baselines.os_streaming import OsNotSupportedError
from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed
from repro.guest.osimage import centos_image, ubuntu_image, windows_image
from repro.metrics.report import format_table
from repro.vmm.moderation import FULL_SPEED

MB = 2**20

IMAGES = {
    "ubuntu-14.04": lambda: ubuntu_image(
        size_bytes=512 * MB, boot_read_bytes=24 * MB,
        boot_think_seconds=6.0),
    "centos-6.5": lambda: centos_image(
        size_bytes=512 * MB, boot_read_bytes=24 * MB,
        boot_think_seconds=6.0),
    "windows-server-2008": lambda: windows_image(
        size_bytes=768 * MB, boot_read_bytes=48 * MB,
        boot_think_seconds=10.0),
}


def try_deploy(method: str, image_factory):
    testbed = build_testbed(image=image_factory())
    provisioner = Provisioner(testbed)
    env = testbed.env

    def scenario():
        instance = yield from provisioner.deploy(
            method, skip_firmware=True, policy=FULL_SPEED)
        platform = instance.platform
        if hasattr(platform, "copier"):
            yield platform.copier.done
        elif hasattr(platform, "done") and not platform.done.triggered:
            yield platform.done
        return instance

    try:
        instance = env.run(until=env.process(scenario()))
    except OsNotSupportedError:
        return "UNSUPPORTED", None
    env.run(until=env.now + 10.0)
    written = getattr(instance.platform, "written", None)
    if instance.guest is not None:
        written = instance.guest.written
    verified = testbed.image.verify_deployed(testbed.node.disk.contents,
                                             written)
    return ("ok" if verified else "CORRUPT"), instance.timeline.total


def run_figure():
    matrix = {}
    for os_name, factory in IMAGES.items():
        for method in ("bmcast", "os-streaming"):
            matrix[(os_name, method)] = try_deploy(method, factory)
    return matrix


def test_os_transparency_matrix(benchmark):
    matrix = once(benchmark, run_figure)

    rows = []
    for os_name in IMAGES:
        bmcast_status, bmcast_ready = matrix[(os_name, "bmcast")]
        streaming_status, _ = matrix[(os_name, "os-streaming")]
        rows.append([os_name,
                     f"{bmcast_status} ({bmcast_ready:.0f}s ready)",
                     streaming_status])
    emit("os_transparency", format_table(
        ["OS image", "BMcast (OS-transparent)",
         "OS-streaming (per-OS driver)"], rows,
        title="OS transparency: who can deploy what"))

    # BMcast deploys everything, verified, unmodified.
    for os_name in IMAGES:
        status, _ = matrix[(os_name, "bmcast")]
        assert status == "ok", f"bmcast failed on {os_name}"
    # The streaming baseline covers only its ported OSs.
    assert matrix[("ubuntu-14.04", "os-streaming")][0] == "ok"
    assert matrix[("centos-6.5", "os-streaming")][0] == "ok"
    assert matrix[("windows-server-2008", "os-streaming")][0] \
        == "UNSUPPORTED"
