"""Scale-out distribution fabric: per-instance deployment time vs fleet size.

Section 4.2's bottleneck: every deployment streams from one AoE target,
so N concurrent deployments divide its bandwidth N ways and per-instance
deployment time grows near-linearly with N.  The distribution fabric
(origin replicas + peer chunk serving + wave scheduling) is supposed to
break that: replicas multiply source bandwidth and every partially
deployed node becomes another source, so the degradation curve flattens.

This bench measures mean per-instance *deployment* time (background copy
start to finish, moderation off) for a fleet of N:

* baseline — one origin server, all N launched simultaneously;
* fabric   — 4 origin replicas, p2p on, launched in two waves so the
  second wave can feed off the first.

Asserted shape: baseline degrades near-linearly with N while the fabric
degrades sub-linearly (well under half the baseline's slope), and the
last wave serves >30% of its fetches from peers.
"""

import os

from _common import MB, emit, once
from repro.cloud import Cluster, WaveScheduler, build_testbed
from repro.guest.osimage import OsImage
from repro.metrics.report import format_table
from repro.vmm.moderation import FULL_SPEED

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

IMAGE_MB = 128 if QUICK else 512
NODE_COUNTS = (1, 4) if QUICK else (1, 4, 8)
SELECT_POLICY = "least-outstanding"


def _image() -> OsImage:
    return OsImage(size_bytes=IMAGE_MB * MB, boot_read_bytes=16 * MB,
                   boot_think_seconds=3.0)


def _run_fleet(node_count: int, server_count: int, p2p: bool,
               waves: bool):
    """Mean per-instance deployment seconds (+ last-wave hit ratio)."""
    testbed = build_testbed(node_count=node_count,
                            server_count=server_count, p2p=p2p,
                            select_policy=SELECT_POLICY,
                            image=_image())
    cluster = Cluster(testbed)
    scheduler = None

    def scenario():
        nonlocal scheduler
        if waves and node_count > 1:
            scheduler = WaveScheduler(cluster,
                                      wave_size=max(1, node_count // 2),
                                      seed_fill_fraction=0.25)
            yield from scheduler.run("bmcast", policy=FULL_SPEED)
        else:
            yield from cluster.deploy_all("bmcast", policy=FULL_SPEED)
        yield from cluster.wait_deployment_complete(settle_seconds=1.0)

    testbed.env.run(until=testbed.env.process(scenario()))
    assert cluster.verify_all_deployed()
    times = [instance.platform.copier.finished_at
             - instance.platform.copier.started_at
             for instance in cluster.instances]
    hit_ratio = scheduler.waves[-1].live_peer_hit_ratio() \
        if scheduler is not None else 0.0
    return sum(times) / len(times), hit_ratio


def run_figure():
    results = {"baseline": {}, "fabric": {}, "last_wave_hit_ratio": {}}
    for count in NODE_COUNTS:
        results["baseline"][count], _ = _run_fleet(
            count, server_count=1, p2p=False, waves=False)
        results["fabric"][count], hit = _run_fleet(
            count, server_count=4, p2p=True, waves=True)
        results["last_wave_hit_ratio"][count] = hit
    return results


def test_scaleout_fabric(benchmark):
    results = once(benchmark, run_figure)

    base1 = results["baseline"][NODE_COUNTS[0]]
    fab1 = results["fabric"][NODE_COUNTS[0]]
    rows = []
    for count in NODE_COUNTS:
        base = results["baseline"][count]
        fab = results["fabric"][count]
        rows.append([count, round(base, 1), round(base / base1, 2),
                     round(fab, 1), round(fab / fab1, 2),
                     f"{results['last_wave_hit_ratio'][count]:.0%}"])
    emit("scaleout_fabric", format_table(
        ["fleet", "1-server s", "x", "4-replica+p2p s", "x",
         "last-wave peer hits"],
        rows,
        title=f"Scale-out: mean per-instance deployment time "
        f"({IMAGE_MB}-MB image{', quick' if QUICK else ''})"),
        data={
            "image_mb": IMAGE_MB,
            "quick": QUICK,
            "select_policy": SELECT_POLICY,
            "baseline_seconds": {str(k): round(v, 3) for k, v in
                                 results["baseline"].items()},
            "fabric_seconds": {str(k): round(v, 3) for k, v in
                               results["fabric"].items()},
            "last_wave_hit_ratio": {
                str(k): round(v, 4) for k, v in
                results["last_wave_hit_ratio"].items()},
        },
        figures={
            **{f"baseline_{count}_seconds": results["baseline"][count]
               for count in NODE_COUNTS},
            **{f"fabric_{count}_seconds": results["fabric"][count]
               for count in NODE_COUNTS},
            "last_wave_peer_hit_ratio":
                results["last_wave_hit_ratio"][NODE_COUNTS[-1]],
        })

    if QUICK:
        return  # tiny image: run for crash/JSON health only, no shape
    top = NODE_COUNTS[-1]
    base_factor = results["baseline"][top] / base1
    fab_factor = results["fabric"][top] / fab1
    # 1. One server saturates: per-instance time keeps growing with the
    #    fleet (doubling 4 -> 8 roughly doubles it).
    assert base_factor > 3.0, f"baseline factor {base_factor:.2f}"
    ratio_4_to_8 = results["baseline"][8] / results["baseline"][4]
    assert ratio_4_to_8 > 1.6, f"4->8 grew only {ratio_4_to_8:.2f}x"
    # 2. The fabric degrades sub-linearly — under half the baseline's
    #    growth factor, and under 65% of its absolute time at the top.
    assert fab_factor < 0.5 * base_factor, \
        f"fabric {fab_factor:.2f} vs baseline {base_factor:.2f}"
    assert results["fabric"][top] < 0.65 * results["baseline"][top]
    # 3. The last wave is peer-fed (the scheduler's whole point).
    assert results["last_wave_hit_ratio"][top] > 0.3
