"""Scale-up concurrency (paper 5.1, in-text claim).

"BMcast transferred only 72 MB of the disk image while booting the OS
... this means that there is more room to scale-up the number of
instances booted simultaneously" — image copying saturates the storage
server, so simultaneous deployments slow each other down; BMcast's
time-to-ready barely moves because boot pulls only the working set.
"""

import pytest

from _common import emit, once
from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import build_testbed
from repro.guest.osimage import OsImage
from repro.metrics.report import format_table

MB = 2**20

#: 4-GB image keeps the N=8 image-copy case tractable.
IMAGE = dict(size_bytes=4 * 2**30, boot_read_bytes=72 * MB,
             boot_think_seconds=22.5)

NODE_COUNTS = (1, 2, 4, 8)


def time_to_all_ready(method: str, node_count: int) -> float:
    testbed = build_testbed(node_count=node_count,
                            image=OsImage(**IMAGE))
    provisioner = Provisioner(testbed)
    env = testbed.env
    ready_times = []

    def one(index):
        yield from provisioner.deploy(method, node_index=index,
                                      skip_firmware=True)
        ready_times.append(env.now)

    processes = [env.process(one(index)) for index in range(node_count)]
    start = env.now
    env.run(until=env.all_of(processes))
    return max(ready_times) - start


def run_figure():
    results = {}
    for method in ("bmcast", "image-copy"):
        results[method] = {count: time_to_all_ready(method, count)
                           for count in NODE_COUNTS}
    return results


def test_scaleup_concurrent_instances(benchmark):
    results = once(benchmark, run_figure)

    rows = []
    for count in NODE_COUNTS:
        bmcast = results["bmcast"][count]
        copy = results["image-copy"][count]
        rows.append([count, round(bmcast, 1), round(copy, 1),
                     round(copy / bmcast, 1)])
    emit("scaleup_concurrency", format_table(
        ["simultaneous instances", "bmcast all-ready s",
         "image-copy all-ready s", "advantage"], rows,
        title="Scale-up: time until N simultaneous instances are ready "
        "(4-GB image)"))

    # BMcast's time-to-ready degrades only mildly with N (boot pulls
    # ~72 MB per instance)...
    bmcast_degradation = results["bmcast"][8] / results["bmcast"][1]
    assert bmcast_degradation < 1.6
    # ...while image copy, which must push the whole image to every
    # node through one server, degrades much faster (bounded below 2x
    # only by its fixed installer-boot + firmware-restart time)...
    copy_degradation = results["image-copy"][8] / results["image-copy"][1]
    assert copy_degradation > 1.7
    # ...so BMcast's advantage GROWS with scale (the elasticity claim).
    advantage_1 = results["image-copy"][1] / results["bmcast"][1]
    advantage_8 = results["image-copy"][8] / results["bmcast"][8]
    assert advantage_8 > advantage_1 * 1.5
