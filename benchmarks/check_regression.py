#!/usr/bin/env python
"""Compare the last two bench records and fail on a >10% regression.

``benchmarks/_common.emit(..., figures={...})`` appends one record per
bench run to ``BENCH_<name>.json`` at the repo root.  Every figure is a
*simulated-time* metric, so records are deterministic: the same code
produces identical figures, and any drift between consecutive records
is a real behavioral change.  This checker compares the newest record
against the one before it, per shared metric, and exits non-zero when
any metric worsened by more than the threshold.

Direction: every figure family a bench emits is registered in
``DIRECTIONS`` (exact names) or ``SUFFIX_DIRECTIONS`` (parameterized
families like ``{method}_ready_seconds``).  A figure matching neither
falls back to the old substring heuristic *with a warning* — add new
families to the tables instead of relying on the fallback, which once
mis-scored ``wasted_node_seconds``-style names that merely mention a
higher-is-better token.

Usage::

    python benchmarks/check_regression.py [--threshold 0.10] [FILES...]

With no FILES, every ``BENCH_*.json`` at the repo root is checked.
Files with fewer than two records are skipped (nothing to compare).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Exact figure name -> better direction.  One entry per singleton
#: figure; parameterized families live in SUFFIX_DIRECTIONS.
DIRECTIONS = {
    # bench_scaleout.py
    "last_wave_peer_hit_ratio": "higher",
    # bench_elasticity.py (placement comparison at equal fleet size)
    "round_robin_wave_p95_seconds": "lower",
    "cache_aware_wave_p95_seconds": "lower",
    # bench_fleet.py (fluid-flow fast path vs packet mode).  Listed
    # exactly — this family mixes wall-clock figures, deterministic
    # simulated figures, and ratios, so no suffix rule or fallback
    # heuristic should ever touch it.
    "fleet_packet_wall_seconds": "lower",
    "fleet_fluid_wall_seconds": "lower",
    "fleet_wall_speedup_ratio": "higher",
    "fleet_event_speedup_ratio": "higher",
    "fleet_packet_ready_seconds": "lower",
    "fleet_fluid_ready_seconds": "lower",
    "fleet_packet_complete_seconds": "lower",
    "fleet_fluid_complete_seconds": "lower",
}

#: Figure-family suffix -> better direction, matched in order.  Covers
#: names templated over a method/policy/node-count axis:
#:   {method}_ready_seconds        bench_fig04_startup.py   lower
#:   baseline_{n}_seconds,
#:   fabric_{n}_seconds            bench_scaleout.py        lower
#:   {policy}_slo_attainment       bench_elasticity.py      higher
#:   {policy}_wasted_node_seconds  bench_elasticity.py      lower
#:   {policy}_ttr_p95_seconds      bench_elasticity.py      lower
SUFFIX_DIRECTIONS = (
    ("_slo_attainment", "higher"),
    ("_hit_ratio", "higher"),
    ("_throughput", "higher"),
    # bench_kernel.py: simulator-throughput figures.
    ("_events_per_sec", "higher"),
    ("_per_sec", "higher"),
    ("_speedup_ratio", "higher"),
    ("_wall_seconds", "lower"),
    ("_ready_seconds", "lower"),
    ("_wasted_node_seconds", "lower"),
    ("_seconds", "lower"),
)

#: Wall-clock figure families (bench_kernel.py and bench_fleet.py
#: measure the simulator itself, so their walls are wall time by
#: nature).  Consecutive records come from the same machine in the
#: same CI job, but runner noise is real — these families fail only
#: past a wider tolerance than the simulated-time default.  Every
#: emitted wall figure is a median of >=3 inner repeats (bench_kernel
#: uses median-of-5), which is what lets this sit at 25% rather than
#: the 50% the old best-of-N figures needed.
WALL_SUFFIXES = ("_wall_seconds", "_per_sec", "_speedup_ratio")
WALL_THRESHOLD = 0.25

#: Figures whose names *look* like a wall family but are fully
#: deterministic simulated quantities — keep them on the tight
#: default threshold.
DETERMINISTIC_EXCEPTIONS = frozenset({
    # Event counts, not walls: identical across repeats on one commit.
    "fleet_event_speedup_ratio",
})


def metric_threshold(name: str, base: float) -> float:
    """The failure threshold for one metric (wall families widened)."""
    if name in DETERMINISTIC_EXCEPTIONS:
        return base
    if name.endswith(WALL_SUFFIXES):
        return max(base, WALL_THRESHOLD)
    return base

#: Fallback-only heuristic, kept for figures added without a table
#: entry; hitting it prints a warning.
HIGHER_IS_BETTER = ("ratio", "throughput", "rate", "hits")


def metric_direction(name: str) -> str:
    """'higher' or 'lower' (the better direction) for a metric name."""
    direction = DIRECTIONS.get(name)
    if direction is not None:
        return direction
    for suffix, direction in SUFFIX_DIRECTIONS:
        if name.endswith(suffix):
            return direction
    lowered = name.lower()
    guessed = "higher" if any(token in lowered
                              for token in HIGHER_IS_BETTER) else "lower"
    print(f"warning: figure {name!r} has no direction entry; "
          f"guessing {guessed}-is-better — add it to DIRECTIONS or "
          f"SUFFIX_DIRECTIONS in benchmarks/check_regression.py",
          file=sys.stderr)
    return guessed


def compare_records(previous: dict, latest: dict,
                    threshold: float) -> list:
    """Regressions between two ``figures`` dicts, as report strings."""
    regressions = []
    for name in sorted(set(previous) & set(latest)):
        before = float(previous[name])
        after = float(latest[name])
        if before == after:
            continue
        direction = metric_direction(name)
        limit = metric_threshold(name, threshold)
        if before == 0.0:
            # No baseline magnitude to scale by; a metric appearing
            # from zero is growth, not regression, unless lower is
            # better and it became positive.
            if direction == "lower" and after > 0.0:
                regressions.append(
                    f"{name}: {before:g} -> {after:g} "
                    f"(was zero, now positive; lower is better)")
            continue
        change = (after - before) / abs(before)
        worsened = change > limit if direction == "lower" \
            else change < -limit
        if worsened:
            regressions.append(
                f"{name}: {before:g} -> {after:g} "
                f"({change:+.1%}; {direction} is better)")
    return regressions


def check_file(path: pathlib.Path, threshold: float) -> list:
    """Regression report lines for one BENCH_*.json file."""
    try:
        records = json.loads(path.read_text())
    except (ValueError, OSError) as error:
        return [f"{path.name}: unreadable ({error})"]
    if not isinstance(records, list) or len(records) < 2:
        print(f"{path.name}: {len(records) if isinstance(records, list) else 0} "
              f"record(s), nothing to compare")
        return []
    previous = records[-2].get("figures", {})
    latest = records[-1].get("figures", {})
    regressions = compare_records(previous, latest, threshold)
    if regressions:
        return [f"{path.name}: {line}" for line in regressions]
    shared = len(set(previous) & set(latest))
    print(f"{path.name}: {shared} metric(s) within "
          f"{threshold:.0%} of the previous record")
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail on >threshold bench regressions")
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="BENCH_*.json files (default: repo root)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative worsening that fails (default 0.10)")
    args = parser.parse_args(argv)

    files = args.files or sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json records found; nothing to check")
        return 0

    failures = []
    for path in files:
        failures.extend(check_file(path, args.threshold))
    if failures:
        print("\nREGRESSIONS DETECTED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
