"""Compare every deployment method the paper evaluates, side by side.

Deploys the same image onto identical machines via all seven supported
methods and prints a Figure-4-style table: time to a ready instance,
what the time was spent on, whether the local disk ends up populated,
and whether the method is OS-transparent.

Run:  python examples/deployment_comparison.py
"""

from repro import Provisioner, build_testbed
from repro.baselines.os_streaming import OsNotSupportedError
from repro.cloud.provisioner import METHODS
from repro.guest.osimage import OsImage
from repro.metrics.report import format_table

#: 4-GB image keeps the example fast; switch to OsImage() for the
#: paper's full 32-GB run.
IMAGE = dict(size_bytes=4 * 2**30, boot_read_bytes=24 * 2**20,
             boot_think_seconds=6.0)

OS_TRANSPARENT = {
    "baremetal": "yes",
    "bmcast": "yes (device mediators)",
    "image-copy": "yes",
    "network-boot": "no (needs netroot OS)",
    "kvm-nfs": "yes (but stays virtualized)",
    "kvm-iscsi": "yes (but stays virtualized)",
    "kvm-local": "yes (but stays virtualized)",
    "os-streaming": "no (per-OS driver)",
}


def main():
    rows = []
    for method in METHODS:
        testbed = build_testbed(image=OsImage(**IMAGE))
        provisioner = Provisioner(testbed)
        env = testbed.env
        try:
            instance = env.run(until=env.process(
                provisioner.deploy(method, skip_firmware=True)))
        except OsNotSupportedError as error:
            rows.append([method, "-", str(error), "-", "-"])
            continue

        # Let any background deployment finish to check the disk state.
        platform = instance.platform
        if platform is not None and hasattr(platform, "copier"):
            env.run(until=platform.copier.done)
            env.run(until=env.now + 10.0)
        elif platform is not None and hasattr(platform, "done") \
                and not platform.done.triggered:
            env.run(until=platform.done)

        disk_bytes = testbed.node.disk.contents.total_covered() * 512
        segments = "; ".join(f"{label} {seconds:.0f}s"
                             for label, seconds in
                             instance.timeline.segments)
        rows.append([
            method,
            round(instance.timeline.total, 1),
            segments,
            f"{disk_bytes / 2**30:.1f} GB",
            OS_TRANSPARENT[method],
        ])

    print(format_table(
        ["method", "ready (s)", "time spent on", "local disk",
         "OS-transparent"],
        rows,
        title=f"Deployment method comparison "
        f"({IMAGE['size_bytes'] / 2**30:.0f}-GB image, firmware "
        f"already initialized)"))
    print("\n'ready' = seconds until the customer's OS serves; BMcast "
          "and network-boot are quick,\nbut only BMcast also ends with "
          "a fully populated local disk and zero residual overhead.")


if __name__ == "__main__":
    main()
