"""Elastic scale-out: the paper's motivating scenario.

A Cassandra tier is serving a write-heavy YCSB workload when load spikes.
The operator adds a bare-metal node.  With image copying the new node
takes ~9 minutes of dead time before it serves a single request; with
BMcast it serves within ~a minute at >90% capacity and silently reaches
full bare-metal performance when deployment finishes.

This example deploys the new node both ways and prints the capacity the
cluster gained over time.

Run:  python examples/elastic_scaleout.py
"""

from repro import Provisioner, build_testbed
from repro.apps.kvstore import CASSANDRA, KvStoreServer
from repro.apps.ycsb import WRITE_HEAVY, YcsbBenchmark
from repro.guest.osimage import OsImage
from repro.metrics.report import format_table

#: Shrunk image so the example runs in seconds (same machinery).
IMAGE = dict(size_bytes=4 * 2**30, boot_read_bytes=24 * 2**20,
             boot_think_seconds=6.0)

OBSERVE_SECONDS = 420.0
WINDOW = 15.0


def scale_out_with(method: str):
    """Deploy the new node via ``method``; returns (bench, timeline)."""
    testbed = build_testbed(image=OsImage(**IMAGE))
    provisioner = Provisioner(testbed)
    env = testbed.env
    t_request = env.now  # the moment the operator asks for capacity

    instance = env.run(until=env.process(
        provisioner.deploy(method, skip_firmware=True)))
    ready_after = env.now - t_request

    store = KvStoreServer(instance, CASSANDRA)
    bench = YcsbBenchmark(store, WRITE_HEAVY, window=WINDOW)
    env.run(until=env.process(bench.run(OBSERVE_SECONDS)))
    return bench, ready_after


def main():
    print("Scaling out a Cassandra tier by one bare-metal node...\n")
    results = {}
    for method in ("bmcast", "image-copy"):
        bench, ready_after = scale_out_with(method)
        results[method] = (bench, ready_after)
        print(f"{method}: first request served "
              f"{ready_after:.0f}s after the scale-out request")

    print()
    rows = []
    bmcast_bench, bmcast_ready = results["bmcast"]
    copy_bench, copy_ready = results["image-copy"]
    peak = max(bmcast_bench.throughput.values())
    for minute in range(int(OBSERVE_SECONDS // 60)):
        start, end = minute * 60.0, (minute + 1) * 60.0

        def served(bench, ready):
            try:
                return bench.throughput.mean_between(start, end) / 1e3
            except ValueError:
                return 0.0

        rows.append([
            f"{minute + 1}",
            round(served(bmcast_bench, bmcast_ready), 1),
            round(served(copy_bench, copy_ready), 1),
        ])
    print(format_table(
        ["minute after ready", "BMcast KT/s", "image-copy KT/s"], rows,
        title="New node's serving rate, minute by minute "
        "(time axis starts when each node is ready)"))

    total_bmcast = sum(bmcast_bench.throughput.values()) * WINDOW
    total_copy = sum(copy_bench.throughput.values()) * WINDOW
    lead = copy_ready - bmcast_ready
    print(f"\nBMcast's node came up {lead:.0f}s earlier and had served "
          f"~{total_bmcast / 1e6:.0f}M extra requests by the time the "
          f"image-copy node finished booting.")
    print(f"(Peak per-node rate: {peak / 1e3:.1f} KT/s.)")


if __name__ == "__main__":
    main()
