"""Elastic scale-out: the paper's motivating scenario, fabric edition.

A Cassandra tier is serving a write-heavy YCSB workload when load
spikes.  Act one: the operator adds ONE bare-metal node — with image
copying it sits dead for minutes before serving a request; with BMcast
it serves within ~a minute and silently reaches full bare-metal
performance when deployment finishes.

Act two: the spike keeps growing, so the operator adds FOUR nodes at
once.  A single storage server would divide its bandwidth four ways;
instead the fleet deploys over the distribution fabric (`repro.dist`)
— two origin replicas, peer-to-peer chunk serving, launched in waves —
and the second wave pulls most of the image from the first wave's
half-deployed nodes rather than the origin.

Act three: the spike passes, and no operator touches anything.  The
elastic control plane (`repro.ctl`) reclaims the idle nodes — drain,
re-virtualize in resident mode, preserve the disk — and when demand
returns, cache-aware placement lands the new deployments on those
warm nodes, which also serve image chunks to any cold neighbour.

Run:  python examples/elastic_scaleout.py
"""

from repro import Provisioner, build_testbed
from repro.apps.kvstore import CASSANDRA, KvStoreServer
from repro.apps.ycsb import WRITE_HEAVY, YcsbBenchmark
from repro.cloud import Cluster, WaveScheduler
from repro.ctl import (ElasticController, FlashCrowdDemand, NodePool,
                       CacheAwarePlacement, ReactivePolicy)
from repro.guest.osimage import OsImage
from repro.metrics.report import format_table

#: Shrunk image so the example runs in seconds (same machinery).
IMAGE = dict(size_bytes=4 * 2**30, boot_read_bytes=24 * 2**20,
             boot_think_seconds=6.0)

OBSERVE_SECONDS = 420.0
WINDOW = 15.0


def scale_out_with(method: str):
    """Deploy the new node via ``method``; returns (bench, ready_after)."""
    testbed = build_testbed(image=OsImage(**IMAGE))
    provisioner = Provisioner(testbed)
    env = testbed.env
    t_request = env.now  # the moment the operator asks for capacity

    instance = env.run(until=env.process(
        provisioner.deploy(method, skip_firmware=True)))
    ready_after = env.now - t_request

    store = KvStoreServer(instance, CASSANDRA)
    bench = YcsbBenchmark(store, WRITE_HEAVY, window=WINDOW)
    env.run(until=env.process(bench.run(OBSERVE_SECONDS)))
    return bench, ready_after


def one_node_race():
    print("Act 1 — scaling out by ONE bare-metal node...\n")
    results = {}
    for method in ("bmcast", "image-copy"):
        bench, ready_after = scale_out_with(method)
        results[method] = (bench, ready_after)
        print(f"{method}: first request served "
              f"{ready_after:.0f}s after the scale-out request")

    print()
    rows = []
    bmcast_bench, bmcast_ready = results["bmcast"]
    copy_bench, copy_ready = results["image-copy"]
    peak = max(bmcast_bench.throughput.values())
    for minute in range(int(OBSERVE_SECONDS // 60)):
        start, end = minute * 60.0, (minute + 1) * 60.0

        def served(bench):
            try:
                return bench.throughput.mean_between(start, end) / 1e3
            except ValueError:
                return 0.0

        rows.append([
            f"{minute + 1}",
            round(served(bmcast_bench), 1),
            round(served(copy_bench), 1),
        ])
    print(format_table(
        ["minute after ready", "BMcast KT/s", "image-copy KT/s"], rows,
        title="New node's serving rate, minute by minute "
        "(time axis starts when each node is ready)"))

    total_bmcast = sum(bmcast_bench.throughput.values()) * WINDOW
    lead = copy_ready - bmcast_ready
    print(f"\nBMcast's node came up {lead:.0f}s earlier and had served "
          f"~{total_bmcast / 1e6:.0f}M extra requests by the time the "
          f"image-copy node finished booting.")
    print(f"(Peak per-node rate: {peak / 1e3:.1f} KT/s.)")


def fleet_scale_out():
    print("\nAct 2 — the spike keeps growing: FOUR nodes at once, "
          "over the distribution fabric...\n")
    testbed = build_testbed(node_count=4, server_count=2, p2p=True,
                            select_policy="least-outstanding",
                            image=OsImage(**IMAGE))
    cluster = Cluster(testbed)
    scheduler = WaveScheduler(cluster, wave_size=2,
                              seed_fill_fraction=0.25)
    env = testbed.env

    def scenario():
        yield from scheduler.run("bmcast")
        yield from cluster.wait_deployment_complete()

    env.run(until=env.process(scenario()))
    assert cluster.verify_all_deployed()

    rows = [
        [wave.index + 1,
         " ".join(f"node{i}" for i in wave.node_indexes),
         round(wave.ready_seconds, 1),
         f"{wave.live_peer_hit_ratio():.0%}"]
        for wave in scheduler.waves
    ]
    print(format_table(
        ["wave", "nodes", "ready (s)", "served by peers"], rows,
        title="Fleet deployment over 2 origin replicas + p2p"))
    aoe = testbed.switch.bytes_by_protocol.get("aoe", 0)
    peer = testbed.switch.bytes_by_protocol.get("aoe-peer", 0)
    print(f"\nWire bytes: origin (aoe) {aoe / 2**20:.0f} MB, "
          f"peer-to-peer (aoe-peer) {peer / 2**20:.0f} MB — "
          f"{peer / (aoe + peer):.0%} of image traffic never "
          f"touched an origin server.")


def elastic_breathing():
    print("\nAct 3 — the spike passes: the autoscaler gives the "
          "metal back, then gets it back cheap...\n")
    # Quarter-size image: act 3 runs dozens of deploy/reclaim cycles,
    # and warm-vs-cold behaves identically at any image size.
    testbed = build_testbed(node_count=6, server_count=1, p2p=True,
                            image=OsImage(size_bytes=2**30,
                                          boot_read_bytes=24 * 2**20,
                                          boot_think_seconds=6.0))
    pool = NodePool(testbed, vmxoff_mode="resident")
    controller = ElasticController(
        pool, FlashCrowdDemand(spike_at=600.0, seed=20150314),
        ReactivePolicy(), CacheAwarePlacement(), tick=15.0)
    env = testbed.env
    env.run(until=env.process(controller.run(2700.0), name="ctl-loop"))

    print(format_table(
        ["t (s)", "fleet", "target", "why"],
        [[f"{t:.0f}", provisioned, target, reason]
         for t, target, provisioned, reason in controller.decisions],
        title="Every scale decision the reactive policy made"))

    report = controller.report()
    reclaims = report["reclaims"]
    warm = [record.index for record in pool.nodes
            if record.warm_blocks]
    print(f"\nServed {report['served']}/{report['requests']} requests "
          f"(SLO attainment {report['slo_attainment']:.0%}), wasting "
          f"{report['wasted_node_seconds']:.0f} node-seconds; "
          f"{reclaims} reclamation(s), each re-armed in "
          f"p95 {report['reclaim_p95_seconds']:.1f}s (resident mode).")

    print(f"Nodes {warm} ended the run free-but-warm, still "
          f"advertising their image blocks to the fabric.")

    # One tenant leaves for good: their node is reclaimed with a
    # scrub (no tenant bit survives), so it comes back stone cold.
    def scrub_one():
        while not pool.idle_ready():   # let in-flight holds finish
            yield env.timeout(30.0)
        index = pool.idle_ready()[0].index
        yield from pool.reclaim(index, preserve=False)
        return index

    scrub = env.process(scrub_one(), name="scrub")
    env.run(until=scrub)
    scrubbed = scrub.value
    print(f"node{scrubbed} reclaimed with scrub (tenant isolation): "
          f"disk wiped, back to free but cold.")

    # The payoff: demand comes back.  Deploy every free node — the
    # warm ones resume straight from their preserved disk; the
    # scrubbed one pulls the image from the warm peers, not the origin.
    cold_ttr = pool.time_to_ready[0]
    wave = [record.index for record in pool.free_nodes()]
    before = len(pool.time_to_ready)

    def next_wave():
        yield env.all_of([
            env.process(pool.deploy(index), name=f"wave-{index}")
            for index in wave])

    env.run(until=env.process(next_wave(), name="next-wave"))

    peer_ports = {pool.peer_port_of(record.index): record.index
                  for record in pool.nodes}
    rows = []
    for index, ttr in zip(wave, pool.time_to_ready[before:]):
        router = pool.nodes[index].vmm.router
        fed_by = ", ".join(
            f"node{peer_ports[target]}"
            for target, hits in sorted(
                router.peer_hits_by_target.items()) if hits)
        rows.append([f"node{index}", round(ttr, 1),
                     router.origin_fetches,
                     fed_by or "(resumed from preserved disk)"])
    print("\n" + format_table(
        ["node", "ready (s)", "origin fetches", "image came from"],
        rows,
        title=f"Next scale-up: the whole free pool at once "
        f"(first cold deploy of the run took {cold_ttr:.0f}s)"))
    print("\nReclaimed-with-preserve nodes resume without touching "
          "the origin, and feed whatever is still cold — the fleet's "
          "own history is its image cache.")


def main():
    one_node_race()
    fleet_scale_out()
    elastic_breathing()


if __name__ == "__main__":
    main()
