"""Elastic scale-out: the paper's motivating scenario, fabric edition.

A Cassandra tier is serving a write-heavy YCSB workload when load
spikes.  Act one: the operator adds ONE bare-metal node — with image
copying it sits dead for minutes before serving a request; with BMcast
it serves within ~a minute and silently reaches full bare-metal
performance when deployment finishes.

Act two: the spike keeps growing, so the operator adds FOUR nodes at
once.  A single storage server would divide its bandwidth four ways;
instead the fleet deploys over the distribution fabric (`repro.dist`)
— two origin replicas, peer-to-peer chunk serving, launched in waves —
and the second wave pulls most of the image from the first wave's
half-deployed nodes rather than the origin.

Run:  python examples/elastic_scaleout.py
"""

from repro import Provisioner, build_testbed
from repro.apps.kvstore import CASSANDRA, KvStoreServer
from repro.apps.ycsb import WRITE_HEAVY, YcsbBenchmark
from repro.cloud import Cluster, WaveScheduler
from repro.guest.osimage import OsImage
from repro.metrics.report import format_table

#: Shrunk image so the example runs in seconds (same machinery).
IMAGE = dict(size_bytes=4 * 2**30, boot_read_bytes=24 * 2**20,
             boot_think_seconds=6.0)

OBSERVE_SECONDS = 420.0
WINDOW = 15.0


def scale_out_with(method: str):
    """Deploy the new node via ``method``; returns (bench, ready_after)."""
    testbed = build_testbed(image=OsImage(**IMAGE))
    provisioner = Provisioner(testbed)
    env = testbed.env
    t_request = env.now  # the moment the operator asks for capacity

    instance = env.run(until=env.process(
        provisioner.deploy(method, skip_firmware=True)))
    ready_after = env.now - t_request

    store = KvStoreServer(instance, CASSANDRA)
    bench = YcsbBenchmark(store, WRITE_HEAVY, window=WINDOW)
    env.run(until=env.process(bench.run(OBSERVE_SECONDS)))
    return bench, ready_after


def one_node_race():
    print("Act 1 — scaling out by ONE bare-metal node...\n")
    results = {}
    for method in ("bmcast", "image-copy"):
        bench, ready_after = scale_out_with(method)
        results[method] = (bench, ready_after)
        print(f"{method}: first request served "
              f"{ready_after:.0f}s after the scale-out request")

    print()
    rows = []
    bmcast_bench, bmcast_ready = results["bmcast"]
    copy_bench, copy_ready = results["image-copy"]
    peak = max(bmcast_bench.throughput.values())
    for minute in range(int(OBSERVE_SECONDS // 60)):
        start, end = minute * 60.0, (minute + 1) * 60.0

        def served(bench):
            try:
                return bench.throughput.mean_between(start, end) / 1e3
            except ValueError:
                return 0.0

        rows.append([
            f"{minute + 1}",
            round(served(bmcast_bench), 1),
            round(served(copy_bench), 1),
        ])
    print(format_table(
        ["minute after ready", "BMcast KT/s", "image-copy KT/s"], rows,
        title="New node's serving rate, minute by minute "
        "(time axis starts when each node is ready)"))

    total_bmcast = sum(bmcast_bench.throughput.values()) * WINDOW
    lead = copy_ready - bmcast_ready
    print(f"\nBMcast's node came up {lead:.0f}s earlier and had served "
          f"~{total_bmcast / 1e6:.0f}M extra requests by the time the "
          f"image-copy node finished booting.")
    print(f"(Peak per-node rate: {peak / 1e3:.1f} KT/s.)")


def fleet_scale_out():
    print("\nAct 2 — the spike keeps growing: FOUR nodes at once, "
          "over the distribution fabric...\n")
    testbed = build_testbed(node_count=4, server_count=2, p2p=True,
                            select_policy="least-outstanding",
                            image=OsImage(**IMAGE))
    cluster = Cluster(testbed)
    scheduler = WaveScheduler(cluster, wave_size=2,
                              seed_fill_fraction=0.25)
    env = testbed.env

    def scenario():
        yield from scheduler.run("bmcast")
        yield from cluster.wait_deployment_complete()

    env.run(until=env.process(scenario()))
    assert cluster.verify_all_deployed()

    rows = [
        [wave.index + 1,
         " ".join(f"node{i}" for i in wave.node_indexes),
         round(wave.ready_seconds, 1),
         f"{wave.live_peer_hit_ratio():.0%}"]
        for wave in scheduler.waves
    ]
    print(format_table(
        ["wave", "nodes", "ready (s)", "served by peers"], rows,
        title="Fleet deployment over 2 origin replicas + p2p"))
    aoe = testbed.switch.bytes_by_protocol.get("aoe", 0)
    peer = testbed.switch.bytes_by_protocol.get("aoe-peer", 0)
    print(f"\nWire bytes: origin (aoe) {aoe / 2**20:.0f} MB, "
          f"peer-to-peer (aoe-peer) {peer / 2**20:.0f} MB — "
          f"{peer / (aoe + peer):.0%} of image traffic never "
          f"touched an origin server.")


def main():
    one_node_race()
    fleet_scale_out()


if __name__ == "__main__":
    main()
