"""Deploy an HPC cluster with BMcast and run MPI on it immediately.

The paper's Section 5.3 scenario: a 10-node InfiniBand cluster (the
machines were "originally used for HPC applications in practice") is
provisioned with BMcast, and MPI jobs start while streaming deployment
is still in progress — at near-bare-metal collective latency.  After
de-virtualization the cluster IS bare metal.

Run:  python examples/hpc_cluster.py
"""

from repro import Provisioner, build_testbed
from repro.apps.mpi import COLLECTIVES, MpiCluster
from repro.guest.osimage import OsImage
from repro.metrics.report import format_table

NODES = 10

#: Shrunk image so the example finishes in seconds.
IMAGE = dict(size_bytes=2 * 2**30, boot_read_bytes=24 * 2**20,
             boot_think_seconds=6.0)


def measure_collectives(cluster, env):
    results = {}

    def job():
        for collective in COLLECTIVES:
            results[collective] = yield from cluster.measure(
                collective, message_bytes=1024, iterations=10)

    env.run(until=env.process(job()))
    return results


def main():
    testbed = build_testbed(node_count=NODES, with_infiniband=True,
                            image=OsImage(**IMAGE))
    provisioner = Provisioner(testbed)
    env = testbed.env

    print(f"Provisioning {NODES} bare-metal nodes with BMcast "
          f"(simultaneously)...")
    instances = []

    def deploy_one(index):
        instance = yield from provisioner.deploy(
            "bmcast", node_index=index, skip_firmware=True)
        instances.append(instance)

    processes = [env.process(deploy_one(index)) for index in range(NODES)]
    env.run(until=env.all_of(processes))
    ready_at = env.now
    print(f"All {NODES} nodes ready at t={ready_at:.1f}s — deployment "
          f"continues underneath.\n")

    cluster = MpiCluster(instances)
    during = measure_collectives(cluster, env)

    print("Waiting for every node to de-virtualize...")
    for instance in instances:
        env.run(until=instance.platform.copier.done) \
            if not instance.platform.copier.done.triggered else None
    env.run(until=env.now + 10.0)
    assert all(instance.platform.phase == "baremetal"
               for instance in instances)
    print(f"Cluster fully bare-metal at t={env.now:.1f}s.\n")

    after = measure_collectives(cluster, env)

    rows = [[collective,
             round(during[collective] * 1e6, 2),
             round(after[collective] * 1e6, 2),
             f"{during[collective] / after[collective]:.3f}x"]
            for collective in COLLECTIVES]
    print(format_table(
        ["collective", "during deploy (us)", "bare metal (us)",
         "deploy/bare"],
        rows, title=f"MPI collective latency, {NODES} nodes, "
        f"1 KB messages"))
    print("\nMPI ran at essentially bare-metal latency even while every "
          "node was still streaming its OS image (paper Figure 6).")


if __name__ == "__main__":
    main()
