"""A tour of the device mediator: interpretation, redirection,
multiplexing, and seamless de-virtualization, observed at register level.

Uses the library's low-level API directly (no provisioner) to show what
the VMM actually does underneath an unmodified guest driver.

Run:  python examples/mediator_tour.py
"""

from repro import build_testbed
from repro.guest.kernel import GuestOs
from repro.guest.osimage import OsImage
from repro.storage.blockdev import BlockOp, BlockRequest
from repro.vmm.bmcast import BmcastVmm
from repro.vmm.moderation import ModerationPolicy


def main():
    image = OsImage(size_bytes=256 * 2**20, boot_read_bytes=8 * 2**20,
                    boot_think_seconds=2.0)
    testbed = build_testbed(image=image)
    node = testbed.node
    env = testbed.env

    vmm = BmcastVmm(env, node.machine, node.vmm_nic, testbed.server_port,
                    image_sectors=image.total_sectors,
                    policy=ModerationPolicy(write_interval=20e-3))
    guest = GuestOs(node.machine, image)

    def tour():
        # --- initialization phase -----------------------------------
        yield from node.machine.power_on()
        yield from node.machine.firmware.network_boot()
        yield from vmm.boot()
        mediator = vmm.mediator
        print(f"[{env.now:7.2f}s] VMM booted; phase={vmm.phase}; "
              f"mediator installed on the "
              f"{node.machine.disk_controller.kind.upper()} controller")
        print(f"           reserved memory: "
              f"{node.machine.memory.reserved_bytes // 2**20} MB "
              f"(carved from the BIOS map)")

        # --- I/O interpretation + redirection -----------------------
        print(f"\n[{env.now:7.2f}s] guest reads an empty block "
              f"(copy-on-read):")
        buffer = yield from guest.read(4096, 32)
        print(f"           data returned: {buffer.runs}")
        print(f"           interpreted={mediator.interpreted_commands} "
              f"redirected={mediator.redirected_reads} "
              f"dummy-completions={mediator.dummy_completions}")

        # --- guest write + the consistency bitmap -------------------
        print(f"\n[{env.now:7.2f}s] guest writes; the bitmap protects "
              f"it from the background copy:")
        yield from guest.write(4096 + 8, 8, tag="precious")
        block = vmm.bitmap.block_of(4096)
        print(f"           block {block} state="
              f"{vmm.bitmap.state(block).value}, dirty sectors="
              f"{vmm.bitmap.dirty.covered_length(4096, 64)}")

        # --- I/O multiplexing ----------------------------------------
        before = mediator.multiplexed_requests
        yield env.timeout(1.0)
        print(f"\n[{env.now:7.2f}s] background copy multiplexed "
              f"{mediator.multiplexed_requests - before} writes onto "
              f"the guest's controller in the last second")
        print(f"           guest commands queued during VMM ownership: "
              f"{mediator.queued_guest_commands}")
        line = mediator.irq_line
        print(f"           interrupts suppressed on line {line}: "
              f"{node.machine.interrupts.suppressed[line]}")

        # --- the race: write while a block is in flight --------------
        print(f"\n[{env.now:7.2f}s] racing a guest write against the "
              f"copier...")
        target = vmm.bitmap.first_empty_from(0)
        start, count = vmm.bitmap.block_range(target)
        yield from guest.write(start + 100, 16, tag="race-winner")
        yield vmm.copier.done
        token = node.disk.contents.get(start + 100)
        print(f"           after full deployment, sector {start + 100} "
              f"holds: {token}")
        assert token[0] == guest.name, "guest data must win"

        # --- de-virtualization ----------------------------------------
        yield env.timeout(5.0)
        print(f"\n[{env.now:7.2f}s] phase={vmm.phase}")
        exits_before = node.machine.total_vm_exits()
        yield from guest.read(4096, 32)
        exits_after = node.machine.total_vm_exits()
        print(f"           guest I/O after devirt caused "
              f"{exits_after - exits_before} VM exits (zero overhead)")
        verified = image.verify_deployed(node.disk.contents,
                                         guest.written)
        print(f"           disk contents verified against image: "
              f"{verified}")

    env.run(until=env.process(tour()))
    print("\nFinal mediator statistics:")
    for key, value in vmm.summary().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
