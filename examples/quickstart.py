"""Quickstart: deploy a bare-metal instance with BMcast.

Builds the paper's testbed (one PRIMERGY-class machine, a gigabit
management network with jumbo frames, an AoE storage server holding a
32-GB Ubuntu image), powers the machine on, network-boots the BMcast
VMM, and boots the unmodified guest while the image streams to the local
disk in the background.  Prints the startup timeline, then waits for
de-virtualization and shows that the VMM is truly gone.

Run:  python examples/quickstart.py
"""

from repro import Provisioner, build_testbed
from repro.hw.cpu import VmxMode
from repro.metrics.report import format_table


def main():
    testbed = build_testbed()
    provisioner = Provisioner(testbed)
    env = testbed.env

    print("Deploying a bare-metal instance with BMcast...")
    instance = env.run(until=env.process(
        provisioner.deploy("bmcast", skip_firmware=True)))

    print()
    print(format_table(
        ["startup segment", "seconds"],
        [[label, round(seconds, 1)]
         for label, seconds in instance.timeline.segments],
        title="Startup timeline (excluding first firmware init)"))
    print(f"\nInstance ready at t={instance.timeline.ready:.1f}s; the "
          f"guest is running while deployment continues underneath.")

    vmm = instance.platform
    print(f"\nCurrent phase: {vmm.phase}")
    print(f"Blocks copied so far: {vmm.copier.blocks_filled} / "
          f"{vmm.bitmap.block_count}")
    print(f"Copy-on-read redirects during boot: "
          f"{vmm.mediator.redirected_reads} "
          f"({vmm.deployment.redirected_bytes / 2**20:.0f} MB)")

    print("\nWaiting for streaming deployment to finish...")
    env.run(until=vmm.copier.done)
    env.run(until=env.now + 10.0)

    print(f"De-virtualization complete at t={env.now:.1f}s "
          f"(phase: {vmm.phase}).")
    machine = instance.machine
    print("\nPost-devirt state:")
    print(f"  CPU VMX mode:            "
          f"{ {cpu.mode for cpu in machine.cpus} }")
    print(f"  nested paging enabled:   "
          f"{any(cpu.npt.enabled for cpu in machine.cpus)}")
    print(f"  I/O intercepts installed: {machine.bus.has_intercepts}")
    print(f"  platform condition:      {machine.condition.label}")
    assert all(cpu.mode is VmxMode.OFF for cpu in machine.cpus)

    verified = testbed.image.verify_deployed(
        testbed.node.disk.contents, instance.guest.written)
    print(f"  local disk == image:     {verified}")

    summary = vmm.summary()
    print("\nDeployment summary:")
    for key, value in summary.items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
