"""BMcast reproduction: agile, elastic bare-metal clouds.

Reproduces *Improving Agility and Elasticity in Bare-metal Clouds*
(Omote, Shinagawa, Kato — ASPLOS 2015) as a discrete-event-simulated
bare-metal cloud with a fully implemented de-virtualizable VMM.

Quick start::

    from repro import build_testbed, Provisioner

    testbed = build_testbed()
    provisioner = Provisioner(testbed)
    instance = testbed.env.run(
        until=testbed.env.process(provisioner.deploy("bmcast")))
    print(instance.timeline.segments)
"""

from repro.cloud import Provisioner, Testbed, build_testbed
from repro.sim import Environment

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "Provisioner",
    "Testbed",
    "build_testbed",
    "__version__",
]
