"""repro.analysis — correctness tooling for the simulator.

Three layers:

* **simlint** (:mod:`repro.analysis.lint` + ``rules``) — a static
  AST pass over ``src/repro`` enforcing determinism and architecture
  rules, one module at a time.  Run it as ``repro lint`` or
  ``python -m repro.analysis``.
* **simcheck** (:mod:`repro.analysis.simcheck`) — whole-program
  static analysis layered above simlint: call-graph determinism
  taint, process discipline, shared-state race candidates, FSM model
  extraction, and import layering.  Run it as ``repro check`` or
  ``python -m repro.analysis --check``.
* **runtime sanitizers** (:mod:`repro.analysis.sanitizers` and
  friends) — opt-in checkers attached to a live deployment:
  the disk write-race detector, the bitmap↔disk consistency checker,
  the AoE conformance validator, and the replay-divergence checker.
  Attach a :class:`SanitizerSuite` via
  ``provisioner.deploy(..., sanitizers=suite)`` or the CLI's
  ``repro deploy --sanitize``.

See ``docs/analysis.md`` for the rule catalogs and extension guide.
"""

from repro.analysis.aoe_conformance import AoeConformanceValidator
from repro.analysis.consistency import BitmapDiskChecker
from repro.analysis.lint import (
    Finding,
    lint_paths,
    lint_source,
)
from repro.analysis.replay import (
    ReplayRecorder,
    ReplayReport,
    check_replay,
    deployment_scenario,
)
from repro.analysis.sanitizers import (
    Sanitizer,
    SanitizerError,
    SanitizerSuite,
    Violation,
)
from repro.analysis.simcheck import (
    CheckReport,
    ProjectModel,
    build_model,
    run_check,
)
from repro.analysis.write_race import WriteRaceDetector

__all__ = [
    "AoeConformanceValidator",
    "BitmapDiskChecker",
    "CheckReport",
    "Finding",
    "ProjectModel",
    "build_model",
    "run_check",
    "ReplayRecorder",
    "ReplayReport",
    "Sanitizer",
    "SanitizerError",
    "SanitizerSuite",
    "Violation",
    "WriteRaceDetector",
    "check_replay",
    "deployment_scenario",
    "lint_paths",
    "lint_source",
]
