"""``python -m repro.analysis`` — run the static analyzers (CI entry).

Plain invocation runs simlint (per-module rules); ``--check`` runs
simcheck, the whole-program analysis, forwarding the remaining
arguments to its CLI.
"""

import sys


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--check" in argv:
        argv.remove("--check")
        from repro.analysis.simcheck.engine import main as check_main
        return check_main(argv)
    from repro.analysis.lint import main as lint_main
    return lint_main(argv)


sys.exit(main())
