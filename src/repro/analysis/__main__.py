"""``python -m repro.analysis`` — run simlint standalone (CI entry)."""

import sys

from repro.analysis.lint import main

sys.exit(main())
