"""AoE protocol conformance validator.

Subscribes to one initiator's observer stream (and, when a
distribution fabric is present, the peer directory's mutation stream)
and checks the transport rules the retransmission and peer-serving
machinery depend on:

* ``duplicate-tag`` — a fresh command reusing a tag that is still in
  flight.  Replies are matched by tag, so a duplicate silently
  cross-wires two transactions.
* ``karn-violation`` — an RTT sample taken from a retransmitted
  command.  Per Karn's algorithm the reply is ambiguous (it may answer
  either copy) and must not feed the RTO estimator.
* ``nak-without-invalidate`` — a peer NAK whose blocks were still
  advertised by that peer and never invalidated in the directory.
  The NAK path is what corrects stale gossip
  (:mod:`repro.dist.peer`); skipping the invalidation re-sends every
  later fetch into the same refusal.
"""

from __future__ import annotations

from repro.analysis.sanitizers import Sanitizer


class AoeConformanceValidator(Sanitizer):
    """See module docstring; attach via ``SanitizerSuite``."""

    name = "aoe-conformance"

    def __init__(self, env, initiator, fabric=None,
                 strict: bool = False):
        super().__init__(env, strict)
        self.initiator = initiator
        self.fabric = fabric
        #: Tags with an unanswered command outstanding.
        self.in_flight: dict[int, str] = {}
        #: ``(port, block) -> nak time`` — invalidations still owed.
        self.pending_invalidations: dict[tuple[str, int], float] = {}
        self.naks_seen = 0
        self.samples_seen = 0
        initiator.observers.append(self._on_client_event)
        if fabric is not None:
            fabric.directory.listeners.append(self._on_directory_event)

    # -- initiator stream ---------------------------------------------------

    def _on_client_event(self, kind: str, **fields) -> None:
        if kind == "send":
            if not fields["retransmit"]:
                tag = fields["tag"]
                if tag in self.in_flight:
                    self.report(
                        "duplicate-tag",
                        f"fresh command reuses tag {tag} while it is "
                        f"still in flight to "
                        f"{self.in_flight[tag]!r}",
                        tag=tag, target=fields["target"])
                self.in_flight[tag] = fields["target"]
        elif kind == "rtt-sample":
            self.samples_seen += 1
            if fields["retries"] > 0:
                self.report(
                    "karn-violation",
                    f"RTT sample taken from tag {fields['tag']} after "
                    f"{fields['retries']} retransmission(s) — the "
                    f"reply is ambiguous (Karn's algorithm)",
                    tag=fields["tag"], retries=fields["retries"])
        elif kind in ("complete", "timeout"):
            self.in_flight.pop(fields["tag"], None)
        elif kind == "nak":
            self.naks_seen += 1
            self.in_flight.pop(fields["tag"], None)
            self._expect_invalidations(fields)

    def _expect_invalidations(self, fields: dict) -> None:
        if self.fabric is None:
            return
        target = fields["target"]
        advertised = self.fabric.directory.advertised(target)
        if not advertised:
            return  # not a directory-listed peer; nothing to retract
        blocks = self.fabric.blocks_of(fields["lba"],
                                       fields["sector_count"])
        for block in blocks:
            if block in advertised:
                self.pending_invalidations.setdefault(
                    (target, block), self.env.now)

    # -- directory stream ---------------------------------------------------

    def _on_directory_event(self, event: str, port: str,
                            **details) -> None:
        if event == "invalidate":
            self.pending_invalidations.pop((port, details["block"]),
                                           None)
        elif event == "withdraw":
            for key in [key for key in self.pending_invalidations
                        if key[0] == port]:
                del self.pending_invalidations[key]
        elif event == "publish":
            # A republish that drops the block retracts it just as
            # surely as an explicit invalidation.
            blocks = details["blocks"]
            for key in [key for key in self.pending_invalidations
                        if key[0] == port and key[1] not in blocks]:
                del self.pending_invalidations[key]

    # -- end of run ---------------------------------------------------------

    def finalize(self) -> None:
        for (port, block), when in sorted(
                self.pending_invalidations.items()):
            self.report(
                "nak-without-invalidate",
                f"peer {port!r} NAKed block {block} at t={when:.6f} "
                f"but the directory entry was never invalidated",
                port=port, block=block, nak_time=when)
