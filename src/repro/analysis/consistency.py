"""Bitmap↔disk consistency checker.

The deployment's end state must satisfy two invariants (paper 3.3):

* **filled-means-image**: every sector inside a FILLED copy block
  holds the image store's content — except sectors the guest wrote,
  whose data is newer by definition;
* **guest-data-survives**: once a guest write has landed on disk, no
  later non-guest write may replace it.

The checker shadows guest-write provenance as the run unfolds (the
bitmap's listeners for mediated writes, the raw disk observer for the
post-devirtualization era) and compares states at the moments the
suite wires up: de-virtualization, deploy-complete, and finalize.  A
third structural invariant rides along: the dirty overlay may only
describe sectors of non-FILLED blocks.
"""

from __future__ import annotations

from repro.analysis.sanitizers import Sanitizer
from repro.storage.disk import content_digest
from repro.util.intervalmap import IntervalMap


class BitmapDiskChecker(Sanitizer):
    """See module docstring; attach via ``SanitizerSuite``."""

    name = "bitmap-disk"

    def __init__(self, env, bitmap, disk, image_contents,
                 strict: bool = False):
        super().__init__(env, strict)
        self.bitmap = bitmap
        self.disk = disk
        self.image_contents = image_contents
        #: Sectors the guest wrote — recorded intent (mediated) plus
        #: landed post-devirt writes.  Mismatches here are expected.
        self.guest_written = IntervalMap()
        #: Sectors whose guest write has actually landed on disk.
        self.guest_landed = IntervalMap()
        #: Most recent landed writer per sector ("guest"/"vmm"/...).
        self.last_writer = IntervalMap()
        self.checks_run = 0
        bitmap.guest_write_listeners.append(self._on_guest_record)
        disk.write_observers.append(self._on_disk_write)

    # -- provenance shadowing ----------------------------------------------

    def _clip(self, start: int, end: int) -> tuple[int, int]:
        return max(start, 0), min(end, self.bitmap.image_sectors)

    def _on_guest_record(self, lba: int, sector_count: int) -> None:
        start, end = self._clip(lba, lba + sector_count)
        if start < end:
            self.guest_written.set_range(start, end - start, True)

    def _on_disk_write(self, request) -> None:
        for run_start, run_end, _token in request.buffer.runs:
            start, end = self._clip(run_start, run_end)
            if start >= end:
                continue
            self.last_writer.set_range(start, end - start,
                                       request.origin)
            if request.origin == "guest":
                self.guest_landed.set_range(start, end - start, True)
                self.guest_written.set_range(start, end - start, True)

    # -- the checks ---------------------------------------------------------

    def check(self, when: str = "manual") -> int:
        """Verify all invariants now; returns new violation count."""
        before = len(self.violations)
        self.checks_run += 1
        self._check_filled_content(when)
        self._check_guest_preserved(when)
        self._check_dirty_overlay(when)
        return len(self.violations) - before

    def _check_filled_content(self, when: str) -> None:
        image_end = self.bitmap.image_sectors
        for block_start, block_end, _value in self.bitmap.filled_runs():
            start = block_start * self.bitmap.block_sectors
            end = min(block_end * self.bitmap.block_sectors, image_end)
            for sub_start, sub_end in _mismatch_ranges(
                    self.image_contents, self.disk.contents, start,
                    end - start):
                span = sub_end - sub_start
                if self.guest_written.covered_length(sub_start,
                                                     span) == span:
                    continue  # guest data, newer by definition
                self.report(
                    "filled-mismatch",
                    f"[{when}] FILLED sectors [{sub_start}, {sub_end}) "
                    f"do not hold the image store's content",
                    lba=sub_start, sectors=span,
                    block=self.bitmap.block_of(sub_start),
                    disk=self.disk.content_hash(sub_start, span),
                    image=content_digest(
                        self.image_contents.runs_in(sub_start, span)))

    def _check_guest_preserved(self, when: str) -> None:
        for start, end, value in self.guest_landed.runs():
            if not value:
                continue
            for sub_start, sub_end, writer in self.last_writer.runs_in(
                    start, end - start):
                if writer in (None, "guest"):
                    continue
                self.report(
                    "guest-overwritten",
                    f"[{when}] guest-written sectors "
                    f"[{sub_start}, {sub_end}) were last written by "
                    f"{writer!r}",
                    lba=sub_start, sectors=sub_end - sub_start,
                    writer=writer)

    def _check_dirty_overlay(self, when: str) -> None:
        for start, end, value in self.bitmap.dirty.runs():
            if value is None:
                continue
            for block in self.bitmap.blocks_overlapping(start,
                                                        end - start):
                if self.bitmap.is_filled(block):
                    self.report(
                        "dirty-in-filled",
                        f"[{when}] dirty-overlay entry "
                        f"[{start}, {end}) inside FILLED block {block} "
                        f"— the overlay must be cleared on fill",
                        lba=start, block=block)

    def finalize(self) -> None:
        self.check(when="final")


def _mismatch_ranges(expected: IntervalMap, actual: IntervalMap,
                     start: int, count: int):
    """Maximal ``(start, end)`` subranges where the two maps differ."""
    if count <= 0:
        return []
    expected_runs = expected.runs_in(start, count)
    actual_runs = actual.runs_in(start, count)
    mismatches: list[list[int]] = []
    exp = next(expected_runs)
    act = next(actual_runs)
    cursor = start
    end = start + count
    while cursor < end:
        segment_end = min(exp[1], act[1])
        if exp[2] != act[2]:
            if mismatches and mismatches[-1][1] == cursor:
                mismatches[-1][1] = segment_end
            else:
                mismatches.append([cursor, segment_end])
        cursor = segment_end
        if exp[1] == cursor and cursor < end:
            exp = next(expected_runs)
        if act[1] == cursor and cursor < end:
            act = next(actual_runs)
    return [(run_start, run_end) for run_start, run_end in mismatches]
