"""simlint: an AST-based static pass over the simulator's source.

A deterministic discrete-event simulation has correctness rules no
general-purpose linter knows about: no wall-clock reads, no hidden
global RNG state, no blocking primitives outside the engine, and a
layering discipline that keeps the engine importable without the
systems built on top of it.  This module is the framework — file
discovery, suppression comments, finding records, the CLI — and
:mod:`repro.analysis.rules` is the pluggable rule catalog.

Findings print as ``path:line:col: RULE severity: message``.  A line
can opt out with a trailing comment::

    stamp = time.time()  # simlint: ignore[SIM001] -- host-side only

``ignore`` with no rule list suppresses every rule on that line; the
``-- justification`` tail is free text (and encouraged).  Exit status
is non-zero iff any *error*-severity finding is unsuppressed.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: ``# <tool>: ignore``, ``# <tool>: ignore[SIM001, SIM004]`` (multiple
#: ids), and the ``ignore-next-line`` forms of both, which suppress the
#: line *below* the comment — for findings on lines too long to carry a
#: trailing marker.  ``{tool}`` is substituted per linter so simcheck
#: shares the grammar under its own prefix.
_SUPPRESSION_TEMPLATE = (
    r"#\s*{tool}:\s*ignore(?P<next>-next-line)?"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")
_SUPPRESSION = re.compile(_SUPPRESSION_TEMPLATE.format(tool="simlint"))


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.severity}: {self.message}")


class LintContext:
    """Everything a rule needs to examine one module."""

    def __init__(self, path: str, module: str, source: str,
                 tree: ast.Module):
        self.path = path
        self.module = module
        self.source = source
        self.tree = tree
        #: line number -> set of suppressed rule ids ("*" = all).
        self.suppressions = _parse_suppressions(source)
        #: local alias -> imported module name ("t" -> "time").
        self.module_aliases: dict[str, str] = {}
        #: local alias -> (module, attribute) for from-imports.
        self.from_imports: dict[str, tuple[str, str]] = {}
        self._scan_imports()

    def _scan_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # "import a.b" binds "a"; "import a.b as c" binds
                    # the full dotted path to "c".
                    target = alias.name if alias.asname \
                        else alias.name.split(".")[0]
                    self.module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.from_imports[local] = (node.module, alias.name)

    def resolve_call(self, func: ast.expr) -> str | None:
        """Normalize a call target to a real dotted name, or ``None``.

        ``t.monotonic()`` with ``import time as t`` resolves to
        ``"time.monotonic"``; ``now()`` after ``from time import time
        as now`` resolves to ``"time.time"``.
        """
        chain = _dotted_chain(func)
        if not chain:
            return None
        head, rest = chain[0], chain[1:]
        if head in self.module_aliases:
            return ".".join([self.module_aliases[head], *rest])
        if head in self.from_imports:
            module, attribute = self.from_imports[head]
            return ".".join([module, attribute, *rest])
        return ".".join(chain)

    def suppressed(self, line: int, rule: str) -> bool:
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return "*" in rules or rule in rules


def _dotted_chain(node: ast.expr) -> list[str] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _parse_suppressions(source: str,
                        pattern: re.Pattern = _SUPPRESSION
                        ) -> dict[int, set[str]]:
    """Suppressed line -> rule-id set (``"*"`` = every rule).

    ``ignore-next-line`` anchors the suppression one line down; both
    forms accept a bracketed multi-id list.  A same-line and a
    next-line marker landing on the same line merge their rule sets.
    """
    table: dict[int, set[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = pattern.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        if listed is None:
            rules = {"*"}
        else:
            rules = {rule.strip().upper()
                     for rule in listed.split(",")
                     if rule.strip()}
            if not rules:
                rules = {"*"}
        target = number + 1 if match.group("next") else number
        table.setdefault(target, set()).update(rules)
    return table


def suppression_table(source: str, tool: str) -> dict[int, set[str]]:
    """The suppression grammar under another tool prefix (simcheck)."""
    return _parse_suppressions(
        source, re.compile(_SUPPRESSION_TEMPLATE.format(tool=tool)))


# -- rule registry ------------------------------------------------------------

RULES: list = []


def register_rule(cls):
    """Class decorator adding a rule to the default catalog."""
    RULES.append(cls())
    return cls


def all_rules() -> list:
    """The registered rule instances (imports the catalog on demand)."""
    from repro.analysis import rules  # noqa: F401  (registration)
    return list(RULES)


# -- running ------------------------------------------------------------------

def module_name_for(path: Path | str) -> str:
    """Dotted module name, anchored at the ``repro`` package root."""
    parts = list(Path(path).with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or ["repro"]
    return ".".join(parts)


def lint_source(source: str, module: str,
                path: str = "<memory>") -> list[Finding]:
    """Run every rule over one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(path, error.lineno or 1, error.offset or 0,
                        "SIM000", SEVERITY_ERROR,
                        f"syntax error: {error.msg}")]
    context = LintContext(path, module, source, tree)
    findings = [
        finding
        for rule in all_rules()
        for finding in rule.check(context)
        if not context.suppressed(finding.line, finding.rule)
    ]
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def iter_python_files(paths) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        elif root.suffix == ".py":
            files.append(root)
        else:
            raise FileNotFoundError(f"not a python file or tree: {root}")
    return files


def lint_paths(paths) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, module_name_for(path),
                                    path=str(path)))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="Static determinism/architecture lint for the "
        "BMcast simulator.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default: src/repro)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity}]  {rule.summary}")
        return 0

    try:
        findings = lint_paths(args.paths or ["src/repro"])
    except FileNotFoundError as error:
        print(f"simlint: {error}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.format())
    errors = sum(1 for f in findings if f.severity == SEVERITY_ERROR)
    warnings = len(findings) - errors
    if findings:
        print(f"simlint: {errors} error(s), {warnings} warning(s)")
    else:
        print("simlint: clean")
    return 1 if errors else 0
