"""Replay-divergence checker.

A correct simulation is a pure function of its inputs: running the
same scenario twice must produce the *identical* event stream.  The
checker attaches a :class:`ReplayRecorder` to each run's environment
(via ``Environment.trace_hook``), folds every popped event into a
rolling BLAKE2 hash of ``(time, event type, process name)``, and
compares digests across runs.  Any wall-clock read, unseeded RNG
draw, or iteration over an unordered container with nondeterministic
order shows up as a digest mismatch — with the event count narrowing
down where the streams parted.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


class ReplayRecorder:
    """Rolling hash over one environment's popped-event stream."""

    def __init__(self):
        self._hash = hashlib.blake2b(digest_size=16)
        self.events = 0

    def attach(self, env) -> "ReplayRecorder":
        if env.trace_hook is not None:
            raise RuntimeError("environment already has a trace hook")
        env.trace_hook = self._on_event
        return self

    def _on_event(self, now: float, event) -> None:
        self.events += 1
        name = getattr(event, "name", None) or ""
        record = f"{now!r}|{type(event).__name__}|{name}\n"
        self._hash.update(record.encode("utf-8"))

    def digest(self) -> str:
        return self._hash.hexdigest()


@dataclass(frozen=True)
class ReplayReport:
    """Digests and event counts from ``runs`` executions."""

    digests: tuple
    event_counts: tuple

    @property
    def divergent(self) -> bool:
        return len(set(self.digests)) > 1

    def describe(self) -> str:
        if not self.divergent:
            return (f"replay: {len(self.digests)} runs identical "
                    f"({self.event_counts[0]} events, "
                    f"digest {self.digests[0][:16]})")
        lines = ["replay: DIVERGENT runs"]
        lines.extend(
            f"  run {index}: {count} events, digest {digest[:16]}"
            for index, (digest, count)
            in enumerate(zip(self.digests, self.event_counts)))
        return "\n".join(lines)


def check_replay(scenario, runs: int = 2) -> ReplayReport:
    """Run ``scenario(recorder)`` ``runs`` times and compare streams.

    ``scenario`` must build a **fresh** environment each call, attach
    the recorder to it (``recorder.attach(env)``) before running, and
    share no mutable state across calls — shared state is exactly the
    bug class this checker exists to expose.
    """
    if runs < 2:
        raise ValueError("a replay check needs at least 2 runs")
    digests = []
    counts = []
    for _ in range(runs):
        recorder = ReplayRecorder()
        scenario(recorder)
        digests.append(recorder.digest())
        counts.append(recorder.events)
    return ReplayReport(tuple(digests), tuple(counts))


def deployment_scenario(image_factory, node_count: int = 1,
                        server_count: int = 1, p2p: bool = False,
                        select_policy: str = "round-robin",
                        loss_probability: float = 0.0,
                        wave_size: int | None = None,
                        policy=None, wait: bool = True,
                        telemetry_factory=None,
                        fast_lane: bool = True,
                        deploy_options: dict | None = None):
    """A canned scenario callable for :func:`check_replay`.

    ``image_factory`` is a zero-argument callable returning a fresh
    :class:`~repro.guest.osimage.OsImage` — each run needs its own
    (images carry mutable content maps).  ``wave_size`` switches from
    a flat ``deploy_all`` to the wave scheduler.  ``telemetry_factory``
    (a callable ``env -> telemetry``) arms telemetry for each run —
    comparing digests of a plain scenario against one with forensics
    enabled is how the observability layer proves it does not perturb
    the timeline.  ``fast_lane=False`` runs on the pure-heap reference
    scheduler — comparing digests of a fast-lane run against a
    reference run is how the kernel fast path proves it reorders
    nothing (see ``docs/performance.md``).  ``deploy_options`` are
    forwarded to every deployment — e.g. ``{"fluid": True}``; the
    fluid-off-is-byte-identical tests compare a ``fluid=False`` run
    against one with no option at all.
    """
    from repro.cloud import Cluster, WaveScheduler, build_testbed
    from repro.obs.telemetry import NULL_TELEMETRY
    from repro.sim import Environment

    def scenario(recorder: ReplayRecorder) -> None:
        env = Environment(fast_lane=fast_lane)
        telemetry = NULL_TELEMETRY if telemetry_factory is None \
            else telemetry_factory(env)
        testbed = build_testbed(node_count=node_count,
                                server_count=server_count, p2p=p2p,
                                select_policy=select_policy,
                                loss_probability=loss_probability,
                                image=image_factory(),
                                env=env, telemetry=telemetry)
        recorder.attach(testbed.env)
        cluster = Cluster(testbed)

        def run():
            extra = deploy_options or {}
            if wave_size is not None:
                scheduler = WaveScheduler(cluster, wave_size=wave_size)
                yield from scheduler.run("bmcast", policy=policy,
                                         **extra)
            else:
                yield from cluster.deploy_all("bmcast", policy=policy,
                                              **extra)
            if wait:
                yield from cluster.wait_deployment_complete(
                    settle_seconds=1.0)

        testbed.env.run(until=testbed.env.process(run()))

    return scenario
