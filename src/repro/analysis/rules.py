"""The simlint rule catalog.

Each rule is a class with ``id``, ``severity``, ``summary`` and a
``check(context)`` generator yielding
:class:`~repro.analysis.lint.Finding` objects; decorating it with
:func:`~repro.analysis.lint.register_rule` puts it in the default
catalog.  See ``docs/analysis.md`` for the how-to-add-a-rule recipe.

| id     | what it forbids                                        |
|--------|--------------------------------------------------------|
| SIM001 | wall-clock reads (time.time, datetime.now, ...)        |
| SIM002 | unseeded / module-global random draws                  |
| SIM003 | ``import random`` outside ``repro.util.rng``           |
| SIM004 | mutable default arguments                              |
| SIM005 | imports that climb the architecture layering           |
| SIM006 | blocking primitives (time.sleep, threading, ...)       |
"""

from __future__ import annotations

import ast

from repro.analysis.lint import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    LintContext,
    register_rule,
)


class Rule:
    """Base class; subclasses set the metadata and implement check()."""

    id = "SIM000"
    severity = SEVERITY_ERROR
    summary = ""

    def check(self, context: LintContext):
        raise NotImplementedError

    def finding(self, context: LintContext, node: ast.AST,
                message: str) -> Finding:
        return Finding(context.path, node.lineno, node.col_offset,
                       self.id, self.severity, message)


@register_rule
class WallClockRule(Rule):
    id = "SIM001"
    severity = SEVERITY_ERROR
    summary = ("no wall-clock time sources — simulated time comes from "
               "env.now")

    TIME_FUNCS = frozenset({
        "time", "monotonic", "perf_counter", "process_time",
        "time_ns", "monotonic_ns", "perf_counter_ns",
        "process_time_ns", "clock",
    })
    DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

    def check(self, context: LintContext):
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = context.resolve_call(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if parts[0] == "time" and len(parts) == 2 \
                    and parts[1] in self.TIME_FUNCS:
                yield self.finding(
                    context, node,
                    f"wall-clock call {name}() — use env.now")
            elif parts[0] == "datetime" \
                    and parts[-1] in self.DATETIME_FUNCS:
                yield self.finding(
                    context, node,
                    f"wall-clock call {name}() — use env.now")


@register_rule
class UnseededRandomRule(Rule):
    id = "SIM002"
    severity = SEVERITY_ERROR
    summary = ("no unseeded or module-global random draws — every RNG "
               "must be a seeded instance")

    #: The module-level functions that draw from random's hidden
    #: global generator.
    GLOBAL_DRAWS = frozenset({
        "random", "randrange", "randint", "randbytes", "choice",
        "choices", "shuffle", "sample", "uniform", "triangular",
        "gauss", "normalvariate", "lognormvariate", "expovariate",
        "vonmisesvariate", "gammavariate", "betavariate",
        "paretovariate", "weibullvariate", "getrandbits", "seed",
    })

    def check(self, context: LintContext):
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = context.resolve_call(node.func)
            if name is None or not name.startswith("random."):
                continue
            attribute = name.split(".", 1)[1]
            if attribute in self.GLOBAL_DRAWS:
                yield self.finding(
                    context, node,
                    f"{name}() draws from the shared global RNG — "
                    f"use repro.util.rng.make_rng(seed)")
            elif attribute == "Random" and not node.args \
                    and not node.keywords:
                yield self.finding(
                    context, node,
                    "random.Random() without a seed is "
                    "nondeterministic — pass an explicit seed")
            elif attribute == "SystemRandom":
                yield self.finding(
                    context, node,
                    "random.SystemRandom draws OS entropy — "
                    "never reproducible")


@register_rule
class RandomImportRule(Rule):
    id = "SIM003"
    severity = SEVERITY_ERROR
    summary = ("``import random`` only inside repro.util.rng — "
               "everything else takes a seeded instance")

    ALLOWED_MODULES = frozenset({"repro.util.rng"})

    def check(self, context: LintContext):
        if context.module in self.ALLOWED_MODULES:
            return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                names = [node.module or ""]
            else:
                continue
            for name in names:
                if name == "random" or name.startswith("random."):
                    yield self.finding(
                        context, node,
                        "import of the random module — use "
                        "repro.util.rng.make_rng(seed) instead")
                    break


@register_rule
class MutableDefaultRule(Rule):
    id = "SIM004"
    severity = SEVERITY_ERROR
    summary = "no mutable default arguments"

    LITERALS = (ast.List, ast.Dict, ast.Set,
                ast.ListComp, ast.DictComp, ast.SetComp)
    CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def check(self, context: LintContext):
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults
                if default is not None]
            for default in defaults:
                if self._mutable(default):
                    yield self.finding(
                        context, default,
                        f"mutable default argument in {node.name}() — "
                        f"shared across calls; default to None or a "
                        f"tuple")

    def _mutable(self, node: ast.expr) -> bool:
        if isinstance(node, self.LITERALS):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self.CALLS)


@register_rule
class LayeringRule(Rule):
    id = "SIM005"
    severity = SEVERITY_ERROR
    summary = ("architecture layering: a package may import only its "
               "own layer or lower")

    #: repro.<package> -> rank.  An import is legal iff the imported
    #: package's rank is <= the importer's.  Derived from the intended
    #: dependency order: the engine (sim) stands alone; device models
    #: (net/hw/storage) build on it; the AoE protocol rides the net;
    #: guest and dist ride AoE; the VMM composes all of them (its
    #: fetch path routes through repro.dist); orchestration (cloud,
    #: baselines, apps) composes VMMs; the elastic control plane (ctl)
    #: drives deployments and reclamations, so it sits above cloud —
    #: and nothing below it may ever import it back; tooling (cli,
    #: analysis) sees everything.
    RANKS = {
        "params": 0, "util": 0,
        "sim": 1,
        "obs": 2, "metrics": 2,
        # net includes the fluid-flow solver (repro.net.flow), which
        # must stay at device-model rank: it may import sim/obs/params
        # only, never the AoE or VMM layers that drive it.
        "net": 3, "hw": 3, "storage": 3,
        "aoe": 4,
        "guest": 5, "dist": 5,
        "vmm": 6,
        "cloud": 7, "baselines": 7, "apps": 7,
        "ctl": 8,
        # The sweep runner (perf) fans whole scenarios — ctl loops,
        # wave deployments — across worker processes, so it sits with
        # the tooling layer: it may import anything, nothing imports it
        # back except the CLI.
        "perf": 9,
        "cli": 9, "analysis": 9, "__main__": 9,
        # The package root re-exports the public API; it sees everything.
        "repro": 9,
    }

    def check(self, context: LintContext):
        own = self._layer_of(context.module)
        own_rank = self.RANKS.get(own) if own else None
        for node in ast.walk(context.tree):
            for target, site in self._imported_repro_packages(node):
                target_rank = self.RANKS.get(target)
                if target_rank is None:
                    continue
                if own_rank is None or target_rank > own_rank:
                    yield self.finding(
                        context, site,
                        f"layering violation: repro.{own or '?'} "
                        f"(rank {own_rank}) imports repro.{target} "
                        f"(rank {target_rank})")

    @staticmethod
    def _layer_of(module: str) -> str | None:
        parts = module.split(".")
        if parts[0] != "repro":
            return None
        return parts[1] if len(parts) > 1 else "repro"

    @staticmethod
    def _imported_repro_packages(node: ast.AST):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    yield parts[1], node
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            parts = node.module.split(".")
            if parts[0] != "repro":
                return
            if len(parts) > 1:
                yield parts[1], node
            else:
                # "from repro import vmm" names packages directly.
                for alias in node.names:
                    yield alias.name, node


@register_rule
class BlockingCallRule(Rule):
    id = "SIM006"
    severity = SEVERITY_ERROR
    summary = ("no blocking primitives — handlers must yield to the "
               "engine, never sleep or spawn OS threads")

    BLOCKING_MODULES = frozenset({
        "threading", "multiprocessing", "subprocess", "socket",
        "select", "selectors",
    })

    def check(self, context: LintContext):
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                name = context.resolve_call(node.func)
                if name == "time.sleep":
                    yield self.finding(
                        context, node,
                        "time.sleep() blocks the host — yield "
                        "env.timeout(delay) instead")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self.BLOCKING_MODULES:
                        yield self.finding(
                            context, node,
                            f"import of blocking module {root!r} in "
                            f"simulation code")
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module:
                root = node.module.split(".")[0]
                if root in self.BLOCKING_MODULES:
                    yield self.finding(
                        context, node,
                        f"import of blocking module {root!r} in "
                        f"simulation code")
