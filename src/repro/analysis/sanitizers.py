"""Runtime sanitizer framework: violations, base class, the suite.

Sanitizers are opt-in observers that subscribe to the hooks the core
already exposes (disk write observers, bitmap transition listeners,
AoE client observers, directory listeners) and cross-check the
invariants the paper's correctness argument rests on.  They never
mutate simulation state and cost nothing when not attached.

Use::

    suite = SanitizerSuite(env)
    provisioner.deploy("bmcast", sanitizers=suite, ...)   # attaches
    ...run...
    suite.finalize()
    suite.assert_clean()          # or inspect suite.violations

``strict=True`` turns the first violation into an immediate
:class:`SanitizerError` at the exact simulated moment it happens —
the right mode for bisecting; the default collects and reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SanitizerError(AssertionError):
    """Raised in strict mode, and by :meth:`SanitizerSuite.assert_clean`."""


@dataclass(frozen=True)
class Violation:
    """One invariant breach, stamped with simulated time."""

    sanitizer: str
    rule: str
    time: float
    message: str
    details: dict = field(default_factory=dict)

    def format(self) -> str:
        extra = ""
        if self.details:
            extra = " (" + ", ".join(
                f"{key}={value!r}"
                for key, value in sorted(self.details.items())) + ")"
        return (f"[{self.sanitizer}] t={self.time:.6f} "
                f"{self.rule}: {self.message}{extra}")


class Sanitizer:
    """Base class: violation collection + strict mode."""

    name = "sanitizer"

    def __init__(self, env, strict: bool = False):
        self.env = env
        self.strict = strict
        self.violations: list[Violation] = []

    def report(self, rule: str, message: str, **details) -> Violation:
        violation = Violation(self.name, rule, self.env.now, message,
                              details)
        self.violations.append(violation)
        if self.strict:
            raise SanitizerError(violation.format())
        return violation

    def finalize(self) -> None:
        """End-of-run checks; the suite calls this once."""


class SanitizerSuite:
    """All runtime sanitizers for one simulation, attached per VMM.

    One suite may span a whole cluster: ``attach_deployment`` is called
    once per BMcast VMM (the provisioner does it when handed
    ``sanitizers=suite``), and ``violations`` aggregates across all of
    them.
    """

    def __init__(self, env, strict: bool = False):
        self.env = env
        self.strict = strict
        self.sanitizers: list[Sanitizer] = []
        self._finalized = False

    def attach_deployment(self, vmm, image) -> "SanitizerSuite":
        """Wire every deployment sanitizer to one BMcast VMM.

        Must be called before the VMM boots — attaching late misses
        early guest writes and fabricates consistency violations.
        """
        from repro.analysis.aoe_conformance import AoeConformanceValidator
        from repro.analysis.consistency import BitmapDiskChecker
        from repro.analysis.write_race import WriteRaceDetector

        disk = vmm.machine.disk_controller.disk
        self.sanitizers.append(WriteRaceDetector(
            self.env, bitmap=vmm.bitmap, disk=disk, strict=self.strict))
        checker = BitmapDiskChecker(
            self.env, bitmap=vmm.bitmap, disk=disk,
            image_contents=image.contents, strict=self.strict)
        self.sanitizers.append(checker)
        # Check the full invariant at the two moments the issue names:
        # de-virtualization (mediation ends) and deploy-complete (the
        # copier's done event fires once the image is fully local).
        vmm.devirtualizer.completion_listeners.append(
            lambda: checker.check(when="devirt"))
        vmm.copier.done.callbacks.append(
            lambda event: checker.check(when="deploy-complete"))
        self.sanitizers.append(AoeConformanceValidator(
            self.env, initiator=vmm.initiator, fabric=vmm.fabric,
            strict=self.strict))
        return self

    def add(self, sanitizer: Sanitizer) -> Sanitizer:
        """Register a hand-built sanitizer with the suite."""
        self.sanitizers.append(sanitizer)
        return sanitizer

    @property
    def violations(self) -> list[Violation]:
        return [violation
                for sanitizer in self.sanitizers
                for violation in sanitizer.violations]

    def finalize(self) -> None:
        """Run every sanitizer's end-of-run checks (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        for sanitizer in self.sanitizers:
            sanitizer.finalize()

    def assert_clean(self) -> None:
        self.finalize()
        if self.violations:
            raise SanitizerError(self.describe())

    def summary(self) -> dict:
        """Violation counts per sanitizer name."""
        counts: dict[str, int] = {}
        for sanitizer in self.sanitizers:
            counts[sanitizer.name] = counts.get(sanitizer.name, 0) \
                + len(sanitizer.violations)
        return counts

    def describe(self) -> str:
        violations = self.violations
        if not violations:
            return ("sanitizers: clean "
                    f"({len(self.sanitizers)} attached)")
        lines = [f"sanitizers: {len(violations)} violation(s)"]
        lines.extend(violation.format()
                     for violation in violations)
        return "\n".join(lines)
