"""simcheck: whole-program static analysis for the simulator.

Where :mod:`repro.analysis.lint` checks one module at a time, simcheck
parses the entire tree into a :class:`~repro.analysis.simcheck.model.
ProjectModel` — call graph, process-function closure, attribute-type
tables — and runs five interprocedural passes over it: determinism
taint, process discipline, shared-state race candidates, FSM model
extraction, and import layering.  ``repro check`` is the CLI.
"""

from repro.analysis.simcheck.baseline import Baseline, BaselineEntry
from repro.analysis.simcheck.engine import (
    CATALOG,
    CheckReport,
    main,
    run_check,
)
from repro.analysis.simcheck.fsm import check_fsms
from repro.analysis.simcheck.imports import import_graph, imports_pass
from repro.analysis.simcheck.model import (
    ModuleSummary,
    ProjectModel,
    build_model,
    summarize_source,
)
from repro.analysis.simcheck.passes import (
    determinism_pass,
    discipline_pass,
    shared_state_pass,
)
from repro.analysis.simcheck.sarif import sarif_document, write_sarif

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CATALOG",
    "CheckReport",
    "ModuleSummary",
    "ProjectModel",
    "build_model",
    "check_fsms",
    "determinism_pass",
    "discipline_pass",
    "import_graph",
    "imports_pass",
    "main",
    "run_check",
    "sarif_document",
    "shared_state_pass",
    "summarize_source",
    "write_sarif",
]
