"""The committed simcheck baseline: grandfathered findings.

A whole-program pass lands on an existing codebase with existing
findings; the baseline file lets the gate be strict for *new* code
while the backlog is burned down deliberately.  Entries are matched by
``(code, normalized path, stripped source line)`` — not line numbers —
so unrelated edits above a grandfathered finding do not invalidate it,
while any edit to the offending line itself surfaces the finding
again.

``--write-baseline`` regenerates the file from the current run,
preserving the justification of every entry that still matches and
dropping entries whose finding no longer exists (the expire half of
the round trip).  Stale entries are reported on every run so the file
cannot quietly rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

BASELINE_VERSION = 1
DEFAULT_JUSTIFICATION = "grandfathered at baseline creation"


def normalize_path(path: str) -> str:
    """Stable repo-relative form: the suffix from the last ``repro``
    path component (``src/repro/x.py`` and ``/abs/src/repro/x.py``
    normalize identically); the bare filename otherwise."""
    parts = Path(path).as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return parts[-1]


@dataclass
class BaselineEntry:
    code: str
    path: str
    context: str
    justification: str = DEFAULT_JUSTIFICATION

    @property
    def key(self) -> tuple:
        return (self.code, self.path, self.context)


class Baseline:
    """Grandfathered findings, keyed by (code, path, context line)."""

    def __init__(self, entries=()):
        self.entries = list(entries)
        self._matched: set[tuple] = set()

    @classmethod
    def load(cls, path) -> "Baseline":
        file = Path(path)
        if not file.exists():
            return cls()
        payload = json.loads(file.read_text(encoding="utf-8"))
        entries = [
            BaselineEntry(
                code=item["code"], path=item["path"],
                context=item["context"],
                justification=item.get("justification",
                                       DEFAULT_JUSTIFICATION))
            for item in payload.get("findings", ())
        ]
        return cls(entries)

    def matches(self, finding, context: str) -> bool:
        """True (and marks the entry used) when grandfathered."""
        key = (finding.rule, normalize_path(finding.path),
               context.strip())
        for entry in self.entries:
            if entry.key == key:
                self._matched.add(key)
                return True
        return False

    def stale_entries(self) -> list:
        """Entries that matched nothing in the run just applied."""
        return [entry for entry in self.entries
                if entry.key not in self._matched]

    def write(self, path, findings, context_of) -> int:
        """Regenerate the file from ``findings``; returns entry count.

        Justifications of still-matching entries carry over; entries
        without a surviving finding expire.
        """
        kept: dict[tuple, BaselineEntry] = {}
        existing = {entry.key: entry for entry in self.entries}
        for finding in findings:
            entry = BaselineEntry(
                code=finding.rule,
                path=normalize_path(finding.path),
                context=context_of(finding).strip())
            previous = existing.get(entry.key)
            if previous is not None:
                entry.justification = previous.justification
            kept.setdefault(entry.key, entry)
        payload = {
            "version": BASELINE_VERSION,
            "findings": [
                {"code": entry.code, "path": entry.path,
                 "context": entry.context,
                 "justification": entry.justification}
                for _, entry in sorted(kept.items())
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return len(kept)
