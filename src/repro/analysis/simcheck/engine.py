"""The simcheck engine: cache, pass orchestration, ranking, CLI.

``repro check [paths]`` (or ``python -m repro.analysis --check``)
builds the project model — incrementally, through an on-disk cache
keyed by file content hash — runs the five whole-program passes, and
reports ranked findings:

====================  ========  ==============================================
code                  severity  finding
====================  ========  ==============================================
CHECK000              error     file fails to parse
CHECK001              error     set-iteration order can reach event scheduling
CHECK010              error     generator/event constructed and discarded
CHECK011              error     process generator yields a plain constant
CHECK012              warning   broad except-pass swallows Interrupt
CHECK020              warning   shared attribute written by 2+ processes,
                                no claim protocol
CHECK030              error     declared FSM transition missing from the code
CHECK031              error     code transition the FSM spec does not declare
CHECK032              error     unreachable or dead FSM state
CHECK033              error     busy FSM state without a recovery edge
CHECK034              error     FSM spec malformed / extraction failed
CHECK050              error     import cycle among project modules
CHECK051              warning   package missing from SIM005's rank table
CHECK052              error     whole-program layering violation
====================  ========  ==============================================

Suppression uses simlint's grammar under the ``simcheck`` prefix
(``# simcheck: ignore[CHECK001] -- why`` and ``ignore-next-line``);
pre-existing findings are grandfathered via the committed baseline
file (see :mod:`repro.analysis.simcheck.baseline`).  Exit status is
non-zero iff an error-severity finding survives both filters.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lint import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    module_name_for,
    suppression_table,
)
from repro.analysis.simcheck.baseline import Baseline
from repro.analysis.simcheck.fsm import check_fsms
from repro.analysis.simcheck.imports import imports_pass
from repro.analysis.simcheck.model import (
    ModuleSummary,
    ProjectModel,
    file_digest,
    load_sources,
    summarize_source,
)
from repro.analysis.simcheck.passes import (
    determinism_pass,
    discipline_pass,
    shared_state_pass,
)
from repro.analysis.simcheck.sarif import write_sarif

TOOL_VERSION = "1.0.0"

#: code -> (rank, severity, summary).  Rank orders the report: the
#: closer a class of finding sits to silent replay divergence or data
#: loss, the earlier it prints.
CATALOG: dict = {
    "CHECK001": (1, SEVERITY_ERROR,
                 "set-iteration order can reach event scheduling"),
    "CHECK030": (2, SEVERITY_ERROR,
                 "declared FSM transition missing from the code"),
    "CHECK031": (3, SEVERITY_ERROR,
                 "implementation transition the FSM spec does not "
                 "declare"),
    "CHECK032": (4, SEVERITY_ERROR, "unreachable or dead FSM state"),
    "CHECK033": (5, SEVERITY_ERROR,
                 "busy FSM state without a recovery edge"),
    "CHECK034": (6, SEVERITY_ERROR,
                 "FSM spec malformed or extraction failed"),
    "CHECK010": (7, SEVERITY_ERROR,
                 "generator or event constructed and discarded"),
    "CHECK011": (8, SEVERITY_ERROR,
                 "process generator yields a plain constant"),
    "CHECK050": (9, SEVERITY_ERROR,
                 "import cycle among project modules"),
    "CHECK052": (10, SEVERITY_ERROR,
                 "whole-program layering violation (SIM005 "
                 "cross-check)"),
    "CHECK020": (11, SEVERITY_WARNING,
                 "shared attribute written by 2+ process functions "
                 "without claim protocol"),
    "CHECK012": (12, SEVERITY_WARNING,
                 "broad except-pass swallows Interrupt in a process "
                 "generator"),
    "CHECK051": (13, SEVERITY_WARNING,
                 "package missing from SIM005's layering rank table"),
    "CHECK000": (14, SEVERITY_ERROR, "file fails to parse"),
}

DEFAULT_BASELINE = "simcheck.baseline.json"
DEFAULT_CACHE = ".simcheck-cache.json"
CACHE_VERSION = 1


@dataclass
class CheckReport:
    """Everything one ``repro check`` run produced."""

    findings: list = field(default_factory=list)
    baselined: list = field(default_factory=list)
    stale_baseline: list = field(default_factory=list)
    suppressed: int = 0
    fsm_reports: list = field(default_factory=list)
    modules: int = 0
    cached_modules: int = 0

    @property
    def errors(self) -> list:
        return [finding for finding in self.findings
                if finding.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> list:
        return [finding for finding in self.findings
                if finding.severity == SEVERITY_WARNING]

    @property
    def fsm_fully_covered(self) -> bool:
        return all(report["covered"] == report["total"]
                   for report in self.fsm_reports)

    def describe(self) -> str:
        lines = [
            f"simcheck: {self.modules} module(s) "
            f"({self.cached_modules} from cache), "
            f"{len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.baselined)} baselined, "
            f"{self.suppressed} suppressed, "
            f"{len(self.stale_baseline)} stale baseline entr"
            f"{'y' if len(self.stale_baseline) == 1 else 'ies'}"
        ]
        for report in self.fsm_reports:
            share = (report["covered"] / report["total"]
                     if report["total"] else 1.0)
            lines.append(
                f"FSM {report['name']}: {report['covered']}/"
                f"{report['total']} spec transitions covered "
                f"({share:.0%}), {report['extracted']} extracted")
        return "\n".join(lines)


# -- incremental cache --------------------------------------------------------

class SummaryCache:
    """Per-file module summaries keyed by content hash, on disk."""

    def __init__(self, path=None):
        self.path = Path(path) if path else None
        self._files: dict = {}
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            try:
                payload = json.loads(
                    self.path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError):
                payload = {}
            if payload.get("version") == CACHE_VERSION:
                self._files = payload.get("files", {})

    def summarize(self, path, text: str) -> ModuleSummary:
        key = str(path)
        digest = file_digest(text)
        cached = self._files.get(key)
        if cached is not None and cached.get("sha256") == digest:
            self.hits += 1
            return ModuleSummary.from_dict(cached["summary"])
        self.misses += 1
        summary = summarize_source(text, module_name_for(path),
                                   path=key)
        self._files[key] = {"sha256": digest,
                            "summary": summary.to_dict()}
        return summary

    def save(self) -> None:
        if self.path is None:
            return
        payload = {"version": CACHE_VERSION, "files": self._files}
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True) + "\n",
                encoding="utf-8")
        except OSError:
            pass  # a read-only checkout still gets a full (slow) run


# -- orchestration ------------------------------------------------------------

def _rank(finding: Finding) -> tuple:
    rank = CATALOG.get(finding.rule, (99,))[0]
    return (rank, finding.path, finding.line, finding.col, finding.rule)


def run_check(paths, baseline_path=None, cache_path=None,
              write_baseline: bool = False) -> CheckReport:
    """Build the model, run all five passes, apply filters."""
    report = CheckReport()
    cache = SummaryCache(cache_path)
    entries = []
    parse_failures = []
    for path, text in load_sources(paths):
        try:
            entries.append((cache.summarize(path, text), text))
        except SyntaxError as error:
            parse_failures.append(Finding(
                str(path), error.lineno or 1, error.offset or 0,
                "CHECK000", SEVERITY_ERROR,
                f"syntax error: {error.msg}"))
    cache.save()
    model = ProjectModel(entries)
    report.modules = len(entries)
    report.cached_modules = cache.hits

    raw: list[Finding] = list(parse_failures)
    raw.extend(determinism_pass(model))
    raw.extend(discipline_pass(model))
    raw.extend(shared_state_pass(model))
    fsm_findings, report.fsm_reports = check_fsms(model)
    raw.extend(fsm_findings)
    raw.extend(imports_pass(model))

    # Inline suppressions (the simlint grammar, simcheck prefix).
    tables: dict[str, dict] = {}
    active: list[Finding] = []
    for finding in raw:
        table = tables.get(finding.path)
        if table is None:
            source = model.sources.get(finding.path, "")
            table = suppression_table(source, "simcheck")
            tables[finding.path] = table
        rules = table.get(finding.line, ())
        if "*" in rules or finding.rule in rules:
            report.suppressed += 1
            continue
        active.append(finding)

    # Baseline grandfathering.
    def context_of(finding: Finding) -> str:
        return model.source_line(finding.path, finding.line)

    baseline = Baseline.load(baseline_path) if baseline_path else \
        Baseline()
    if write_baseline and baseline_path:
        baseline.write(baseline_path, active, context_of)
        baseline = Baseline.load(baseline_path)
    for finding in active:
        if baseline.matches(finding, context_of(finding)):
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    report.stale_baseline = baseline.stale_entries()
    report.findings.sort(key=_rank)
    return report


# -- CLI ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="simcheck",
        description="Whole-program static analysis for the BMcast "
        "simulator: determinism taint, process discipline, race "
        "candidates, FSM spec checking, import layering.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default: src/repro)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        metavar="FILE",
                        help="grandfathered-findings file (default: "
                        f"{DEFAULT_BASELINE}; absent file = empty)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="regenerate the baseline from this run "
                        "(keeps justifications, expires stale entries)")
    parser.add_argument("--cache", default=DEFAULT_CACHE,
                        metavar="FILE",
                        help="incremental summary cache (default: "
                        f"{DEFAULT_CACHE})")
    parser.add_argument("--no-cache", action="store_true",
                        help="parse everything fresh, write no cache")
    parser.add_argument("--sarif", metavar="FILE",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too, not just "
                        "errors")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the CHECK code catalog and exit")
    args = parser.parse_args(argv)

    if args.list_checks:
        ordered = sorted(CATALOG.items(), key=lambda kv: kv[1][0])
        for code, (_, severity, summary) in ordered:
            print(f"{code}  [{severity}]  {summary}")
        return 0

    try:
        report = run_check(
            args.paths or ["src/repro"],
            baseline_path=None if args.no_baseline else args.baseline,
            cache_path=None if args.no_cache else args.cache,
            write_baseline=args.write_baseline
            and not args.no_baseline)
    except FileNotFoundError as error:
        print(f"simcheck: {error}", file=sys.stderr)
        return 2

    for finding in report.findings:
        print(finding.format())
    for entry in report.stale_baseline:
        print(f"simcheck: stale baseline entry {entry.code} at "
              f"{entry.path} ({entry.context!r}) — finding no longer "
              f"exists; rerun with --write-baseline to expire it")
    print(report.describe())
    if args.sarif:
        write_sarif(args.sarif, report.findings, CATALOG, TOOL_VERSION)
        print(f"SARIF written to {args.sarif} "
              f"({len(report.findings)} result(s))")
    if report.errors or (args.strict and report.findings):
        return 1
    return 0
