"""FSM model extraction and spec checking (CHECK030-034).

A module declares its protocol with a ``SIMCHECK_FSM`` literal (names
resolve through module constants, so specs can reuse the state
constants the code itself uses)::

    SIMCHECK_FSM = {
        "name": "node-lifecycle",
        "initial": FREE,
        "recovery": FAILED,          # optional: failure-edge target
        "states": STATES,
        "transitions": {FREE: (NETBOOTING,), ...},
        "terminal": (),              # states allowed to have no exits
        "extract": {...},            # how to recover the implementation
    }

The *spec* says what the protocol should be; the *extractor* recovers
what the code actually implements, and the pass diffs the two — so the
declared model can never drift from the implementation unnoticed.

Two extractors:

* ``transitions-literal`` — the implementation is itself a transition
  table (``repro.ctl.lifecycle.TRANSITIONS``); recover it from the
  resolved module constants.
* ``claim-methods`` — the implementation is a class whose methods
  mutate a claimed-set and a filled-map (``BlockBitmap``); recover the
  transition relation from which collections each method mutates and
  whether it raises on an unclaimed block.

On top of the diff, the pass checks the spec's own shape: every state
reachable from the initial state, no dead states outside ``terminal``,
and (when ``recovery`` is declared) a recovery edge from every
intermediate state.
"""

from __future__ import annotations

from repro.analysis.lint import SEVERITY_ERROR, Finding
from repro.analysis.simcheck.model import ModuleSummary, ProjectModel

CHECK_MISSING_EDGE = "CHECK030"
CHECK_UNDECLARED_EDGE = "CHECK031"
CHECK_BAD_STATE = "CHECK032"
CHECK_NO_RECOVERY = "CHECK033"
CHECK_SPEC_BROKEN = "CHECK034"

_REQUIRED_KEYS = ("name", "initial", "states", "transitions", "extract")


def check_fsms(model: ProjectModel):
    """(findings, coverage reports) over every declared FSM spec."""
    findings: list[Finding] = []
    reports: list[dict] = []
    for summary in model.summaries:
        if summary.fsm_spec is None:
            continue
        findings_before = len(findings)
        report = _check_one(summary, model, findings)
        if report is not None:
            report["findings"] = len(findings) - findings_before
            reports.append(report)
    return findings, reports


def _spec_finding(summary: ModuleSummary, code: str,
                  message: str) -> Finding:
    return Finding(summary.path, summary.fsm_spec_line or 1, 0,
                   code, SEVERITY_ERROR, message)


def _check_one(summary: ModuleSummary, model: ProjectModel,
               findings: list) -> dict | None:
    spec = summary.fsm_spec
    missing = [key for key in _REQUIRED_KEYS if key not in spec]
    if missing:
        findings.append(_spec_finding(
            summary, CHECK_SPEC_BROKEN,
            f"SIMCHECK_FSM is missing required key(s): "
            f"{', '.join(missing)}"))
        return None
    name = spec["name"]
    states = list(spec["states"])
    declared = {state: tuple(targets) for state, targets
                in spec["transitions"].items()}
    terminal = set(spec.get("terminal", ()))
    _check_shape(summary, spec, states, declared, terminal, findings)
    extracted = _extract(summary, model, spec, findings)
    if extracted is None:
        return {"name": name, "module": summary.module,
                "covered": 0, "total": _edge_count(declared),
                "extracted": 0}
    spec_edges = {(state, target) for state, targets in declared.items()
                  for target in targets}
    got_edges = set(extracted)
    for state, target in sorted(spec_edges - got_edges):
        findings.append(_spec_finding(
            summary, CHECK_MISSING_EDGE,
            f"FSM {name!r}: declared transition {state!r} -> "
            f"{target!r} was not found in the implementation"))
    for state, target in sorted(got_edges - spec_edges):
        findings.append(_spec_finding(
            summary, CHECK_UNDECLARED_EDGE,
            f"FSM {name!r}: implementation has transition {state!r} "
            f"-> {target!r} that the spec does not declare"))
    return {
        "name": name,
        "module": summary.module,
        "covered": len(spec_edges & got_edges),
        "total": len(spec_edges),
        "extracted": len(got_edges),
    }


def _edge_count(declared: dict) -> int:
    return sum(len(targets) for targets in declared.values())


def _check_shape(summary, spec, states, declared, terminal,
                 findings) -> bool:
    """Reachability, dead states, and recovery edges on the spec graph."""
    name = spec["name"]
    ok = True
    initial = spec["initial"]
    if initial not in states:
        findings.append(_spec_finding(
            summary, CHECK_SPEC_BROKEN,
            f"FSM {name!r}: initial state {initial!r} is not in "
            f"states"))
        return False
    undeclared = sorted(
        {state for state in declared if state not in states}
        | {target for targets in declared.values()
           for target in targets if target not in states})
    for state in undeclared:
        ok = False
        findings.append(_spec_finding(
            summary, CHECK_SPEC_BROKEN,
            f"FSM {name!r}: transition table references state "
            f"{state!r} that is not declared in states"))
    # Reachability from the initial state.
    reachable = {initial}
    frontier = [initial]
    while frontier:
        state = frontier.pop()
        for target in declared.get(state, ()):
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    for state in states:
        if state not in reachable:
            ok = False
            findings.append(_spec_finding(
                summary, CHECK_BAD_STATE,
                f"FSM {name!r}: state {state!r} is unreachable from "
                f"the initial state {initial!r}"))
        elif not declared.get(state) and state not in terminal:
            ok = False
            findings.append(_spec_finding(
                summary, CHECK_BAD_STATE,
                f"FSM {name!r}: state {state!r} is a dead end (no "
                f"outgoing transitions) but is not declared terminal"))
    recovery = spec.get("recovery")
    if recovery is not None:
        for state in states:
            if state in (initial, recovery) or state in terminal:
                continue
            if recovery not in declared.get(state, ()):
                ok = False
                findings.append(_spec_finding(
                    summary, CHECK_NO_RECOVERY,
                    f"FSM {name!r}: busy state {state!r} has no edge "
                    f"to the recovery state {recovery!r}"))
    return ok


# -- extractors ---------------------------------------------------------------

def _extract(summary: ModuleSummary, model: ProjectModel, spec: dict,
             findings: list):
    config = spec["extract"]
    kind = config.get("kind")
    if kind == "transitions-literal":
        return _extract_literal(summary, spec, config, findings)
    if kind == "claim-methods":
        return _extract_claim_methods(summary, spec, config, findings)
    findings.append(_spec_finding(
        summary, CHECK_SPEC_BROKEN,
        f"FSM {spec['name']!r}: unknown extract kind {kind!r}"))
    return None


def _extract_literal(summary, spec, config, findings):
    source = config.get("source", "TRANSITIONS")
    table = summary.constants.get(source)
    if not isinstance(table, dict):
        findings.append(_spec_finding(
            summary, CHECK_SPEC_BROKEN,
            f"FSM {spec['name']!r}: could not resolve transition "
            f"table {source!r} as a module-level dict literal"))
        return None
    edges = []
    for state, targets in table.items():
        if not isinstance(targets, tuple):
            targets = (targets,)
        for target in targets:
            edges.append((state, target))
    return edges


def _extract_claim_methods(summary, spec, config, findings):
    """Recover a claim protocol from which collections methods mutate.

    Roles: ``states`` is ``(empty, claimed, filled)``.  A method that
    adds to the claimed-set takes empty -> claimed; one that discards
    from it and fills takes claimed -> filled (and, when it does *not*
    raise on an unclaimed block, also empty -> filled: the guest-fill
    path); discard alone is claimed -> empty; fill alone is a direct
    empty -> filled restore.
    """
    class_name = config.get("class")
    info = summary.classes.get(class_name)
    if info is None:
        findings.append(_spec_finding(
            summary, CHECK_SPEC_BROKEN,
            f"FSM {spec['name']!r}: class {class_name!r} not found in "
            f"{summary.module}"))
        return None
    claimed_attr = config.get("claimed", "_copying")
    filled_attr = config.get("filled", "_filled")
    empty, claimed, filled = config.get(
        "states", tuple(spec["states"])[:3])
    edges = set()
    for method in info.methods:
        qualname = f"{summary.module}:{class_name}.{method}"
        function = summary.functions.get(qualname)
        if function is None:
            continue
        ops = set(function.attr_calls)
        adds = (claimed_attr, "add") in ops
        discards = (claimed_attr, "discard") in ops
        fills = (filled_attr, "set_range") in ops
        if adds:
            edges.add((empty, claimed))
        if discards and fills:
            edges.add((claimed, filled))
            if not function.has_raise:
                edges.add((empty, filled))
        elif discards:
            edges.add((claimed, empty))
        elif fills:
            edges.add((empty, filled))
    if not edges:
        findings.append(_spec_finding(
            summary, CHECK_SPEC_BROKEN,
            f"FSM {spec['name']!r}: no transitions could be extracted "
            f"from {class_name}.{claimed_attr}/{filled_attr} usage"))
        return None
    return sorted(edges)
