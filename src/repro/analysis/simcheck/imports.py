"""Import-graph layering and cycle checks (CHECK050-052).

simlint's SIM005 judges each import statement in isolation; this pass
rebuilds the *whole-program* module graph and cross-validates it:

* **CHECK050** — an import cycle among project modules.  Python
  tolerates many cycles at runtime (late imports), so nothing else
  catches these until a refactor reorders module bodies and the build
  breaks; reported once per strongly connected component.
* **CHECK051** — a ``repro.<package>`` that SIM005's rank table does
  not know about.  A new package slots into the layering explicitly or
  not at all (otherwise SIM005 silently skips every edge touching it).
* **CHECK052** — a package-level layering violation recomputed from
  the aggregated graph.  Agreeing with SIM005 is the point: if the two
  ever disagree, one of them has a resolution bug.
"""

from __future__ import annotations

from repro.analysis.lint import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)
from repro.analysis.rules import LayeringRule
from repro.analysis.simcheck.model import ProjectModel

CHECK_CYCLE = "CHECK050"
CHECK_UNRANKED = "CHECK051"
CHECK_LAYERING = "CHECK052"


def _package_of(module: str) -> str:
    parts = module.split(".")
    if parts[0] != "repro":
        return parts[0]
    return parts[1] if len(parts) > 1 else "repro"


def _resolve_module(name: str, known: dict) -> str | None:
    """Longest prefix of ``name`` that is a module in the model."""
    parts = name.split(".")
    while parts:
        candidate = ".".join(parts)
        if candidate in known:
            return candidate
        parts.pop()
    return None


def import_graph(model: ProjectModel):
    """module -> sorted list of (imported module, lineno) edges."""
    known = {summary.module: summary for summary in model.summaries}
    graph: dict[str, list] = {}
    for summary in model.summaries:
        edges = {}
        for name, lineno in summary.repro_imports:
            target = _resolve_module(name, known)
            if target is not None and target != summary.module:
                edges.setdefault(target, lineno)
        graph[summary.module] = sorted(edges.items())
    return graph


def imports_pass(model: ProjectModel):
    graph = import_graph(model)
    yield from _cycles(model, graph)
    yield from _unranked(model)
    yield from _layering(model, graph)


def _cycles(model: ProjectModel, graph: dict):
    """One finding per non-trivial strongly connected component."""
    for component in _sccs(graph):
        if len(component) < 2:
            module = component[0]
            if not any(target == module
                       for target, _ in graph.get(module, ())):
                continue  # trivial SCC without a self-loop
        anchor = min(component)
        summary = model.summary_for(anchor)
        lineno = 1
        for target, line in graph.get(anchor, ()):
            if target in component:
                lineno = line
                break
        cycle = " -> ".join([*sorted(component), anchor])
        yield Finding(
            summary.path, lineno, 0, CHECK_CYCLE, SEVERITY_ERROR,
            f"import cycle among project modules: {cycle}")


def _sccs(graph: dict) -> list[list[str]]:
    """Tarjan's strongly connected components, iteratively."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: dict[str, bool] = {}
    stack: list[str] = []
    components: list[list[str]] = []
    counter = [0]

    def targets_of(node: str) -> list[str]:
        return [target for target, _ in graph.get(node, ())]

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(targets_of(root)))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, iterator = work[-1]
            advanced = False
            for target in iterator:
                if target not in index:
                    index[target] = lowlink[target] = counter[0]
                    counter[0] += 1
                    stack.append(target)
                    on_stack[target] = True
                    work.append((target, iter(targets_of(target))))
                    advanced = True
                    break
                if on_stack.get(target):
                    lowlink[node] = min(lowlink[node], index[target])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components


def _unranked(model: ProjectModel):
    ranks = LayeringRule.RANKS
    seen: dict[str, str] = {}
    for summary in model.summaries:
        if not summary.module.startswith("repro"):
            continue
        package = _package_of(summary.module)
        seen.setdefault(package, summary.path)
    for package in sorted(seen):
        if package not in ranks:
            yield Finding(
                seen[package], 1, 0, CHECK_UNRANKED, SEVERITY_WARNING,
                f"package repro.{package} has no rank in SIM005's "
                f"layering table — add it to "
                f"repro.analysis.rules.LayeringRule.RANKS")


def _layering(model: ProjectModel, graph: dict):
    """Rank violations on the aggregated package graph."""
    ranks = LayeringRule.RANKS
    for module in sorted(graph):
        own = _package_of(module)
        own_rank = ranks.get(own)
        if own_rank is None:
            continue
        summary = model.summary_for(module)
        for target, lineno in graph[module]:
            other = _package_of(target)
            other_rank = ranks.get(other)
            if other_rank is None or other_rank <= own_rank:
                continue
            yield Finding(
                summary.path, lineno, 0, CHECK_LAYERING,
                SEVERITY_ERROR,
                f"whole-program layering violation: repro.{own} "
                f"(rank {own_rank}) depends on repro.{other} "
                f"(rank {other_rank}) — SIM005 cross-check")
