"""The simcheck project model: one parse of the whole tree, plain data.

simlint looks at one module at a time; every simcheck pass needs the
*whole program* — which generators are actually spawned as simulation
processes, which calls can reach the event queue, which classes share
attributes across processes.  This module turns each source file into a
:class:`ModuleSummary` of plain picklable data (no AST references, so
the on-disk incremental cache can store it as JSON), and
:class:`ProjectModel` assembles the summaries into the global tables
the passes consume: the call graph, the process-function closure, the
scheduler-reachability set, and the set-typed attribute table.

Resolution is name-based and deliberately conservative: a call written
``obj.fetch(...)`` is linked to *every* project function named
``fetch``.  That over-approximates the call graph, which is the right
direction for the determinism and discipline passes (they may report a
candidate that needs a baseline entry, but they do not silently miss a
path).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.analysis.lint import LintContext, iter_python_files, \
    module_name_for

#: Calls that put something onto the event queue directly.  Everything
#: else reaches the queue only transitively, through the call graph.
PRIMITIVE_SINKS = frozenset({
    "schedule", "process", "timeout", "succeed", "interrupt",
    "all_of", "any_of",
})

#: Event constructors whose result is useless unless yielded/stored.
EVENT_CONSTRUCTORS = frozenset({"timeout", "event", "all_of", "any_of"})

#: Call tails that satisfy the claim protocol / mutual exclusion for
#: the shared-state race pass.  Exact names for the engine's own
#: protocol; see :func:`is_claim_call` for the naming-idiom widening.
CLAIM_TAILS = frozenset({
    "try_claim", "commit_fill", "release_claim", "request", "acquire",
    "release",
})

#: Name tokens that mark a helper as mutual-exclusion machinery — the
#: AHCI/MegaRAID mediators serialize re-entrant hooks through a
#: ``_claim_blocked`` spin-wait, and any lock/acquire-style helper
#: counts the same way.  Matched on whole underscore-separated words
#: so ``reclaim`` (returning a node to the pool) does not qualify.
CLAIM_MARKERS = frozenset({"claim", "acquire", "lock"})


def is_claim_call(tail: str) -> bool:
    return tail in CLAIM_TAILS \
        or not CLAIM_MARKERS.isdisjoint(tail.lower().split("_"))

#: Reductions whose result does not depend on iteration order; a set
#: passed straight into one of these is deterministic.
ORDER_INSENSITIVE = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set",
    "frozenset",
})


@dataclass
class CallSite:
    """One call expression: the resolved dotted name and its tail."""

    name: str
    tail: str
    lineno: int
    col: int


@dataclass
class SetIteration:
    """A ``for``/comprehension iterating directly over a set."""

    lineno: int
    col: int
    describe: str
    #: The loop body (or comprehension element) contains a call or a
    #: yield, so the iteration order can propagate outward.
    body_acts: bool
    #: When the iterated expression is ``obj.<attr>`` and the type is
    #: not decidable inside this module, the attribute name: the
    #: determinism pass resolves it against the whole-program
    #: attribute-type table.  ``None`` for definite set iterations.
    attr: str | None = None


@dataclass
class FunctionInfo:
    """Everything the passes need to know about one function."""

    qualname: str
    name: str
    cls: str | None
    lineno: int
    is_generator: bool = False
    calls: list = field(default_factory=list)
    #: Tails of generators handed to ``env.process(...)``.
    spawn_targets: list = field(default_factory=list)
    #: Tails of callees driven via ``yield from f(...)``.
    delegate_targets: list = field(default_factory=list)
    #: Bare-statement calls whose result is discarded.
    discarded_calls: list = field(default_factory=list)
    #: ``yield <constant>`` sites: (lineno, col, repr).
    const_yields: list = field(default_factory=list)
    #: Broad ``except: pass`` sites inside a generator: (lineno, col).
    swallowed_excepts: list = field(default_factory=list)
    set_iterations: list = field(default_factory=list)
    #: ``self.<attr> = ...`` writes: (attr, lineno, col).
    attr_writes: list = field(default_factory=list)
    #: ``self.<attr>.<method>(...)`` calls: (attr, method) pairs.
    attr_calls: list = field(default_factory=list)
    has_raise: bool = False
    claims: bool = False

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["calls"] = [asdict(c) for c in self.calls]
        payload["set_iterations"] = [asdict(s)
                                     for s in self.set_iterations]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionInfo":
        payload = dict(payload)
        payload["calls"] = [CallSite(**c) for c in payload["calls"]]
        payload["set_iterations"] = [SetIteration(**s) for s
                                     in payload["set_iterations"]]
        payload["attr_writes"] = [tuple(w) for w in payload["attr_writes"]]
        payload["attr_calls"] = [tuple(c) for c in payload["attr_calls"]]
        return cls(**payload)


@dataclass
class ClassInfo:
    name: str
    lineno: int
    methods: list = field(default_factory=list)
    #: Attribute names assigned a set-typed value somewhere in the class.
    set_attrs: list = field(default_factory=list)
    #: Attribute names assigned a definitely-not-set value (disambiguates
    #: the global attribute-type table).
    other_attrs: list = field(default_factory=list)


@dataclass
class ModuleSummary:
    """Plain-data digest of one source file (JSON-cacheable)."""

    module: str
    path: str
    sha256: str
    #: Imported repro-internal modules: (dotted name, lineno).
    repro_imports: list = field(default_factory=list)
    functions: dict = field(default_factory=dict)
    classes: dict = field(default_factory=dict)
    #: Resolved ``SIMCHECK_FSM`` declaration, if the module has one.
    fsm_spec: dict | None = None
    fsm_spec_line: int = 0
    #: Module-level name -> resolved literal (strings/tuples/dicts).
    constants: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "path": self.path,
            "sha256": self.sha256,
            "repro_imports": self.repro_imports,
            "functions": {k: f.to_dict()
                          for k, f in self.functions.items()},
            "classes": {k: asdict(c) for k, c in self.classes.items()},
            "fsm_spec": _jsonable_spec(self.fsm_spec),
            "fsm_spec_line": self.fsm_spec_line,
            "constants": {name: _jsonable_spec(value)
                          for name, value in self.constants.items()
                          if _round_trips(value)},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModuleSummary":
        return cls(
            module=payload["module"],
            path=payload["path"],
            sha256=payload["sha256"],
            repro_imports=[tuple(i) for i in payload["repro_imports"]],
            functions={k: FunctionInfo.from_dict(f)
                       for k, f in payload["functions"].items()},
            classes={k: ClassInfo(**c)
                     for k, c in payload["classes"].items()},
            fsm_spec=_unjsonable_spec(payload["fsm_spec"]),
            fsm_spec_line=payload["fsm_spec_line"],
            constants={name: _unjsonable_spec(value)
                       for name, value
                       in payload.get("constants", {}).items()},
        )


def _jsonable_spec(spec):
    """Tuples -> lists for JSON storage (round-tripped on load)."""
    if isinstance(spec, dict):
        return {k: _jsonable_spec(v) for k, v in spec.items()}
    if isinstance(spec, (tuple, list)):
        return [_jsonable_spec(v) for v in spec]
    return spec


def _unjsonable_spec(spec):
    if isinstance(spec, dict):
        return {k: _unjsonable_spec(v) for k, v in spec.items()}
    if isinstance(spec, list):
        return tuple(_unjsonable_spec(v) for v in spec)
    return spec


def _round_trips(value) -> bool:
    """Survives JSON storage unchanged (non-string dict keys do not)."""
    try:
        encoded = json.dumps(_jsonable_spec(value))
    except (TypeError, ValueError):
        return False
    return _unjsonable_spec(json.loads(encoded)) == value


def file_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- per-module extraction ----------------------------------------------------

def summarize_source(source: str, module: str,
                     path: str = "<memory>") -> ModuleSummary:
    """Extract one module's summary (raises SyntaxError on bad input)."""
    tree = ast.parse(source, filename=path)
    context = LintContext(path, module, source, tree)
    summary = ModuleSummary(module=module, path=path,
                            sha256=file_digest(source))
    _scan_imports(tree, summary)
    constants = _module_constants(tree)
    summary.constants = constants
    _scan_fsm_spec(tree, summary, constants)
    # Classes first: attribute types inferred here (from class-body
    # annotations and ``self.<attr> = set()`` in any method) are
    # visible while the method bodies are extracted below.
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            _declare_class(node, summary)
    for node in tree.body:
        _scan_toplevel(node, summary, context, constants)
    return summary


def _scan_imports(tree: ast.Module, summary: ModuleSummary) -> None:
    """Module-level repro-internal imports only.

    Imports deferred into function bodies are the deliberate
    cycle-breaking idiom, and ``if TYPE_CHECKING:`` blocks never
    execute — neither creates a real import-time edge.
    """
    for node in _toplevel_statements(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro."):
                    summary.repro_imports.append((alias.name,
                                                  node.lineno))
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            if node.module == "repro":
                for alias in node.names:
                    summary.repro_imports.append(
                        (f"repro.{alias.name}", node.lineno))
            elif node.module.startswith("repro."):
                # Per alias: ``from repro.analysis import rules`` edges
                # to repro.analysis.rules (longest-prefix resolution
                # falls back to the package when the alias is a symbol).
                for alias in node.names:
                    summary.repro_imports.append(
                        (f"{node.module}.{alias.name}", node.lineno))


def _toplevel_statements(tree: ast.Module):
    """Module-body statements, looking through top-level If/Try bodies
    (version guards) but not into defs, classes, or TYPE_CHECKING."""
    stack = list(tree.body)
    while stack:
        node = stack.pop(0)
        if isinstance(node, ast.If):
            test = node.test
            name = test.attr if isinstance(test, ast.Attribute) \
                else test.id if isinstance(test, ast.Name) else None
            if name == "TYPE_CHECKING":
                stack.extend(node.orelse)
                continue
            stack.extend(node.body + node.orelse)
            continue
        if isinstance(node, ast.Try):
            stack.extend(node.body + node.orelse + node.finalbody)
            for handler in node.handlers:
                stack.extend(handler.body)
            continue
        yield node


def _module_constants(tree: ast.Module) -> dict:
    """Module-level ``NAME = <literal>`` table, resolved recursively."""
    constants: dict = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            value = resolve_literal(node.value, constants)
            if value is not _UNRESOLVED:
                constants[node.targets[0].id] = value
    return constants


class _Unresolved:
    def __repr__(self):
        return "<unresolved>"


_UNRESOLVED = _Unresolved()


def resolve_literal(node: ast.expr, constants: dict):
    """Evaluate a literal expression, resolving Names via ``constants``.

    Supports the subset FSM declarations need: constants, names bound
    to earlier literals, tuples/lists, and dicts.  Returns the
    ``_UNRESOLVED`` sentinel for anything else.
    """
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        return constants.get(node.id, _UNRESOLVED)
    if isinstance(node, (ast.Tuple, ast.List)):
        values = [resolve_literal(item, constants) for item in node.elts]
        if any(value is _UNRESOLVED for value in values):
            return _UNRESOLVED
        return tuple(values)
    if isinstance(node, ast.Dict):
        result = {}
        for key_node, value_node in zip(node.keys, node.values):
            if key_node is None:
                return _UNRESOLVED
            key = resolve_literal(key_node, constants)
            value = resolve_literal(value_node, constants)
            if key is _UNRESOLVED or value is _UNRESOLVED:
                return _UNRESOLVED
            result[key] = value
        return result
    return _UNRESOLVED


def _scan_fsm_spec(tree: ast.Module, summary: ModuleSummary,
                   constants: dict) -> None:
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == "SIMCHECK_FSM":
            spec = resolve_literal(node.value, constants)
            summary.fsm_spec = None if spec is _UNRESOLVED else spec
            summary.fsm_spec_line = node.lineno


def _declare_class(node: ast.ClassDef, summary: ModuleSummary) -> None:
    """Create the ClassInfo and infer its attribute types.

    An attribute is set-typed when a class-body annotation says so or
    when any method assigns it a syntactically set-valued expression
    (``self._copying = set()``); an attribute assigned anything else
    lands in ``other_attrs``, which disqualifies it from the global
    attribute-type table.
    """
    info = ClassInfo(name=node.name, lineno=node.lineno)
    summary.classes[node.name] = info

    def record(name: str, is_set: bool) -> None:
        bucket = info.set_attrs if is_set else info.other_attrs
        if name not in bucket:
            bucket.append(name)

    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods.append(item.name)
            for child in ast.walk(item):
                if isinstance(child, ast.Assign):
                    for target in child.targets:
                        if isinstance(target, ast.Attribute) \
                                and isinstance(target.value, ast.Name) \
                                and target.value.id == "self":
                            record(target.attr,
                                   _is_set_expr_shallow(child.value))
                elif isinstance(child, ast.AnnAssign) \
                        and isinstance(child.target, ast.Attribute) \
                        and isinstance(child.target.value, ast.Name) \
                        and child.target.value.id == "self" \
                        and _is_set_annotation(child.annotation):
                    record(child.target.attr, True)
        elif isinstance(item, ast.AnnAssign) \
                and isinstance(item.target, ast.Name):
            if _is_set_annotation(item.annotation):
                record(item.target.id, True)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    record(target.id, _is_set_expr_shallow(item.value))


def _scan_toplevel(node: ast.stmt, summary: ModuleSummary,
                   context: LintContext, constants: dict) -> None:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        _extract_function(node, summary, context, cls=None,
                          prefix=summary.module)
    elif isinstance(node, ast.ClassDef):
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _extract_function(
                    item, summary, context, cls=node.name,
                    prefix=f"{summary.module}:{node.name}")


def _is_set_annotation(annotation: ast.expr) -> bool:
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    return isinstance(node, ast.Name) and node.id in ("set", "frozenset")


def _is_set_expr_shallow(node: ast.expr) -> bool:
    """Syntactically set-valued, with no local-name inference."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
        # dataclasses: field(default_factory=set)
        if node.func.id == "field":
            for keyword in node.keywords:
                if keyword.arg == "default_factory" \
                        and isinstance(keyword.value, ast.Name) \
                        and keyword.value.id in ("set", "frozenset"):
                    return True
    return False


class _FunctionExtractor(ast.NodeVisitor):
    """Walks one function body (stopping at nested defs)."""

    def __init__(self, info: FunctionInfo, summary: ModuleSummary,
                 context: LintContext, cls: str | None):
        self.info = info
        self.summary = summary
        self.context = context
        self.cls = cls
        #: Local names assigned a set-typed expression in this body.
        self.set_locals: set[str] = set()
        self.depth = 0

    # -- structure ----------------------------------------------------------

    def visit_FunctionDef(self, node):
        # The body of a nested def belongs to the nested function; it
        # is extracted separately by _extract_function.
        if self.depth:
            return
        self.depth += 1
        # Parameters annotated as sets are set-typed locals.
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None \
                    and _is_set_annotation(arg.annotation):
                self.set_locals.add(arg.arg)
        self._prescan_locals(node)
        for statement in node.body:
            self.visit(statement)
        self.depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef

    def _prescan_locals(self, node) -> None:
        """Names assigned set-typed values anywhere in the body.

        Flow-insensitive on purpose: ``pool = set(x)`` marks ``pool``
        set-typed for the whole function.
        """
        for child in ast.walk(node):
            if isinstance(child, ast.Assign):
                if self._is_set_expr(child.value, prescan=True):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            self.set_locals.add(target.id)
            elif isinstance(child, ast.AnnAssign) \
                    and isinstance(child.target, ast.Name) \
                    and _is_set_annotation(child.annotation):
                self.set_locals.add(child.target.id)

    # -- calls --------------------------------------------------------------

    def visit_Call(self, node: ast.Call):
        resolved = self.context.resolve_call(node.func) or ""
        tail = resolved.rsplit(".", 1)[-1] if resolved else ""
        if isinstance(node.func, ast.Attribute):
            tail = node.func.attr
            resolved = resolved or tail
        elif isinstance(node.func, ast.Name):
            tail = tail or node.func.id
        if tail:
            self.info.calls.append(CallSite(resolved or tail, tail,
                                            node.lineno,
                                            node.col_offset))
            if is_claim_call(tail):
                self.info.claims = True
        # env.process(self.foo(...)) / env.process(foo())
        if tail == "process" and node.args:
            spawned = node.args[0]
            if isinstance(spawned, ast.Call):
                spawn_tail = _call_tail(spawned)
                if spawn_tail:
                    self.info.spawn_targets.append(spawn_tail)
        # self.<attr>.<method>(...)
        if isinstance(node.func, ast.Attribute):
            owner = node.func.value
            if isinstance(owner, ast.Attribute) \
                    and isinstance(owner.value, ast.Name) \
                    and owner.value.id == "self":
                self.info.attr_calls.append((owner.attr, node.func.attr))
        self.generic_visit(node)

    # -- statements of interest ---------------------------------------------

    def visit_Expr(self, node: ast.Expr):
        if isinstance(node.value, ast.Call):
            call = node.value
            resolved = self.context.resolve_call(call.func) or ""
            tail = _call_tail(call) or ""
            if tail:
                self.info.discarded_calls.append(
                    (tail, resolved or tail, node.lineno,
                     node.col_offset))
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield):
        self.info.is_generator = True
        if isinstance(node.value, ast.Constant) \
                and node.value.value is not None:
            self.info.const_yields.append(
                (node.lineno, node.col_offset, repr(node.value.value)))
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom):
        self.info.is_generator = True
        if isinstance(node.value, ast.Call):
            tail = _call_tail(node.value)
            if tail:
                self.info.delegate_targets.append(tail)
        self.generic_visit(node)

    def visit_Try(self, node: ast.Try):
        for handler in node.handlers:
            if _is_broad_handler(handler) \
                    and all(isinstance(s, (ast.Pass, ast.Continue))
                            for s in handler.body):
                self.info.swallowed_excepts.append(
                    (handler.lineno, handler.col_offset))
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise):
        self.info.has_raise = True
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign):
        for target in node.targets:
            self._record_attr_write(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign):
        self._record_attr_write(node.target, node)
        self.generic_visit(node)

    def _record_attr_write(self, target: ast.expr, node) -> None:
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            self.info.attr_writes.append(
                (target.attr, node.lineno, node.col_offset))

    # -- set iteration -------------------------------------------------------

    def visit_For(self, node: ast.For):
        record = self._iteration_of(node.iter)
        if record is not None:
            acts = any(
                isinstance(child, (ast.Call, ast.Yield, ast.YieldFrom))
                for statement in node.body
                for child in ast.walk(statement))
            self.info.set_iterations.append(SetIteration(
                node.lineno, node.col_offset,
                _describe(node.iter), acts, attr=record[0]))
        self.generic_visit(node)

    def _iteration_of(self, node: ast.expr):
        """``(None,)`` for a definite set iteration, ``(attr,)`` for an
        attribute whose type only the whole-program table can decide,
        ``None`` when the iteration is not set-typed."""
        if self._is_set_expr(node):
            return (None,)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) \
                    and node.value.id == "self" and self.cls:
                info = self.summary.classes.get(self.cls)
                if info is not None and node.attr in info.other_attrs:
                    return None  # locally known to not be a set
            return (node.attr,)
        return None

    def visit_ListComp(self, node: ast.ListComp):
        self._comprehension(node, node.elt)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp):
        self._comprehension(node, node.elt)
        self.generic_visit(node)

    def _comprehension(self, node, element: ast.expr) -> None:
        for comp in node.generators:
            record = self._iteration_of(comp.iter)
            if record is not None:
                acts = any(isinstance(child, ast.Call)
                           for child in ast.walk(element))
                self.info.set_iterations.append(SetIteration(
                    node.lineno, node.col_offset,
                    _describe(comp.iter), acts, attr=record[0]))

    def _is_set_expr(self, node: ast.expr, prescan: bool = False) -> bool:
        """Is this expression set-typed, as far as syntax can tell?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) \
                    and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                    "difference", "union", "intersection",
                    "symmetric_difference"):
                return self._is_set_expr(func.value, prescan)
            return False
        if isinstance(node, ast.BinOp) \
                and isinstance(node.op, (ast.BitAnd, ast.BitOr,
                                         ast.Sub, ast.BitXor)):
            return self._is_set_expr(node.left, prescan) \
                or self._is_set_expr(node.right, prescan)
        if isinstance(node, ast.Name):
            if node.id in self.set_locals:
                return True
            value = self.summary.constants.get(node.id)
            return isinstance(value, (set, frozenset))
        if isinstance(node, ast.Attribute) and not prescan:
            attr = node.attr
            if isinstance(node.value, ast.Name) \
                    and node.value.id == "self" and self.cls:
                info = self.summary.classes.get(self.cls)
                if info is not None and attr in info.set_attrs:
                    return True
            return False
        return False


def _call_tail(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    return isinstance(handler.type, ast.Name) \
        and handler.type.id in ("Exception", "BaseException")


def _describe(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<set expression>"


def _extract_function(node, summary: ModuleSummary,
                      context: LintContext, cls: str | None,
                      prefix: str) -> None:
    qualname = f"{prefix}.{node.name}"
    info = FunctionInfo(qualname=qualname, name=node.name, cls=cls,
                        lineno=node.lineno,
                        claims=is_claim_call(node.name))
    extractor = _FunctionExtractor(info, summary, context, cls)
    extractor.visit(node)
    summary.functions[qualname] = info
    # Nested defs become their own functions (they can be spawned as
    # processes — cloud.cluster does exactly that).
    for nested in _nested_defs(node):
        _extract_function(nested, summary, context, cls,
                          prefix=qualname)


def _nested_defs(node):
    """Defs whose *nearest* enclosing def is ``node``."""
    stack = list(node.body)
    while stack:
        statement = stack.pop(0)
        if isinstance(statement, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
            yield statement
            continue  # anything deeper belongs to the nested def
        stack.extend(ast.iter_child_nodes(statement))


# -- the whole-program model --------------------------------------------------

class ProjectModel:
    """Summaries of every module plus the derived global tables."""

    def __init__(self, entries):
        #: (summary, source text) in deterministic path order.
        self.entries = list(entries)
        self.summaries = [summary for summary, _ in self.entries]
        self.sources = {summary.path: text
                        for summary, text in self.entries}
        self.functions: dict[str, FunctionInfo] = {}
        self.module_of: dict[str, str] = {}
        for summary in self.summaries:
            for qualname, info in summary.functions.items():
                self.functions[qualname] = info
                self.module_of[qualname] = summary.module
        self.by_tail: dict[str, list[str]] = {}
        for qualname, info in sorted(self.functions.items()):
            self.by_tail.setdefault(info.name, []).append(qualname)
        self._edges = self._build_edges()
        self.process_functions = self._process_closure()
        self.sink_reaching = self._sink_closure()
        self.set_attr_table = self._attribute_types()

    # -- call graph ---------------------------------------------------------

    def _build_edges(self) -> dict[str, list[str]]:
        edges: dict[str, list[str]] = {}
        for qualname, info in sorted(self.functions.items()):
            targets: list[str] = []
            for call in info.calls:
                targets.extend(self.resolve_tail(call.tail))
            for tail in info.spawn_targets + info.delegate_targets:
                targets.extend(self.resolve_tail(tail))
            edges[qualname] = sorted(set(targets))
        return edges

    def resolve_tail(self, tail: str) -> list[str]:
        """Every project function a call tail might refer to."""
        return self.by_tail.get(tail, [])

    def callees(self, qualname: str) -> list[str]:
        return self._edges.get(qualname, [])

    # -- closures -----------------------------------------------------------

    def _process_closure(self) -> set[str]:
        """Functions that run as (or inside) simulation processes.

        Roots are generators spawned via ``env.process``; membership
        extends through ``yield from`` delegation and through spawns
        made *by* process functions.
        """
        roots: list[str] = []
        for info in self.functions.values():
            for tail in info.spawn_targets:
                for target in self.resolve_tail(tail):
                    if self.functions[target].is_generator:
                        roots.append(target)
        closure: set[str] = set()
        frontier = sorted(set(roots))
        while frontier:
            qualname = frontier.pop()
            if qualname in closure:
                continue
            closure.add(qualname)
            info = self.functions[qualname]
            for tail in info.delegate_targets + info.spawn_targets:
                for target in self.resolve_tail(tail):
                    if self.functions[target].is_generator \
                            and target not in closure:
                        frontier.append(target)
        return closure

    def _sink_closure(self) -> set[str]:
        """Functions from which the event queue is reachable.

        A function reaches the queue if it calls a primitive scheduling
        API (``env.schedule``/``process``/``timeout``/...), if it *is*
        a process function, or if any callee reaches it.  Computed as a
        reverse closure over the call graph.
        """
        direct = set(self.process_functions)
        for qualname, info in self.functions.items():
            if any(call.tail in PRIMITIVE_SINKS for call in info.calls):
                direct.add(qualname)
        callers: dict[str, list[str]] = {}
        for qualname, targets in self._edges.items():
            for target in targets:
                callers.setdefault(target, []).append(qualname)
        closure: set[str] = set()
        frontier = sorted(direct)
        while frontier:
            qualname = frontier.pop()
            if qualname in closure:
                continue
            closure.add(qualname)
            frontier.extend(caller for caller
                            in callers.get(qualname, [])
                            if caller not in closure)
        return closure

    # -- attribute types ----------------------------------------------------

    def _attribute_types(self) -> dict[str, bool]:
        """Attr name -> True when *every* declaring class makes it a set.

        Used to type ``obj.attr`` iteration across class boundaries;
        an attribute that is a set in one class and something else in
        another stays untyped (no finding).
        """
        table: dict[str, bool] = {}
        for summary in self.summaries:
            for info in summary.classes.values():
                for attr in info.set_attrs:
                    table[attr] = table.get(attr, True)
                for attr in info.other_attrs:
                    table[attr] = False
        return {attr: is_set for attr, is_set in table.items() if is_set}

    # -- lookups ------------------------------------------------------------

    def summary_for(self, module: str) -> ModuleSummary | None:
        for summary in self.summaries:
            if summary.module == module:
                return summary
        return None

    def source_line(self, path: str, lineno: int) -> str:
        text = self.sources.get(path)
        if text is None:
            return ""
        lines = text.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""


def load_sources(paths) -> list[tuple[Path, str]]:
    """(path, text) for every python file under ``paths``, sorted."""
    return [(path, path.read_text(encoding="utf-8"))
            for path in iter_python_files(paths)]


def build_model(paths, summarizer=None) -> ProjectModel:
    """Parse every file and assemble the project model (no cache)."""
    entries = []
    make = summarizer or (lambda path, text: summarize_source(
        text, module_name_for(path), path=str(path)))
    for path, text in load_sources(paths):
        entries.append((make(path, text), text))
    return ProjectModel(entries)
