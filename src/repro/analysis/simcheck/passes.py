"""Interprocedural simcheck passes over the project model.

Three of the five passes live here (the FSM and import-graph passes
have their own modules):

* **determinism taint** (CHECK001) — iteration over an unordered set
  whose order can reach the event queue.  Python sets hash strings
  with a per-process salt, so set iteration order is the one thing a
  seeded simulation cannot replay; the replay checker catches it at
  runtime *if the benchmark happens to execute that path* — this pass
  proves the absence on every path.
* **process discipline** (CHECK010/011/012) — generator misuse around
  the engine: a generator or event constructed and discarded (nothing
  ever runs), a process yielding a plain constant (the engine requires
  events), and a broad ``except: pass`` inside a process generator
  (which would swallow :class:`~repro.sim.events.Interrupt`).
* **shared-state race candidates** (CHECK020) — an attribute written
  by two or more distinct process functions with no claim-protocol or
  resource-acquire call in any of the writers; the static twin of the
  runtime write-race sanitizer.
"""

from __future__ import annotations

from repro.analysis.lint import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)
from repro.analysis.simcheck.model import (
    EVENT_CONSTRUCTORS,
    ProjectModel,
)

CHECK_DETERMINISM = "CHECK001"
CHECK_DISCARDED = "CHECK010"
CHECK_CONST_YIELD = "CHECK011"
CHECK_SWALLOWED = "CHECK012"
CHECK_SHARED_WRITE = "CHECK020"


def _path_of(model: ProjectModel, qualname: str) -> str:
    module = model.module_of[qualname]
    summary = model.summary_for(module)
    return summary.path if summary is not None else "<unknown>"


# -- CHECK001: determinism taint ----------------------------------------------

def determinism_pass(model: ProjectModel):
    """Set iterations whose order can reach ``Environment.schedule``.

    A finding needs both halves: the iterated expression is set-typed
    (locals, parameters, ``self`` attributes, cross-class attributes
    that are sets in every declaring class), *and* the enclosing
    function reaches the event queue through the call graph — so a
    pure set-membership reduction never fires.
    """
    for qualname in sorted(model.functions):
        info = model.functions[qualname]
        if qualname not in model.sink_reaching:
            continue
        path = _path_of(model, qualname)
        for iteration in info.set_iterations:
            if not iteration.body_acts:
                continue
            if iteration.attr is not None \
                    and not model.set_attr_table.get(iteration.attr):
                continue  # attribute is not a set in every declarer
            yield Finding(
                path, iteration.lineno, iteration.col,
                CHECK_DETERMINISM, SEVERITY_ERROR,
                f"iteration over unordered set "
                f"`{iteration.describe}` in {info.name}() can reach "
                f"event scheduling — iterate sorted(...) so replay "
                f"is deterministic")


# -- CHECK010/011/012: process discipline -------------------------------------

def discipline_pass(model: ProjectModel):
    yield from _discarded_generators(model)
    yield from _const_yields(model)
    yield from _swallowed_interrupts(model)


def _discarded_generators(model: ProjectModel):
    """A bare-statement call that builds a generator or an event.

    ``self.copy_loop()`` on its own line constructs a generator and
    throws it away — the classic missing ``yield from`` /
    ``env.process`` bug, invisible at runtime because nothing fails.
    """
    for qualname in sorted(model.functions):
        info = model.functions[qualname]
        path = _path_of(model, qualname)
        for tail, resolved, lineno, col in info.discarded_calls:
            if tail in EVENT_CONSTRUCTORS:
                yield Finding(
                    path, lineno, col, CHECK_DISCARDED, SEVERITY_ERROR,
                    f"event from {resolved}() is discarded — yield it "
                    f"(or store it); an unawaited event never advances "
                    f"this process")
                continue
            targets = model.resolve_tail(tail)
            if targets and all(model.functions[t].is_generator
                               for t in targets):
                yield Finding(
                    path, lineno, col, CHECK_DISCARDED, SEVERITY_ERROR,
                    f"call to generator {tail}() discards the "
                    f"generator — nothing runs; use `yield from` or "
                    f"spawn it with env.process(...)")


def _const_yields(model: ProjectModel):
    """``yield 5`` inside a function that runs as a sim process."""
    for qualname in sorted(model.process_functions):
        info = model.functions[qualname]
        path = _path_of(model, qualname)
        for lineno, col, value in info.const_yields:
            yield Finding(
                path, lineno, col, CHECK_CONST_YIELD, SEVERITY_ERROR,
                f"process generator {info.name}() yields the constant "
                f"{value} — the engine resumes only on Events "
                f"(env.timeout, env.event, another process)")


def _swallowed_interrupts(model: ProjectModel):
    """Broad ``except: pass`` inside a process generator."""
    for qualname in sorted(model.process_functions):
        info = model.functions[qualname]
        path = _path_of(model, qualname)
        for lineno, col in info.swallowed_excepts:
            yield Finding(
                path, lineno, col, CHECK_SWALLOWED, SEVERITY_WARNING,
                f"broad except-and-pass in process generator "
                f"{info.name}() also swallows Interrupt — catch the "
                f"specific exception or re-raise Interrupt")


# -- CHECK020: shared-state race candidates -----------------------------------

def shared_state_pass(model: ProjectModel):
    """Attributes written from >= 2 process functions, no claim calls.

    Simultaneous events keep FIFO order, so these are *candidates*,
    not proven races — but every lost-update bug the write-race
    sanitizer can catch at runtime starts as exactly this shape.
    One finding per (class, attribute), anchored at the first write.
    """
    writers: dict[tuple[str, str, str], list] = {}
    for qualname in sorted(model.process_functions):
        info = model.functions[qualname]
        if info.cls is None:
            continue
        module = model.module_of[qualname]
        for attr, lineno, col in info.attr_writes:
            key = (module, info.cls, attr)
            writers.setdefault(key, []).append(
                (qualname, lineno, col))
    for (module, cls, attr), sites in sorted(writers.items()):
        functions = sorted({qualname for qualname, _, _ in sites})
        if len(functions) < 2:
            continue
        if any(model.functions[qualname].claims
               for qualname in functions):
            continue
        qualname, lineno, col = min(sites, key=lambda s: (s[1], s[2]))
        names = ", ".join(model.functions[f].name + "()"
                          for f in functions)
        path = _path_of(model, qualname)
        yield Finding(
            path, lineno, col, CHECK_SHARED_WRITE, SEVERITY_WARNING,
            f"{cls}.{attr} is written from {len(functions)} distinct "
            f"process functions ({names}) with no claim-protocol or "
            f"resource-acquire call on any path — lost-update "
            f"candidate (static twin of the write-race sanitizer)")
