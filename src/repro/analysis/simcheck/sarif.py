"""SARIF 2.1.0 export for simcheck findings (CI code-scanning upload)."""

from __future__ import annotations

import json
from pathlib import Path

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def sarif_document(findings, catalog, tool_version: str) -> dict:
    """One-run SARIF document for ``findings``.

    ``catalog`` is the ordered CHECK-code table from the engine
    (code -> (rank, severity, summary)); every code becomes a driver
    rule so viewers can render the catalog even for clean runs.
    """
    codes = list(catalog)
    rules = [
        {
            "id": code,
            "shortDescription": {"text": catalog[code][2]},
            "defaultConfiguration": {
                "level": catalog[code][1],
            },
        }
        for code in codes
    ]
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": codes.index(finding.rule)
            if finding.rule in codes else -1,
            "level": finding.severity,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(finding.path).as_posix(),
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    },
                }
            ],
        }
        for finding in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simcheck",
                        "version": tool_version,
                        "rules": rules,
                    },
                },
                "results": results,
            }
        ],
    }


def write_sarif(path, findings, catalog, tool_version: str) -> dict:
    document = sarif_document(findings, catalog, tool_version)
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return document
