"""Disk write-race detector.

Shadows every completed write to the node's disk with its origin
(guest direct I/O, the VMM's copier, peer serving) and replays the
bitmap's claim-protocol transitions, flagging:

* ``vmm-overwrote-guest`` — a VMM write landed on sectors whose most
  recent *on-disk* data came from the guest.  This is the paper's
  central lost-update hazard; the atomic ``writable_runs`` check at
  write time exists precisely to make it impossible.  The benign
  ordering where a guest write is *recorded* (queued at the mediator)
  but lands after the VMM's write is deliberately not flagged — the
  replayed guest write is last on disk and the state converges.
* ``peer-write`` — peer chunk serving is read-only by construction.
* ``double-claim`` — ``try_claim`` of a block already COPYING.
* ``fill-without-claim`` — ``commit_fill`` of a block never claimed.
* ``release-after-commit`` / ``release-without-claim`` — releasing a
  claim the caller no longer (or never) held, except the benign case
  where the guest filled the whole block mid-fetch.
* ``leaked-claim`` — claims still outstanding once the bitmap is
  complete.
"""

from __future__ import annotations

from repro.analysis.sanitizers import Sanitizer
from repro.util.intervalmap import IntervalMap


class WriteRaceDetector(Sanitizer):
    """See module docstring; attach via ``SanitizerSuite``."""

    name = "write-race"

    def __init__(self, env, bitmap, disk, strict: bool = False):
        super().__init__(env, strict)
        self.bitmap = bitmap
        self.disk = disk
        #: Sectors whose latest landed disk write came from the guest.
        self.guest_on_disk = IntervalMap()
        #: Blocks currently claimed by the copier.
        self.claimed: set[int] = set()
        #: Blocks the copier committed.
        self.committed: set[int] = set()
        #: Blocks filled outright by a full-block guest write.
        self.guest_filled: set[int] = set()
        bitmap.transition_listeners.append(self._on_transition)
        disk.write_observers.append(self._on_disk_write)

    # -- claim protocol -----------------------------------------------------

    def _on_transition(self, event: str, block: int, **details) -> None:
        if event == "claim":
            if details["granted"]:
                self.claimed.add(block)
            elif details["state"] == "copying":
                self.report(
                    "double-claim",
                    f"try_claim of block {block} while already COPYING "
                    f"— two fetchers racing for one block",
                    block=block)
        elif event == "commit":
            if not details["was_claimed"]:
                self.report(
                    "fill-without-claim",
                    f"commit_fill of block {block} that was never "
                    f"claimed (state {details['state']!r})",
                    block=block, state=details["state"])
            else:
                self.claimed.discard(block)
                self.committed.add(block)
        elif event == "release":
            if details["was_claimed"]:
                self.claimed.discard(block)
            elif block in self.guest_filled:
                pass  # guest filled the block mid-fetch; benign
            elif block in self.committed:
                self.report(
                    "release-after-commit",
                    f"release_claim of block {block} after it was "
                    f"committed FILLED",
                    block=block)
            else:
                self.report(
                    "release-without-claim",
                    f"release_claim of block {block} that was never "
                    f"claimed (state {details['state']!r})",
                    block=block, state=details["state"])
        elif event == "guest-fill":
            self.claimed.discard(block)
            self.guest_filled.add(block)

    # -- landed writes ------------------------------------------------------

    def _on_disk_write(self, request) -> None:
        if request.lba >= self.bitmap.image_sectors:
            return  # protected region (bitmap save), not image data
        image_end = self.bitmap.image_sectors
        for run_start, run_end, _token in request.buffer.runs:
            start = max(run_start, 0)
            end = min(run_end, image_end)
            if start >= end:
                continue
            if request.origin == "guest":
                self.guest_on_disk.set_range(start, end - start, True)
            elif request.origin == "vmm":
                self._check_vmm_run(start, end)
                self.guest_on_disk.clear_range(start, end - start)
            elif request.origin == "peer":
                self.report(
                    "peer-write",
                    f"peer-origin WRITE of [{start}, {end}) — the "
                    f"chunk service is read-only",
                    lba=start, sectors=end - start)

    def _check_vmm_run(self, start: int, end: int) -> None:
        for sub_start, sub_end, value in self.guest_on_disk.runs_in(
                start, end - start):
            if value is None:
                continue
            self.report(
                "vmm-overwrote-guest",
                f"VMM write clobbered guest data on disk at "
                f"[{sub_start}, {sub_end}) — lost update",
                lba=sub_start, sectors=sub_end - sub_start,
                block=self.bitmap.block_of(sub_start))

    # -- end of run ---------------------------------------------------------

    def finalize(self) -> None:
        if self.bitmap.complete:
            for block in sorted(self.claimed):
                self.report(
                    "leaked-claim",
                    f"block {block} still claimed after the bitmap "
                    f"completed",
                    block=block)
