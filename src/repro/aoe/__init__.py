"""Extended ATA-over-Ethernet protocol: initiator, target, messages."""

from repro.aoe.client import AoeInitiator, AoeTimeoutError
from repro.aoe.protocol import (
    AoeAck,
    AoeCommand,
    AoeDataFragment,
    ReassemblyBuffer,
    fragment_count,
    sectors_per_frame,
    split_read_reply,
)
from repro.aoe.server import AoeServer, ImageStore

__all__ = [
    "AoeAck",
    "AoeCommand",
    "AoeDataFragment",
    "AoeInitiator",
    "AoeServer",
    "AoeTimeoutError",
    "ImageStore",
    "ReassemblyBuffer",
    "fragment_count",
    "sectors_per_frame",
    "split_read_reply",
]
