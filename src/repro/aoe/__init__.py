"""Extended ATA-over-Ethernet protocol: initiator, target, messages."""

from repro.aoe.client import AoeInitiator, AoeNakError, AoeTimeoutError
from repro.aoe.protocol import (
    AoeAck,
    AoeCommand,
    AoeDataFragment,
    AoeNak,
    ReassemblyBuffer,
    fragment_count,
    sectors_per_frame,
    split_read_reply,
)
from repro.aoe.rtt import RttEstimator
from repro.aoe.server import AoeServer, ImageStore

__all__ = [
    "AoeAck",
    "AoeCommand",
    "AoeDataFragment",
    "AoeInitiator",
    "AoeNak",
    "AoeNakError",
    "AoeServer",
    "AoeTimeoutError",
    "ImageStore",
    "ReassemblyBuffer",
    "RttEstimator",
    "fragment_count",
    "sectors_per_frame",
    "split_read_reply",
]
