"""AoE initiator with retransmission and RTT estimation (VMM side).

The device mediator hands this client an intercepted taskfile's
(op, LBA, count) and gets back content runs.  The client adds the paper's
protocol extensions: fragmentation/reassembly keyed on the tag field, and
a retransmission timer (RTO from an EWMA RTT estimate) to tolerate frame
loss.  Completion detection is quantized to the VMM's polling interval,
because the VMM has no interrupts of its own (paper 3.2/4.1).
"""

from __future__ import annotations

from itertools import count

from repro.aoe.protocol import (
    AoeAck,
    AoeCommand,
    AoeDataFragment,
    AoeNak,
    ReassemblyBuffer,
    split_write_payload,
)
from repro.aoe.rtt import RttEstimator
from repro.net.nic import Nic
from repro.obs.telemetry import NULL_TELEMETRY
from repro.sim import Environment, Event, Interrupt


class AoeTimeoutError(Exception):
    """Transaction exceeded the retry budget."""


class AoeNakError(Exception):
    """The target refused the request (peer no longer holds the data)."""

    def __init__(self, tag: int, target: str, reason: str):
        super().__init__(f"AoE tag {tag} refused by {target}: {reason}")
        self.tag = tag
        self.target = target
        self.reason = reason


class _Transaction:
    __slots__ = ("command", "target", "protocol", "done", "reassembly",
                 "sent_at", "last_activity", "retries", "nak")

    def __init__(self, env: Environment, command: AoeCommand,
                 target: str, protocol: str):
        self.command = command
        self.target = target
        self.protocol = protocol
        self.done = Event(env)
        self.reassembly = ReassemblyBuffer(command.tag)
        self.sent_at = env.now
        self.last_activity = env.now
        self.retries = 0
        self.nak: AoeNak | None = None


class AoeInitiator:
    """AoE client bound to the VMM's dedicated NIC."""

    #: Retransmission budget per transaction.
    MAX_RETRIES = 5

    def __init__(self, env: Environment, nic: Nic, server: str,
                 poll_interval: float = 0.0,
                 initial_rto: float = 50e-3,
                 min_rto: float = 2e-3,
                 telemetry=NULL_TELEMETRY):
        self.env = env
        self.nic = nic
        self.server = server
        self.poll_interval = poll_interval
        self._tags = count()
        self._pending: dict[int, _Transaction] = {}
        #: Called with ``(kind, **fields)`` at protocol milestones —
        #: ``"send"`` (fresh or retransmit), ``"rtt-sample"``, ``"nak"``,
        #: ``"timeout"``, ``"complete"``.  The AoE conformance validator
        #: subscribes here; observers must not mutate the client.
        self.observers: list = []
        self.initial_rto = initial_rto
        #: Primary-server estimator, kept as ``self.rtt`` for callers
        #: that read ``srtt``/``rto`` in the single-target case.
        self.rtt = RttEstimator(initial_rto, min_rto)
        #: Per-target estimators.  RTT state must not leak across
        #: targets: a warm peer answering from its local disk in
        #: microseconds would otherwise collapse the RTO that a
        #: congested origin replica is judged by, and every queued
        #: origin read would burn its whole retry budget (the reclaim
        #: path's warm peers made this mix the common case).
        self._rtts: dict[str, RttEstimator] = {server: self.rtt}
        self.min_rto = min_rto
        self._dispatcher = None
        # Metrics.
        self.reads_completed = 0
        self.writes_completed = 0
        self.retransmissions = 0
        self.bytes_received = 0
        self.telemetry = telemetry
        registry = telemetry.registry
        self._m_rtt = {
            "read": registry.histogram("aoe_request_seconds", op="read",
                                       help="AoE round-trip latency"),
            "write": registry.histogram("aoe_request_seconds", op="write",
                                        help="AoE round-trip latency"),
        }
        self._m_retransmissions = registry.counter(
            "aoe_retransmissions_total",
            help="AoE commands retransmitted after an RTO expiry")
        self._m_timeouts = registry.counter(
            "aoe_timeouts_total",
            help="AoE transactions abandoned after the retry budget")
        self._m_rx_bytes = registry.counter(
            "aoe_bytes_received_total",
            help="payload bytes fetched from the storage server")
        self._m_tx_bytes = registry.counter(
            "aoe_bytes_sent_total",
            help="payload bytes pushed to the storage server")

    # -- lifecycle ---------------------------------------------------------------

    def start(self):
        """Spawn the receive dispatcher; returns the process."""
        if self._dispatcher is None:
            self._dispatcher = self.env.process(self._dispatch(),
                                                name="aoe-dispatch")
        return self._dispatcher

    def stop(self) -> None:
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("stop")
        self._dispatcher = None

    @property
    def rto(self) -> float:
        return self.rtt.rto

    @property
    def srtt(self) -> float:
        return self.rtt.srtt

    def estimator_for(self, target: str) -> RttEstimator:
        """The RTT estimator tracking one target (created on first use)."""
        estimator = self._rtts.get(target)
        if estimator is None:
            estimator = RttEstimator(self.initial_rto, self.min_rto)
            self._rtts[target] = estimator
        return estimator

    # -- public operations ----------------------------------------------------------

    def read_blocks(self, lba: int, sector_count: int,
                    bulk: bool = False, target: str | None = None,
                    protocol: str = "aoe", fluid: bool = False):
        """Generator: fetch content runs for a sector range.

        ``bulk=True`` selects the aggregate wire path — identical timing,
        far fewer simulation events; used for background-copy streaming.
        ``fluid=True`` (bulk only) prices the data leg analytically via
        the switch's fluid-flow model and skips the retransmission
        machinery — callers must demote to packet mode before loss or
        moderation dynamics engage.  ``target`` overrides the default
        server port for this one transaction (the distribution fabric
        routes reads to replicas and peers); ``protocol`` tags the
        frames for the switch's per-protocol accounting.
        """
        if fluid and not bulk:
            raise ValueError("fluid transfers require bulk=True")
        command = AoeCommand(next(self._tags), "read", lba, sector_count,
                             bulk=bulk, fluid=fluid)
        transaction = yield from self._transact(command, target, protocol)
        self.reads_completed += 1
        runs = transaction.reassembly.assemble()
        self.bytes_received += sector_count * 512
        self._m_rx_bytes.inc(sector_count * 512)
        yield from self._poll_quantize()
        return runs

    def write_blocks(self, lba: int, sector_count: int, runs: list,
                     target: str | None = None):
        """Generator: push content runs to the server image."""
        command = AoeCommand(next(self._tags), "write", lba, sector_count,
                             payload_runs=tuple(runs))
        yield from self._transact(command, target, "aoe")
        self.writes_completed += 1
        self._m_tx_bytes.inc(sector_count * 512)
        yield from self._poll_quantize()

    # -- transaction engine ------------------------------------------------------------

    def _emit(self, kind: str, **fields) -> None:
        for observer in self.observers:
            observer(kind, **fields)

    def _transact(self, command: AoeCommand, target: str | None = None,
                  protocol: str = "aoe"):
        if self._dispatcher is None:
            self.start()
        transaction = _Transaction(self.env, command,
                                   target or self.server, protocol)
        self._pending[command.tag] = transaction
        started = self.env.now
        span = self.telemetry.tracer.start(
            f"aoe-{command.op}", lba=command.lba,
            sectors=command.sector_count, target=transaction.target)
        try:
            with self.telemetry.profiler.track("aoe-client",
                                               f"aoe-{command.op}"):
                yield from self._transact_inner(transaction)
        finally:
            self._pending.pop(command.tag, None)
            self.telemetry.tracer.end(span, retries=transaction.retries)
        if transaction.nak is not None:
            if self.observers:
                self._emit("nak", tag=command.tag,
                           target=transaction.target, lba=command.lba,
                           sector_count=command.sector_count,
                           reason=transaction.nak.reason)
            raise AoeNakError(command.tag, transaction.target,
                              transaction.nak.reason)
        if self.observers:
            self._emit("complete", tag=command.tag,
                       target=transaction.target,
                       retries=transaction.retries)
        self._m_rtt[command.op].observe(self.env.now - started)
        return transaction

    def _transact_inner(self, transaction: _Transaction):
        command = transaction.command
        if self.observers:
            self._emit("send", tag=command.tag, op=command.op,
                       lba=command.lba,
                       sector_count=command.sector_count,
                       target=transaction.target, retransmit=False)
        yield from self._send_command(transaction)
        if command.fluid:
            # The fluid data leg is priced analytically and cannot lose
            # frames, so the RTO/retransmit machinery below would only
            # inject spurious duplicates (a fluid flow routinely outlives
            # the bulk RTO).  Any NAK still resolves the transaction and
            # is surfaced by _transact as usual.
            yield transaction.done
            return
        rtt = self.estimator_for(transaction.target)
        while not transaction.done.triggered:
            timer = self.env.timeout(rtt.rto, value="timeout")
            outcome = yield self.env.any_of([transaction.done, timer])
            if transaction.done in outcome:
                break
            # Fragments still trickling in: the reply is in flight,
            # extend rather than retransmit.
            if (self.env.now - transaction.last_activity) < rtt.rto:
                continue
            transaction.retries += 1
            if transaction.retries > self.MAX_RETRIES:
                self._m_timeouts.inc()
                if self.observers:
                    self._emit("timeout", tag=command.tag,
                               target=transaction.target)
                raise AoeTimeoutError(
                    f"AoE tag {command.tag} gave up after "
                    f"{self.MAX_RETRIES} retries")
            self.retransmissions += 1
            self._m_retransmissions.inc()
            # Back off the estimator on loss (Karn-style doubling).
            rtt.back_off()
            transaction.sent_at = self.env.now
            if self.observers:
                self._emit("send", tag=command.tag, op=command.op,
                           lba=command.lba,
                           sector_count=command.sector_count,
                           target=transaction.target,
                           retransmit=True,
                           retries=transaction.retries)
            yield from self._send_command(transaction)

    def _send_command(self, transaction: _Transaction):
        command = transaction.command
        if command.op == "write":
            # Data fragments travel first, then the command completes the
            # exchange (wire cost of the payload is paid here).
            fragments = split_write_payload(
                command.tag, command.lba, command.sector_count,
                list(command.payload_runs), self.nic.switch.mtu)
            for fragment in fragments:
                yield from self.nic.send(transaction.target, fragment,
                                         fragment.payload_bytes,
                                         protocol=transaction.protocol)
        yield from self.nic.send(transaction.target, command,
                                 command.frame_bytes(),
                                 protocol=transaction.protocol)

    def _dispatch(self):
        try:
            while True:
                frame = yield from self.nic.recv()
                payload = frame.payload
                if isinstance(payload, AoeDataFragment):
                    self._on_fragment(payload)
                elif isinstance(payload, AoeAck):
                    self._on_ack(payload)
                elif isinstance(payload, AoeNak):
                    self._on_nak(payload)
        except Interrupt:
            return

    def _on_fragment(self, fragment: AoeDataFragment) -> None:
        transaction = self._pending.get(fragment.tag)
        if transaction is None or transaction.done.triggered:
            return  # stale retransmission
        transaction.last_activity = self.env.now
        transaction.reassembly.add(fragment)
        if transaction.reassembly.complete:
            self._sample_rtt(transaction)
            transaction.done.succeed()

    def _on_ack(self, ack: AoeAck) -> None:
        transaction = self._pending.get(ack.tag)
        if transaction is None or transaction.done.triggered:
            return
        self._sample_rtt(transaction)
        transaction.done.succeed()

    def _sample_rtt(self, transaction: _Transaction) -> None:
        """Karn's algorithm: a reply to a retransmitted command is
        ambiguous — it may answer either copy — so it must not feed the
        estimator."""
        if transaction.retries != 0:
            return
        self._record_rtt_sample(transaction)

    def _record_rtt_sample(self, transaction: _Transaction) -> None:
        # Split from the gate above so the conformance validator sees
        # every sample taken, even by a subclass overriding the gate.
        if self.observers:
            self._emit("rtt-sample", tag=transaction.command.tag,
                       retries=transaction.retries,
                       rtt=self.env.now - transaction.sent_at)
        self.estimator_for(transaction.target).observe(
            self.env.now - transaction.sent_at)

    def _on_nak(self, nak: AoeNak) -> None:
        transaction = self._pending.get(nak.tag)
        if transaction is None or transaction.done.triggered:
            return
        transaction.nak = nak
        transaction.done.succeed()

    def _poll_quantize(self):
        """Completion is observed at the next VMM polling tick."""
        # Yield-only, one per AoE operation: safe to pool.
        if self.poll_interval > 0:
            yield self.env.pooled_timeout(self.poll_interval / 2.0)
        else:
            yield self.env.pooled_timeout(0)
