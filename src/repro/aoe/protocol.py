"""Extended ATA-over-Ethernet protocol messages (paper 4.2).

The paper extends stock AoE [43] with jumbo-frame support and
retransmission.  A command carries the ATA register values (operation,
LBA, sector count) — which is exactly why the VMM can convert an
intercepted taskfile to a network request "with minimal effort".  Replies
that exceed one frame are split into fragments; the AoE tag field encodes
which transaction and fragment a frame belongs to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import params


def sectors_per_frame(mtu: int) -> int:
    """How many 512-byte sectors fit in one AoE data frame at ``mtu``."""
    payload_room = mtu - params.AOE_HEADER_BYTES
    sectors = payload_room // params.SECTOR_BYTES
    if sectors < 1:
        raise ValueError(f"MTU {mtu} cannot carry one sector")
    return sectors


def fragment_count(sector_count: int, mtu: int) -> int:
    """Frames needed to carry ``sector_count`` sectors at ``mtu``."""
    per_frame = sectors_per_frame(mtu)
    return (sector_count + per_frame - 1) // per_frame


@dataclass(frozen=True, slots=True)
class AoeCommand:
    """Initiator -> server ATA command."""

    tag: int
    op: str                  # "read" | "write"
    lba: int
    sector_count: int
    #: For writes: the data runs being sent (carried across fragments;
    #: the model attaches them to the logical command).
    payload_runs: tuple = ()
    #: Bulk transfers use the switch's aggregate path (same wire time,
    #: fewer simulation events) — used by the background copier.
    bulk: bool = False
    #: Fluid transfers price the data leg analytically (max-min fair
    #: flow model, no per-chunk events); only valid with ``bulk`` and
    #: only while the deployment's FluidState is active.
    fluid: bool = False

    @property
    def header_bytes(self) -> int:
        return params.AOE_HEADER_BYTES

    def frame_bytes(self) -> int:
        """Wire payload size of the command frame itself."""
        if self.op == "write":
            # Write commands are followed by data fragments; the command
            # frame itself is header-only.
            return self.header_bytes
        return self.header_bytes


@dataclass(frozen=True, slots=True)
class AoeDataFragment:
    """One fragment of a transfer (server->initiator for reads,
    initiator->server for writes)."""

    tag: int
    fragment_index: int
    fragment_total: int
    lba: int                 # first sector this fragment covers
    sector_count: int        # sectors in this fragment
    runs: tuple = ()         # content runs for reads

    @property
    def payload_bytes(self) -> int:
        return (params.AOE_HEADER_BYTES
                + self.sector_count * params.SECTOR_BYTES)


@dataclass(frozen=True, slots=True)
class AoeAck:
    """Server -> initiator completion for writes."""

    tag: int

    @property
    def payload_bytes(self) -> int:
        return params.AOE_HEADER_BYTES


@dataclass(frozen=True, slots=True)
class AoeNak:
    """Responder -> initiator refusal.

    A peer chunk responder sends this when asked for sectors its block
    bitmap no longer (or never) marked servable, so the initiator can
    fall back to an origin replica immediately instead of burning the
    retransmission budget.
    """

    tag: int
    reason: str = "not-local"

    @property
    def payload_bytes(self) -> int:
        return params.AOE_HEADER_BYTES


@dataclass(slots=True)
class ReassemblyBuffer:
    """Collects fragments of one read reply, tolerant of duplicates."""

    tag: int
    fragment_total: int | None = None
    fragments: dict = field(default_factory=dict)

    def add(self, fragment: AoeDataFragment) -> None:
        if fragment.tag != self.tag:
            raise ValueError("fragment for a different transaction")
        self.fragment_total = fragment.fragment_total
        # Duplicates (from retransmission) are idempotent.
        self.fragments[fragment.fragment_index] = fragment

    @property
    def complete(self) -> bool:
        return (self.fragment_total is not None
                and len(self.fragments) == self.fragment_total)

    def assemble(self) -> list:
        """The full content-run list, in LBA order, coalesced."""
        if not self.complete:
            raise ValueError("reassembly incomplete")
        runs: list = []
        for index in range(self.fragment_total):
            runs.extend(self.fragments[index].runs)
        merged: list = []
        for start, end, token in runs:
            if merged and merged[-1][1] == start and merged[-1][2] == token:
                merged[-1] = (merged[-1][0], end, token)
            else:
                merged.append((start, end, token))
        return merged


def split_read_reply(tag: int, lba: int, runs: list, mtu: int):
    """Split a read reply's runs into per-frame fragments.

    ``runs`` tile ``[lba, lba + total)``; each fragment carries the runs
    clipped to its own sector window.
    """
    total = sum(end - start for start, end, _ in runs)
    per_frame = sectors_per_frame(mtu)
    count = fragment_count(total, mtu)
    fragments = []
    for index in range(count):
        window_start = lba + index * per_frame
        window_end = min(lba + total, window_start + per_frame)
        clipped = tuple(
            (max(start, window_start), min(end, window_end), token)
            for start, end, token in runs
            if start < window_end and end > window_start
        )
        fragments.append(AoeDataFragment(
            tag=tag,
            fragment_index=index,
            fragment_total=count,
            lba=window_start,
            sector_count=window_end - window_start,
            runs=clipped,
        ))
    return fragments


def split_write_payload(tag: int, lba: int, sector_count: int, runs: list,
                        mtu: int):
    """Fragments for the data of a write command."""
    return split_read_reply(tag, lba, _clip_runs(runs, lba, sector_count),
                            mtu)


def _clip_runs(runs: list, lba: int, sector_count: int) -> list:
    end_lba = lba + sector_count
    return [
        (max(start, lba), min(end, end_lba), token)
        for start, end, token in runs
        if start < end_lba and end > lba
    ]
