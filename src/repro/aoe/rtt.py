"""Jacobson/Karels round-trip-time estimation (RFC 6298 shape).

Extracted from the AoE initiator so the same estimator can be used
per *replica*: the distribution fabric's RTT-aware selector keeps one
:class:`RttEstimator` per candidate target and routes reads to the
fastest.  Karn's algorithm lives here too — a sample taken from a
retransmitted transaction is ambiguous (the reply may answer either
copy) and must never feed the estimate.
"""

from __future__ import annotations


class RttEstimator:
    """EWMA smoothed RTT + variance, with Karn-style loss backoff."""

    def __init__(self, initial_rto: float = 50e-3,
                 min_rto: float = 2e-3):
        self._srtt = initial_rto / 2.0
        self._rttvar = initial_rto / 4.0
        self.min_rto = min_rto
        self.samples = 0

    @property
    def srtt(self) -> float:
        return self._srtt

    @property
    def rttvar(self) -> float:
        return self._rttvar

    @property
    def rto(self) -> float:
        """Retransmission timeout: SRTT + 4 * RTTVAR, floored."""
        return max(self.min_rto, self._srtt + 4.0 * self._rttvar)

    def observe(self, sample: float) -> None:
        """Fold one *unambiguous* RTT sample into the estimate.

        Callers enforce Karn's algorithm: never pass a sample measured
        on a transaction that was retransmitted.
        """
        error = sample - self._srtt
        self._srtt += 0.125 * error
        self._rttvar += 0.25 * (abs(error) - self._rttvar)
        self.samples += 1

    def back_off(self) -> None:
        """Loss signal: widen the timeout window (Karn-style doubling)."""
        self._rttvar *= 2.0
