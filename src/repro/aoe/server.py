"""vblade-style AoE target.

Serves an OS image over the switch.  The stock vblade is single-threaded
and bottlenecks when an initiator floods read requests (paper 4.2); the
reproduction implements both that and the paper's thread-pool version, so
the difference is measurable (ablation bench).
"""

from __future__ import annotations

from repro import params
from repro.aoe.protocol import (
    AoeAck,
    AoeCommand,
    split_read_reply,
)
from repro.net.nic import Nic
from repro.obs.telemetry import NULL_TELEMETRY
from repro.sim import Environment, Resource, Store
from repro.util.intervalmap import IntervalMap


class ImageStore:
    """Server-side backing store for OS images.

    The image mostly sits in the server's page cache (it is served to
    every new instance), so reads alternate deterministically between a
    cheap cache hit and a disk-priced miss at the configured ratio.
    """

    def __init__(self, env: Environment, contents: IntervalMap,
                 image_sectors: int,
                 cache_hit_ratio: float = 0.85,
                 hit_seconds: float = 150e-6,
                 miss_seconds: float = 6e-3,
                 bandwidth: float = 800e6):
        if not 0.0 <= cache_hit_ratio <= 1.0:
            raise ValueError("cache_hit_ratio must be in [0, 1]")
        self.env = env
        self.contents = contents
        self.image_sectors = image_sectors
        self.cache_hit_ratio = cache_hit_ratio
        self.hit_seconds = hit_seconds
        self.miss_seconds = miss_seconds
        self.bandwidth = bandwidth
        self._request_index = 0
        self.reads = 0

    #: Requests at/above this size are streaming reads the server's
    #: readahead keeps in cache (the background copier's bulk fetches).
    STREAMING_SECTORS = 1024

    def read(self, lba: int, sector_count: int):
        """Generator: fetch runs for ``[lba, lba+sector_count)``."""
        self._request_index += 1
        self.reads += 1
        if sector_count >= self.STREAMING_SECTORS:
            # Sequential bulk: the prefetcher hides the disk.
            is_hit = True
        elif self.cache_hit_ratio >= 1.0:
            is_hit = True
        elif self.cache_hit_ratio <= 0.0:
            is_hit = False
        else:
            # Deterministic interleave achieving the hit ratio.
            period = 1.0 / (1.0 - self.cache_hit_ratio)
            is_hit = (self._request_index % round(period)) != 0
        base = self.hit_seconds if is_hit else self.miss_seconds
        transfer = sector_count * params.SECTOR_BYTES / self.bandwidth
        yield self.env.pooled_timeout(base + transfer)
        return list(self.contents.runs_in(lba, sector_count))

    def write(self, lba: int, runs: list):
        """Generator: store runs (initiator write path; rarely used)."""
        nbytes = sum(end - start for start, end, _ in runs) \
            * params.SECTOR_BYTES
        yield self.env.timeout(self.miss_seconds
                               + nbytes / self.bandwidth)
        for start, end, token in runs:
            if token is None:
                self.contents.clear_range(start, end - start)
            else:
                self.contents.set_range(start, end - start, token)


class AoeServer:
    """AoE target process bound to one NIC.

    ``workers=1`` reproduces stock single-threaded vblade; the paper's
    version uses a pool.
    """

    #: Per-frame software cost (syscall + copy) on the server; this is
    #: what jumbo frames amortize (paper 4.2's extension).
    PER_FRAME_CPU_SECONDS = 3e-6

    #: Frame protocol tag (the peer chunk responder overrides this so
    #: the switch can attribute origin vs peer traffic).
    PROTOCOL = "aoe"
    #: Profiler attribution for served commands (the peer chunk service
    #: overrides this so p2p serving shows up as its own component).
    COMPONENT = "aoe-server"

    def __init__(self, env: Environment, nic: Nic, store: ImageStore,
                 workers: int = 8, mtu: int | None = None,
                 telemetry=NULL_TELEMETRY):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.env = env
        self.nic = nic
        self.store = store
        self.mtu = mtu if mtu is not None else nic.switch.mtu
        self.telemetry = telemetry
        self.workers = Resource(env, capacity=workers)
        self.worker_count = workers
        self._inbox: Store = Store(env)
        self._process = None
        # Metrics.
        self.commands_served = 0
        self.fragments_sent = 0
        registry = telemetry.registry
        self._m_service = {
            "read": registry.histogram(
                "aoe_server_service_seconds", op="read",
                help="server-side service time per AoE command"),
            "write": registry.histogram(
                "aoe_server_service_seconds", op="write",
                help="server-side service time per AoE command"),
        }
        self._m_commands = {
            "read": registry.counter("aoe_server_commands_total",
                                     op="read"),
            "write": registry.counter("aoe_server_commands_total",
                                      op="write"),
        }
        self._m_fragments = registry.counter(
            "aoe_server_fragments_total",
            help="reply fragments put on the wire")
        self._m_queue_wait = registry.histogram(
            "aoe_server_queue_wait_seconds",
            help="time a command waited for a free worker")

    def start(self):
        """Spawn the receive/dispatch loop; returns the process."""
        if self._process is None:
            self._process = self.env.process(self._run(), name="aoe-server")
        return self._process

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")
        self._process = None

    # -- internals ---------------------------------------------------------------

    def _run(self):
        from repro.sim import Interrupt
        try:
            while True:
                frame = yield from self.nic.recv()
                command = frame.payload
                if isinstance(command, AoeCommand):
                    self.env.process(
                        self._serve(command, reply_to=frame.src),
                        name=f"aoe-serve-{command.tag}")
        except Interrupt:
            return

    def _serve(self, command: AoeCommand, reply_to: str):
        arrived = self.env.now
        with self.workers.request() as grant, \
                self.telemetry.profiler.track(self.COMPONENT,
                                              f"serve-{command.op}"):
            yield grant
            self._m_queue_wait.observe(self.env.now - arrived)
            started = self.env.now
            if command.op == "read":
                yield from self._serve_read(command, reply_to)
            elif command.op == "write":
                yield from self._serve_write(command, reply_to)
            else:
                raise ValueError(f"unknown AoE op {command.op!r}")
            self._m_service[command.op].observe(self.env.now - started)
            self._m_commands[command.op].inc()
        self.commands_served += 1

    def _serve_read(self, command: AoeCommand, reply_to: str):
        runs = yield from self.store.read(command.lba, command.sector_count)
        if command.bulk:
            yield from self._serve_read_bulk(command, reply_to, runs)
            return
        fragments = split_read_reply(command.tag, command.lba, runs,
                                     self.mtu)
        # Hot path — hoisted lookups and pooled per-frame CPU timeouts.
        env = self.env
        nic_send = self.nic.send
        per_frame_cpu = self.PER_FRAME_CPU_SECONDS
        protocol = self.PROTOCOL
        m_fragments_inc = self._m_fragments.inc
        for fragment in fragments:
            yield env.pooled_timeout(per_frame_cpu)
            yield from nic_send(reply_to, fragment,
                                fragment.payload_bytes,
                                protocol=protocol)
            self.fragments_sent += 1
            m_fragments_inc()

    def _serve_read_bulk(self, command: AoeCommand, reply_to: str,
                         runs: list):
        """Aggregate path: one logical fragment, full wire time."""
        from repro.aoe.protocol import AoeDataFragment, sectors_per_frame
        payload_bytes = command.sector_count * params.SECTOR_BYTES
        per_frame_payload = sectors_per_frame(self.mtu) \
            * params.SECTOR_BYTES + params.AOE_HEADER_BYTES
        frames = max(1, -(-payload_bytes // per_frame_payload))
        yield self.env.pooled_timeout(frames * self.PER_FRAME_CPU_SECONDS)
        fragment = AoeDataFragment(
            tag=command.tag, fragment_index=0, fragment_total=1,
            lba=command.lba, sector_count=command.sector_count,
            runs=tuple(runs))
        # Fluid commands price the data leg analytically; the worker
        # grant is held either way, so replica fan-out contention (the
        # dominant queueing effect) is identical in both modes.
        switch = self.nic.switch
        transfer = switch.fluid_transfer if command.fluid \
            else switch.bulk_transfer
        yield from transfer(
            self.nic.name, reply_to, fragment, payload_bytes,
            per_frame_payload, protocol=self.PROTOCOL)
        self.fragments_sent += 1
        self._m_fragments.inc()

    def _serve_write(self, command: AoeCommand, reply_to: str):
        yield from self.store.write(command.lba,
                                    list(command.payload_runs))
        ack = AoeAck(command.tag)
        yield from self.nic.send(reply_to, ack, ack.payload_bytes,
                                 protocol=self.PROTOCOL)
