"""Application workload models for the paper's evaluation."""

from repro.apps.fio import FioBenchmark, IopingBenchmark
from repro.apps.kernbench import KernbenchRun
from repro.apps.kvstore import CASSANDRA, MEMCACHED, KvStoreServer
from repro.apps.mpi import COLLECTIVES, MpiCluster
from repro.apps.perftest import RdmaPerfTest
from repro.apps.sysbench import MemoryBenchmark, ThreadBenchmark
from repro.apps.ycsb import READ_HEAVY, WRITE_HEAVY, YcsbBenchmark

__all__ = [
    "CASSANDRA",
    "COLLECTIVES",
    "FioBenchmark",
    "IopingBenchmark",
    "KernbenchRun",
    "KvStoreServer",
    "MEMCACHED",
    "MemoryBenchmark",
    "MpiCluster",
    "RdmaPerfTest",
    "READ_HEAVY",
    "ThreadBenchmark",
    "WRITE_HEAVY",
    "YcsbBenchmark",
]
