"""Storage micro-benchmarks: fio throughput and ioping latency
(paper 5.5.2, Figures 10 and 11).

fio first lays out its test file (making those blocks locally
authoritative), then measures sequential read/write throughput with 1-MB
requests — matching the paper's 200 MB direct-I/O run.  ioping issues
small reads and reports mean latency; during the deploy phase these
really do queue behind the VMM's multiplexed writes, which is where the
+4.3 ms comes from.
"""

from __future__ import annotations

from repro import params


class FioBenchmark:
    """Sequential throughput measurement (fio)."""

    TOTAL_BYTES = 200 * 2**20
    BLOCK_BYTES = 2**20

    def __init__(self, instance, file_lba: int | None = None):
        self.instance = instance
        # Test file placed in the scratch area (16 GiB into the image).
        self.file_lba = file_lba if file_lba is not None else 16 * 2**21

    def layout(self):
        """Generator: create the test file (sequential writes)."""
        sectors = self.BLOCK_BYTES // params.SECTOR_BYTES
        blocks = self.TOTAL_BYTES // self.BLOCK_BYTES
        for index in range(blocks):
            yield from self.instance.write(
                self.file_lba + index * sectors, sectors, tag="fio-layout")

    def read_throughput(self):
        """Generator: sequential read; returns bytes/second."""
        env = self.instance.env
        sectors = self.BLOCK_BYTES // params.SECTOR_BYTES
        blocks = self.TOTAL_BYTES // self.BLOCK_BYTES
        start = env.now
        for index in range(blocks):
            yield from self.instance.read(
                self.file_lba + index * sectors, sectors)
        return self.TOTAL_BYTES / (env.now - start)

    def write_throughput(self):
        """Generator: sequential write; returns bytes/second."""
        env = self.instance.env
        sectors = self.BLOCK_BYTES // params.SECTOR_BYTES
        blocks = self.TOTAL_BYTES // self.BLOCK_BYTES
        start = env.now
        for index in range(blocks):
            yield from self.instance.write(
                self.file_lba + index * sectors, sectors, tag="fio-write")
        return self.TOTAL_BYTES / (env.now - start)


class IopingBenchmark:
    """Small-read latency measurement (ioping).

    The paper's run: 100 reads with 4-KB requests over a 1-MB span.
    """

    REQUESTS = 100
    BLOCK_BYTES = 4096
    SPAN_BYTES = 2**20

    def __init__(self, instance, file_lba: int | None = None,
                 interval: float = 20e-3):
        self.instance = instance
        self.file_lba = file_lba if file_lba is not None else 16 * 2**21
        self.interval = interval
        self.latencies: list[float] = []

    def layout(self):
        """Generator: make the probed span locally authoritative."""
        sectors = self.SPAN_BYTES // params.SECTOR_BYTES
        yield from self.instance.write(self.file_lba, sectors,
                                       tag="ioping-layout")

    def run(self):
        """Generator: probe; returns mean latency in seconds."""
        env = self.instance.env
        sectors = self.BLOCK_BYTES // params.SECTOR_BYTES
        span_sectors = self.SPAN_BYTES // params.SECTOR_BYTES
        self.latencies = []
        for index in range(self.REQUESTS):
            offset = (index * 37 * sectors) % (span_sectors - sectors)
            start = env.now
            yield from self.instance.read(self.file_lba + offset, sectors)
            self.latencies.append(env.now - start)
            # Deterministic jitter de-phases the probe cadence from any
            # periodic background activity.
            jitter = self.interval * 0.45 * ((index * 7) % 10 - 4.5) / 4.5
            yield env.timeout(self.interval + jitter)
        return self.mean_latency

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            raise ValueError("run() has not produced samples")
        return sum(self.latencies) / len(self.latencies)
