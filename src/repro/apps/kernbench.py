"""kernbench: parallel kernel compile (paper 5.4, Figure 7).

``allnoconfig`` with ``make -j12``: ~16 s of CPU-bound work on the
bare-metal machine, plus real object-file writes through the instance's
storage path — which is how the deploy-phase I/O-multiplexing cost (the
+8%) enters, and why KVM's penalty (+3%, pure CPU) is smaller.
"""

from __future__ import annotations

from repro import params
from repro.hw.mmu import PROFILE_COMPILE


#: Bare-metal elapsed time of the compile (paper: ~16 s).
BASE_COMPILE_SECONDS = 16.0

#: Object files + intermediates written during the build.
BUILD_WRITE_BYTES = 48 * 2**20

#: Write granularity (page-cache flushes).
WRITE_CHUNK_BYTES = 2 * 2**20


class KernbenchRun:
    """One kernel-compile run on an instance."""

    def __init__(self, instance, build_lba: int | None = None):
        self.instance = instance
        # Build tree in the scratch area of the image (20 GiB in).
        self.build_lba = build_lba if build_lba is not None \
            else 20 * 2**21
        self.elapsed: float | None = None

    def run(self):
        """Generator: compile; returns elapsed seconds."""
        env = self.instance.env
        condition = self.instance.condition
        start = env.now

        cpu_seconds = BASE_COMPILE_SECONDS * condition.cpu_slowdown(
            PROFILE_COMPILE.tlb_stall_fraction)
        chunk_sectors = WRITE_CHUNK_BYTES // params.SECTOR_BYTES
        chunks = BUILD_WRITE_BYTES // WRITE_CHUNK_BYTES
        think_per_chunk = cpu_seconds / chunks

        cursor = 0
        for _ in range(chunks):
            yield env.timeout(think_per_chunk)
            yield from self.instance.write(self.build_lba + cursor,
                                           chunk_sectors, tag="kernbench")
            cursor += chunk_sectors

        self.elapsed = env.now - start
        return self.elapsed
