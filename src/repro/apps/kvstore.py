"""NoSQL store models: memcached-like and Cassandra-like engines.

The engines expose *capacity*, not request-level simulation: per sampling
window they compute achievable operations/second and mean latency from
the machine's live platform condition (CPU and TLB costs, per-network-op
overheads) plus **real disk I/O** for the write path — Cassandra's
commit-log/SSTable flushes go through the instance's storage facade, so
the deploy-phase interference in Figure 5c/d emerges from the mediator's
multiplexing, not from a constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import params
from repro.hw.mmu import PROFILE_KV_STORE


@dataclass(frozen=True)
class KvEngineProfile:
    """Calibration of one storage engine (paper 5.2's bare-metal points)."""

    name: str
    #: Bare-metal throughput at the benchmark's client load, ops/second.
    base_tps: float
    #: Bare-metal mean operation latency, seconds.
    base_latency: float
    #: Of the base latency, the share that is server-side CPU service
    #: time (scaled by the platform's CPU slowdown); the rest is network
    #: round trip (scaled by the IB latency factor).
    service_fraction: float
    #: Disk bytes persisted per write operation (commit log + flushes).
    write_bytes_per_op: float
    #: Flush granularity (bytes per disk request).
    flush_bytes: int = 2 * 2**20
    #: Throughput sensitivity to disk-flush backpressure: the fraction of
    #: flush-time/window that converts into lost throughput.
    flush_backpressure: float = 0.35


#: memcached: pure in-memory, read-mostly (paper: 36.4 KT/s, 281 us).
MEMCACHED = KvEngineProfile(
    name="memcached",
    base_tps=36_400.0,
    base_latency=281e-6,
    service_fraction=0.45,
    write_bytes_per_op=0.0,
)

#: Cassandra: write-optimized LSM store (paper: 60.0 KT/s, 2443 us).
CASSANDRA = KvEngineProfile(
    name="cassandra",
    base_tps=60_000.0,
    base_latency=2443e-6,
    service_fraction=0.80,
    # Commit log + memtable flush + compaction write amplification.
    write_bytes_per_op=500.0,
)


class KvStoreServer:
    """A store instance running on a deployed machine."""

    def __init__(self, instance, profile: KvEngineProfile,
                 data_lba: int | None = None):
        self.instance = instance
        self.profile = profile
        # Where the store persists its data files: the image's data
        # partition (24 GiB in; 1 GiB = 2**21 sectors), away from the
        # boot working set.
        if data_lba is None:
            data_lba = 24 * 2**21
        self.data_lba = data_lba
        self._flush_cursor = 0
        # Metrics.
        self.ops_served = 0
        self.flush_ops = 0
        self.flush_seconds_total = 0.0

    # -- the per-window capacity model --------------------------------------------

    def window_capacity(self, window: float, write_fraction: float):
        """Generator: serve one window; returns (ops, mean_latency).

        Performs the window's flush I/O through the real storage path,
        measures how long it took, and folds that back into capacity and
        latency.  The caller is expected to run this to completion; it
        consumes exactly ``window`` seconds unless the disk cannot keep
        up (then longer — throughput collapses accordingly).
        """
        env = self.instance.env
        condition = self.instance.condition
        profile = self.profile
        start = env.now

        cpu_factor = condition.cpu_slowdown(
            PROFILE_KV_STORE.tlb_stall_fraction)
        cpu_factor *= (1.0 + condition.net_op_overhead)
        ops_target = profile.base_tps * window / cpu_factor

        # Real disk work for the write path.
        flush_bytes = ops_target * write_fraction \
            * profile.write_bytes_per_op
        flush_seconds = 0.0
        if flush_bytes > 0:
            flush_seconds = yield from self._do_flushes(flush_bytes)
        self.flush_seconds_total += flush_seconds

        # Backpressure: time the flush path stole from serving.
        busy_fraction = min(1.0, flush_seconds / window)
        throughput_factor = 1.0 / (1.0 + profile.flush_backpressure
                                   * busy_fraction)
        ops = ops_target * throughput_factor

        # Latency: network leg + service leg + sync share of flushes.
        network_leg = profile.base_latency * (1 - profile.service_fraction)
        service_leg = profile.base_latency * profile.service_fraction
        latency = (network_leg * condition.ib_latency_factor
                   + service_leg * cpu_factor)
        if ops > 0 and flush_seconds > 0:
            # A slice of each write op waits on group commit.
            latency += (flush_seconds / ops) * write_fraction

        # Sleep out the remainder of the window.
        elapsed = env.now - start
        if elapsed < window:
            yield env.timeout(window - elapsed)
        self.ops_served += ops
        return ops, latency

    def _do_flushes(self, flush_bytes: float):
        """Write ``flush_bytes`` through the real path; returns seconds."""
        env = self.instance.env
        start = env.now
        remaining = int(flush_bytes)
        flush_request = self.profile.flush_bytes
        data_span = 4 * 2**21  # cycle over a 4-GiB file area (sectors)
        while remaining > 0:
            chunk = min(remaining, flush_request)
            sectors = max(1, chunk // params.SECTOR_BYTES)
            lba = self.data_lba + self._flush_cursor
            self._flush_cursor = (self._flush_cursor + sectors) % data_span
            yield from self.instance.write(lba, sectors, tag="flush")
            self.flush_ops += 1
            remaining -= chunk
        return env.now - start
