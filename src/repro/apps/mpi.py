"""OSU-style MPI collective micro-benchmarks (paper 5.3, Figure 6).

Collectives run as real message exchanges over the simulated InfiniBand
fabric: each round's sends go through the HCAs, so per-node platform
conditions (latency factors, per-message software overheads) shape the
measured collective latency exactly as Figure 6 shows — near-bare-metal
for BMcast, heavily taxed for KVM on latency-bound collectives like
Allgather.
"""

from __future__ import annotations

import math

from repro.hw.mmu import PROFILE_COMPILE
from repro.sim import Environment

COLLECTIVES = ("barrier", "bcast", "gather", "scatter",
               "allgather", "allreduce")


class MpiCluster:
    """A set of instances running one MPI job."""

    def __init__(self, instances):
        if len(instances) < 2:
            raise ValueError("MPI needs at least two nodes")
        self.instances = list(instances)
        self.env: Environment = instances[0].env
        self.hcas = [instance.machine.infiniband
                     for instance in instances]
        if any(hca is None for hca in self.hcas):
            raise ValueError("every node needs an InfiniBand HCA")

    @property
    def size(self) -> int:
        return len(self.instances)

    # -- collective latency measurement ------------------------------------------------

    def measure(self, collective: str, message_bytes: int = 8,
                iterations: int = 20):
        """Generator: mean latency (seconds) of ``collective``."""
        if collective not in COLLECTIVES:
            raise ValueError(f"unknown collective {collective!r}")
        runner = getattr(self, "_run_" + collective)
        env = self.env
        start = env.now
        for _ in range(iterations):
            yield from runner(message_bytes)
        return (env.now - start) / iterations

    # -- per-message cost --------------------------------------------------------------

    def _hop(self, sender_index: int, receiver_index: int, nbytes: int):
        """Generator: one point-to-point message."""
        sender = self.instances[sender_index]
        condition = sender.condition
        hca = self.hcas[sender_index]
        peer = self.hcas[receiver_index].name
        yield from hca.rdma_write(peer, nbytes)
        if condition.ib_sw_overhead > 0:
            yield self.env.timeout(condition.ib_sw_overhead)

    def _parallel_hops(self, pairs, nbytes: int):
        """Generator: all (sender, receiver) hops concurrently; barrier."""
        processes = [
            self.env.process(self._hop(sender, receiver, nbytes),
                             name=f"mpi-hop-{sender}-{receiver}")
            for sender, receiver in pairs
        ]
        yield self.env.all_of(processes)

    def _rounds(self) -> int:
        return max(1, math.ceil(math.log2(self.size)))

    # -- collectives --------------------------------------------------------------------

    def _run_barrier(self, nbytes: int):
        # Dissemination barrier: log2(N) rounds of tiny messages.
        for round_index in range(self._rounds()):
            stride = 1 << round_index
            pairs = [(rank, (rank + stride) % self.size)
                     for rank in range(self.size)]
            yield from self._parallel_hops(pairs, 8)

    def _run_bcast(self, nbytes: int):
        # Binomial tree: log2(N) rounds from rank 0.
        reached = 1
        while reached < self.size:
            pairs = [(rank, rank + reached)
                     for rank in range(min(reached, self.size - reached))]
            yield from self._parallel_hops(pairs, nbytes)
            reached *= 2

    def _run_gather(self, nbytes: int):
        # Everyone sends to root; root's HCA serializes receives, which
        # the sender-side queues capture.
        pairs = [(rank, 0) for rank in range(1, self.size)]
        yield from self._parallel_hops(pairs, nbytes)

    def _run_scatter(self, nbytes: int):
        # Root sends a distinct chunk to everyone (serial on root's HCA).
        for rank in range(1, self.size):
            yield from self._hop(0, rank, nbytes)

    def _run_allgather(self, nbytes: int):
        # Ring allgather: N-1 rounds, each node forwards to its neighbour.
        for _ in range(self.size - 1):
            pairs = [(rank, (rank + 1) % self.size)
                     for rank in range(self.size)]
            yield from self._parallel_hops(pairs, nbytes)

    def _run_allreduce(self, nbytes: int):
        # Recursive doubling: log2(N) exchange rounds plus the local
        # reduction work each round.
        for round_index in range(self._rounds()):
            stride = 1 << round_index
            pairs = [(rank, rank ^ stride) for rank in range(self.size)
                     if rank ^ stride < self.size]
            yield from self._parallel_hops(pairs, nbytes)
            yield from self._reduce_compute(nbytes)

    def _reduce_compute(self, nbytes: int):
        # Local combine cost, scaled by each node's CPU condition; the
        # slowest node gates the round.
        slowest = max(
            instance.condition.cpu_slowdown(
                PROFILE_COMPILE.tlb_stall_fraction)
            for instance in self.instances)
        yield self.env.timeout(max(nbytes, 64) * 0.15e-9 * slowest)
