"""OFED perftest: ib_rdma_bw and ib_rdma_lat (paper 5.5.3, Figs 12/13).

1,000 RDMA operations of 64 KB between two instances, reporting
throughput and latency.  Throughput saturates the link on every platform
(the HCA's command queuing hides virtualization); latency exposes the
platform tax.
"""

from __future__ import annotations


class RdmaPerfTest:
    """ib_rdma_bw / ib_rdma_lat between two instances."""

    OPERATIONS = 1000
    MESSAGE_BYTES = 64 * 1024

    def __init__(self, client, server):
        self.client = client
        self.server = server
        self.hca = client.machine.infiniband
        self.peer = server.machine.infiniband.name
        if self.hca is None or server.machine.infiniband is None:
            raise ValueError("both instances need InfiniBand HCAs")

    def bandwidth(self):
        """Generator: ib_rdma_bw; returns bytes/second.

        Operations are pipelined (the card queues them), so throughput
        is bandwidth-limited, not latency-limited.
        """
        env = self.client.env
        start = env.now
        processes = []
        for _ in range(self.OPERATIONS):
            processes.append(env.process(
                self.hca.rdma_write(self.peer, self.MESSAGE_BYTES),
                name="rdma-bw-op"))
        yield env.all_of(processes)
        elapsed = env.now - start
        return self.OPERATIONS * self.MESSAGE_BYTES / elapsed

    def latency(self, message_bytes: int | None = None,
                operations: int = 200):
        """Generator: ib_rdma_lat; returns mean seconds per op."""
        env = self.client.env
        nbytes = message_bytes if message_bytes is not None \
            else self.MESSAGE_BYTES
        start = env.now
        for _ in range(operations):
            # Raw verbs latency: no MPI-style software path on top, so
            # only the platform's HCA-access tax applies (paper Fig. 13).
            yield from self.hca.rdma_write(self.peer, nbytes)
        return (env.now - start) / operations
