"""SysBench thread and memory micro-benchmarks (paper 5.5.1).

* Threads: repeated acquire-yield-release over 8 mutexes from 1-24
  threads.  Contention cost explodes under lock-holder preemption
  (KVM, Figure 8) and stays modest under BMcast's thin trapping.
* Memory: allocate-and-write blocks of 1-16 KB until 1 MB is written.
  Sensitive to nested-paging walks and cache pollution (Figure 9).
"""

from __future__ import annotations

from repro import params
from repro.hw.mmu import PROFILE_MEMORY_BENCH, PROFILE_THREADS


#: Bare-metal time for one lock iteration (acquire+yield+release).
LOCK_ITERATION_SECONDS = 1.1e-6

#: Iterations per thread in the paper's configuration.
LOCK_ITERATIONS = 1000

#: Number of mutexes contended.
MUTEXES = 8

#: Bare-metal memory write bandwidth for the allocate+write loop.
MEMORY_WRITE_BW = 6.0e9

#: Per-allocation overhead (malloc + page touch).
ALLOC_OVERHEAD_SECONDS = 0.4e-6


class ThreadBenchmark:
    """sysbench threads: returns total elapsed time."""

    def __init__(self, instance, mutexes: int = MUTEXES,
                 iterations: int = LOCK_ITERATIONS):
        self.instance = instance
        self.mutexes = mutexes
        self.iterations = iterations

    def run(self, threads: int):
        """Generator: run with ``threads`` workers; returns seconds."""
        if threads < 1:
            raise ValueError("need at least one thread")
        env = self.instance.env
        condition = self.instance.condition
        cores = self.instance.machine.spec.cores

        cpu_factor = condition.cpu_slowdown(
            PROFILE_THREADS.tlb_stall_fraction)
        lhp_factor = condition.lhp_slowdown(threads, cores)
        # Contention grows with threads per mutex even on bare metal.
        contention = 1.0 + 0.35 * max(0.0, threads / self.mutexes - 1.0) \
            / (cores / self.mutexes)
        per_iteration = LOCK_ITERATION_SECONDS * contention \
            * cpu_factor * lhp_factor
        # Threads run in parallel across cores; elapsed time is the
        # per-thread serial work (they all do `iterations` each).
        rounds = max(1.0, threads / cores)
        elapsed = self.iterations * per_iteration * rounds
        yield env.timeout(elapsed)
        return elapsed


class MemoryBenchmark:
    """sysbench memory: returns achieved write throughput (bytes/s)."""

    TOTAL_BYTES = 2**20  # 1 MB written per run

    def __init__(self, instance):
        self.instance = instance

    def run(self, block_kb: float):
        """Generator: run at ``block_kb`` KB blocks; returns bytes/s."""
        if block_kb <= 0:
            raise ValueError("block size must be positive")
        env = self.instance.env
        condition = self.instance.condition
        block_bytes = block_kb * 1024
        allocations = self.TOTAL_BYTES / block_bytes

        slowdown = condition.memory_slowdown(
            block_kb, PROFILE_MEMORY_BENCH.tlb_stall_fraction)
        write_seconds = self.TOTAL_BYTES / MEMORY_WRITE_BW * slowdown
        alloc_seconds = allocations * ALLOC_OVERHEAD_SECONDS \
            * condition.cpu_slowdown()
        elapsed = write_seconds + alloc_seconds
        yield env.timeout(elapsed)
        return self.TOTAL_BYTES / elapsed


# Re-export for bench scripts that sweep the paper's parameter ranges.
THREAD_SWEEP = tuple(range(1, params.CPU_CORES * 2 + 1))
BLOCK_KB_SWEEP = (1, 2, 4, 8, 16)
