"""YCSB-style closed-loop client (paper 5.2, Figure 5).

Drives a :class:`~repro.apps.kvstore.KvStoreServer` from a second
instance and records throughput and latency over time, producing exactly
the series Figure 5 plots: the deploy-phase plateau, then the step up at
de-virtualization.
"""

from __future__ import annotations

from repro.apps.kvstore import KvStoreServer
from repro.metrics.timeseries import TimeSeries


#: The paper's two workload mixes.
READ_HEAVY = 0.05    # memcached: 95% reads / 5% writes
WRITE_HEAVY = 0.70   # Cassandra: 30% reads / 70% writes


class YcsbBenchmark:
    """One YCSB run against one store."""

    def __init__(self, store: KvStoreServer, write_fraction: float,
                 window: float = 10.0):
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        self.store = store
        self.write_fraction = write_fraction
        self.window = window
        self.throughput = TimeSeries(
            f"{store.profile.name} throughput", unit="ops/s")
        self.latency = TimeSeries(
            f"{store.profile.name} latency", unit="s")

    def run(self, duration: float):
        """Generator: drive the store for ``duration`` seconds."""
        env = self.store.instance.env
        start = env.now
        while True:
            window = min(self.window, duration - (env.now - start))
            if window < 1e-6:
                break
            ops, latency = yield from self.store.window_capacity(
                window, self.write_fraction)
            self.throughput.record(env.now - start, ops / window)
            self.latency.record(env.now - start, latency)
        return self

    # -- analysis ---------------------------------------------------------------

    def mean_throughput(self, start: float = 0.0,
                        end: float = float("inf")) -> float:
        return self.throughput.mean_between(start, end)

    def mean_latency(self, start: float = 0.0,
                     end: float = float("inf")) -> float:
        return self.latency.mean_between(start, end)
