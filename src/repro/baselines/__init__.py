"""Deployment baselines the paper compares against."""

from repro.baselines.image_copy import ImageCopyDeployment
from repro.baselines.kvm import KvmInstance, kvm_condition
from repro.baselines.network_boot import NetworkBootInstance
from repro.baselines.os_streaming import (
    OsNotSupportedError,
    StreamingOsInstance,
)

__all__ = [
    "ImageCopyDeployment",
    "KvmInstance",
    "NetworkBootInstance",
    "OsNotSupportedError",
    "StreamingOsInstance",
    "kvm_condition",
]
