"""Image-copy deployment baseline (paper 2, 5.1).

The OpenStack-Nova-style flow: network-boot a small installer OS, stream
the *entire* image from the server to the local disk, reboot the machine
(paying firmware initialization a second time), then boot the deployed
OS from the local disk.  OS-transparent but slow — the 544-second bar in
Figure 4.
"""

from __future__ import annotations

from repro import params
from repro.aoe.client import AoeInitiator
from repro.guest.osimage import OsImage
from repro.sim import Environment, Store
from repro.storage.blockdev import BlockOp, BlockRequest


#: How much the installer fetches per request (pipelined).
TRANSFER_CHUNK_BYTES = 16 * 2**20

#: Extra restart time beyond firmware re-initialization (POST handoff,
#: bootloader).  Paper: restart measured 145 s with 133 s firmware.
RESTART_EXTRA_SECONDS = 12.0


class ImageCopyDeployment:
    """Deploys one node by full image copy."""

    def __init__(self, env: Environment, node, server: str,
                 image: OsImage,
                 installer_boot_seconds: float =
                 params.IMAGE_COPY_INSTALLER_BOOT_SECONDS):
        self.env = env
        self.node = node
        self.image = image
        self.installer_boot_seconds = installer_boot_seconds
        self.initiator = AoeInitiator(env, node.vmm_nic, server)
        # Metrics.
        self.transfer_seconds: float | None = None
        self.bytes_copied = 0

    def run(self):
        """Generator: installer boot + full copy + reboot.

        Firmware is assumed already initialized (the provisioner owns
        power-on).  After this returns, the OS can boot from local disk.
        """
        env = self.env
        # 1. Network-boot the installer OS.
        yield from self.node.machine.firmware.network_boot()
        yield env.timeout(self.installer_boot_seconds)

        # 2. Stream the whole image to the local disk, pipelined:
        #    fetching chunk N+1 overlaps writing chunk N.
        start = env.now
        chunk_sectors = TRANSFER_CHUNK_BYTES // params.SECTOR_BYTES
        total_sectors = self.image.total_sectors
        fifo = Store(env, capacity=2)

        def fetcher():
            cursor = 0
            while cursor < total_sectors:
                count = min(chunk_sectors, total_sectors - cursor)
                runs = yield from self.initiator.read_blocks(
                    cursor, count, bulk=True)
                yield fifo.put((cursor, count, runs))
                cursor += count
            yield fifo.put(None)

        def writer():
            while True:
                item = yield fifo.get()
                if item is None:
                    return
                cursor, count, runs = item
                request = BlockRequest(BlockOp.WRITE, cursor, count,
                                       origin="installer")
                request.buffer.runs = runs
                yield from self.node.disk.execute(request)
                self.bytes_copied += count * params.SECTOR_BYTES

        self.initiator.start()
        fetch_process = env.process(fetcher(), name="imagecopy-fetch")
        write_process = env.process(writer(), name="imagecopy-write")
        yield env.all_of([fetch_process, write_process])
        self.initiator.stop()
        self.transfer_seconds = env.now - start

        # 3. Reboot into the deployed OS: full firmware pass again.
        yield from self.node.machine.firmware.reboot()
        yield env.timeout(RESTART_EXTRA_SECONDS)

    @property
    def transfer_rate(self) -> float:
        if not self.transfer_seconds:
            return 0.0
        return self.bytes_copied / self.transfer_seconds
