"""KVM (+ELI) baseline (the paper's comparison VMM throughout Section 5).

KVM is modelled as a black-box platform with the overhead mechanisms the
paper attributes to it: nested paging + cache pollution (memory), exit
and emulation costs (CPU), lock-holder preemption (threads), virtio
storage penalties, and the IOMMU/caching latency tax on direct-assigned
InfiniBand.  Its guests' disk I/O really hits the simulated local disk —
through a virtio throughput penalty — or an NFS/iSCSI network backend.

The paper's configuration is reproduced: processor pinning and 2-GB huge
pages (which is why the modelled memory overhead, 35%, is the *tuned*
number, not a worst case), and the ELI patch for exit-less interrupts.
"""

from __future__ import annotations

from repro import params
from repro.aoe.client import AoeInitiator
from repro.guest.osimage import OsImage
from repro.hw.platform import PlatformCondition
from repro.sim import Environment
from repro.storage.blockdev import BlockOp, BlockRequest
from repro.util.intervalmap import IntervalMap


def kvm_condition(backend: str = "local") -> PlatformCondition:
    """The platform condition a KVM guest runs under."""
    if backend == "local":
        read_overhead = params.KVM_STORAGE_READ_OVERHEAD_LOCAL
        write_overhead = params.KVM_STORAGE_WRITE_OVERHEAD_LOCAL
    elif backend in ("nfs", "iscsi"):
        read_overhead = params.KVM_STORAGE_READ_OVERHEAD_NFS
        write_overhead = params.KVM_STORAGE_WRITE_OVERHEAD_NFS
    else:
        raise ValueError(f"unknown KVM storage backend {backend!r}")
    return PlatformCondition(
        label=f"kvm-{backend}",
        nested_paging=True,
        # Huge pages halve the page-walk inflation (tuned setup).
        tlb_miss_multiplier=params.EPT_TLB_MISS_MULTIPLIER / 2.0,
        tlb_walk_multiplier=params.EPT_TLB_WALK_MULTIPLIER,
        cpu_overhead=params.KVM_CPU_OVERHEAD,
        memory_overhead=params.KVM_MEMORY_OVERHEAD,
        lock_holder_preemption=True,
        ib_latency_factor=params.KVM_IB_LATENCY_FACTOR,
        ib_sw_overhead=2.0e-6,
        net_op_overhead=0.035,
        storage_read_overhead=read_overhead,
        storage_write_overhead=write_overhead,
    )


class KvmInstance:
    """A guest on KVM with ELI, virtio storage, IB device assignment."""

    def __init__(self, env: Environment, node, server: str,
                 image: OsImage, backend: str = "nfs"):
        if backend not in ("local", "nfs", "iscsi"):
            raise ValueError(f"unknown backend {backend!r}")
        self.env = env
        self.node = node
        self.image = image
        self.backend = backend
        self.condition = kvm_condition(backend)
        self.booted = False
        self._write_counter = 0
        if backend == "local":
            self.initiator = None
            self.remote_writes = None
        else:
            self.initiator = AoeInitiator(env, node.guest_nic, server)
            self.remote_writes = IntervalMap()

    # -- startup ------------------------------------------------------------------

    def boot(self):
        """Generator: hypervisor boot + guest OS boot."""
        yield from self.node.machine.firmware.network_boot()
        # KVM host kernel + userspace (paper 5.1: 30 s).
        yield self.env.timeout(params.KVM_BOOT_SECONDS)
        self.node.machine.set_condition(self.condition)
        if self.backend == "nfs":
            guest_boot = params.KVM_GUEST_BOOT_NFS_SECONDS
        elif self.backend == "iscsi":
            guest_boot = params.KVM_GUEST_BOOT_ISCSI_SECONDS
        else:
            guest_boot = params.OS_BOOT_SECONDS * 1.1
        if self.initiator is not None:
            self.initiator.start()
        yield self.env.timeout(guest_boot)
        self.booted = True

    @property
    def hypervisor_boot_seconds(self) -> float:
        return params.KVM_BOOT_SECONDS

    # -- storage facade: virtio in front of local disk or network --------------------

    def read(self, lba: int, sector_count: int):
        """Generator: virtio read."""
        if self.initiator is not None:
            runs = yield from self.initiator.read_blocks(lba, sector_count)
            return runs
        request = BlockRequest(BlockOp.READ, lba, sector_count,
                               origin="kvm-guest")
        yield from self._virtio_execute(
            request, self.condition.storage_read_overhead)
        return request.buffer.runs

    def write(self, lba: int, sector_count: int, tag: str = "app"):
        """Generator: virtio write."""
        self._write_counter += 1
        token = ("kvm", tag, self._write_counter)
        if self.initiator is not None:
            yield from self.initiator.write_blocks(
                lba, sector_count, [(lba, lba + sector_count, token)])
            self.remote_writes.set_range(lba, sector_count, True)
            return token
        request = BlockRequest(BlockOp.WRITE, lba, sector_count,
                               origin="kvm-guest")
        request.buffer.fill_constant(token)
        yield from self._virtio_execute(
            request, self.condition.storage_write_overhead)
        return token

    def _virtio_execute(self, request: BlockRequest, overhead: float):
        """Run on the local disk plus the virtio emulation cost."""
        disk = self.node.disk
        base = disk.service_time(request)
        yield from disk.execute(request)
        # Virtio/QEMU adds per-request processing that shaves the
        # measured throughput by the calibrated fraction.
        if overhead > 0:
            yield self.env.timeout(base * overhead / (1.0 - overhead))
