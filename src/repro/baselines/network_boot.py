"""Network-boot (NFS-root style) baseline (paper 2, 5.1).

The OS boots quickly with its root filesystem on the network and never
deploys to the local disk, so *every* disk access pays the network for
the instance's whole lifetime — quick start, continuous overhead, and it
requires an OS configured for network root (not OS-transparent).
"""

from __future__ import annotations

from repro import params
from repro.aoe.client import AoeInitiator
from repro.guest.osimage import OsImage
from repro.sim import Environment
from repro.util.intervalmap import IntervalMap


class NetworkBootInstance:
    """A diskless, network-rooted OS instance."""

    #: Extra OS boot time over bare metal: netroot mounts instead of
    #: local disk (paper 5.1 measured 49 s total boot vs 29 s local).
    NETBOOT_EXTRA_SECONDS = 20.0

    def __init__(self, env: Environment, node, server: str,
                 image: OsImage):
        self.env = env
        self.node = node
        self.image = image
        self.initiator = AoeInitiator(env, node.guest_nic, server)
        #: Server-side writes (the instance's mutations live remotely).
        self.remote_writes = IntervalMap()
        self._write_counter = 0
        self.booted = False

    def boot(self):
        """Generator: network boot — no local deployment at all."""
        yield from self.node.machine.firmware.network_boot()
        self.initiator.start()
        yield self.env.timeout(params.OS_BOOT_SECONDS
                               + self.NETBOOT_EXTRA_SECONDS)
        self.booted = True

    # -- storage facade: everything crosses the network ---------------------------

    def read(self, lba: int, sector_count: int):
        """Generator: read over the network; returns content runs."""
        runs = yield from self.initiator.read_blocks(lba, sector_count)
        overlay = list(self.remote_writes.runs_in(lba, sector_count))
        if any(token is not None for _, _, token in overlay):
            merged = IntervalMap()
            for start, end, token in runs:
                if token is not None:
                    merged.set_range(start, end - start, token)
            for start, end, token in overlay:
                if token is not None:
                    merged.set_range(start, end - start, token)
            runs = list(merged.runs_in(lba, sector_count))
        return runs

    def write(self, lba: int, sector_count: int, tag: str = "app"):
        """Generator: write over the network."""
        self._write_counter += 1
        token = ("netboot", tag, self._write_counter)
        yield from self.initiator.write_blocks(
            lba, sector_count, [(lba, lba + sector_count, token)])
        self.remote_writes.set_range(lba, sector_count, token)
        return token
