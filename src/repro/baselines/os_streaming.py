"""OS streaming deployment baseline [24] (paper 2).

The same idea as BMcast — network boot, then stream the image to the
local disk in the background — but implemented *inside the guest OS* with
a special driver: no VMM, so no exit costs, but it is **not
OS-transparent**: it only works for OSs the provider has ported the
streaming driver to (the crucial limitation the paper's design removes).
"""

from __future__ import annotations

from repro import params
from repro.aoe.client import AoeInitiator
from repro.guest.osimage import OsImage
from repro.sim import Environment, Interrupt
from repro.storage.blockdev import BlockOp, BlockRequest
from repro.util.intervalmap import IntervalMap
from repro.vmm.bitmap import BlockBitmap
from repro.vmm.moderation import ModerationPolicy


class StreamingOsInstance:
    """A guest with an in-kernel streaming-deployment driver.

    Tracks the supported-OS list explicitly: deploying any other OS
    raises, which is the transparency failure mode image copy and BMcast
    do not have.
    """

    SUPPORTED_OS = ("ubuntu-14.04", "centos-6.5")

    def __init__(self, env: Environment, node, server: str,
                 image: OsImage,
                 policy: ModerationPolicy | None = None):
        if image.name not in self.SUPPORTED_OS:
            raise OsNotSupportedError(
                f"streaming driver has no port for {image.name!r}; "
                f"supported: {', '.join(self.SUPPORTED_OS)}")
        self.env = env
        self.node = node
        self.image = image
        self.policy = policy or ModerationPolicy()
        self.initiator = AoeInitiator(env, node.guest_nic, server)
        self.bitmap = BlockBitmap(image.total_sectors)
        self.written = IntervalMap()
        self._write_counter = 0
        self._copier = None
        self.done = env.event()
        self.booted = False

    # -- startup -----------------------------------------------------------------

    def boot(self):
        """Generator: network boot with the streaming driver active."""
        yield from self.node.machine.firmware.network_boot()
        self.initiator.start()
        # The streaming driver adds a little boot overhead over local
        # boot, but far less than full netroot (it caches to disk).
        yield self.env.timeout(params.OS_BOOT_SECONDS + 6.0)
        self.booted = True
        self._copier = self.env.process(self._background_copy(),
                                        name="os-streaming-copier")

    def _background_copy(self):
        bitmap = self.bitmap
        try:
            cursor = 0
            while not bitmap.complete:
                block = bitmap.first_empty_from(cursor)
                if block is None:
                    yield self.env.timeout(5e-3)
                    continue
                if not bitmap.try_claim(block):
                    cursor = block + 1
                    continue
                start, count = bitmap.block_range(block)
                runs = yield from self.initiator.read_blocks(start, count,
                                                             bulk=True)
                delay = self.policy.next_delay_simple()
                if delay:
                    yield self.env.timeout(delay)
                for run_start, run_count in bitmap.writable_runs(block):
                    request = BlockRequest(BlockOp.WRITE, run_start,
                                           run_count, origin="streaming")
                    request.buffer.runs = _clip(runs, run_start, run_count)
                    yield from self.node.disk.execute(request)
                try:
                    bitmap.commit_fill(block)
                except ValueError:
                    pass
                cursor = block + 1
        except Interrupt:
            return
        if not self.done.triggered:
            self.done.succeed(self.env.now)

    # -- storage facade (the in-kernel driver's read/write path) ----------------------

    def read(self, lba: int, sector_count: int):
        """Generator: local if present, otherwise fetch + cache."""
        if self.bitmap.sectors_local(lba, sector_count):
            request = BlockRequest(BlockOp.READ, lba, sector_count)
            yield from self.node.disk.execute(request)
            return request.buffer.runs
        runs = yield from self.initiator.read_blocks(lba, sector_count)
        self.bitmap.record_guest_write(lba, sector_count)
        request = BlockRequest(BlockOp.WRITE, lba, sector_count,
                               origin="streaming")
        request.buffer.runs = runs
        yield from self.node.disk.execute(request)
        return runs

    def write(self, lba: int, sector_count: int, tag: str = "app"):
        """Generator: local write, tracked by the driver's bitmap."""
        self._write_counter += 1
        token = ("streaming", tag, self._write_counter)
        request = BlockRequest(BlockOp.WRITE, lba, sector_count)
        request.buffer.fill_constant(token)
        yield from self.node.disk.execute(request)
        self.bitmap.record_guest_write(lba, sector_count)
        self.written.set_range(lba, sector_count, True)
        return token


class OsNotSupportedError(Exception):
    """The streaming driver is not ported to the requested OS."""


def _clip(runs: list, start: int, count: int) -> list:
    end = start + count
    return [
        (max(run_start, start), min(run_end, end), token)
        for run_start, run_end, token in runs
        if run_start < end and run_end > start
    ]
