"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``deploy``    — deploy one instance by any method; print the timeline
  and (for BMcast) the deployment summary.
* ``compare``   — deploy by every method and print a Figure-4-style table.
* ``scaleout``  — deploy a fleet in waves over the distribution fabric
  and print the per-wave table (replicas, p2p, selection policy).
* ``ctl``       — run the elastic control plane: a demand curve drives
  an autoscaler that deploys and reclaims bare-metal nodes
  (see docs/control_plane.md).
* ``sweep``     — parallel parameter sweeps (``repro.perf``): the
  moderation write-interval sweep (Figure 14 shape) or an autoscaler
  policy x demand x node-count grid, fanned across ``--jobs`` worker
  processes with byte-identical merged output.
* ``metrics``   — deploy once with telemetry on and print the summary.
* ``trace``     — deploy with forensics on and write a Chrome-trace
  JSON (open in ``chrome://tracing`` / Perfetto).
* ``profile``   — deploy with forensics on and print the sim-time
  profile and critical-path latency budget.
* ``lint``      — run simlint (repro.analysis) over the source tree.
* ``check``     — run simcheck, the whole-program static analysis
  (call-graph determinism taint, process discipline, race candidates,
  FSM spec checking, import layering).
* ``info``      — the calibrated testbed constants.

``deploy`` and ``scaleout`` accept ``--sanitize`` to run with every
runtime sanitizer attached (exit 1 on any violation), and ``deploy``
accepts ``--replay-check`` to run the scenario twice and compare the
event-stream digests.

``deploy`` and ``compare`` accept ``--metrics-out FILE`` to record the
run with the :mod:`repro.obs` telemetry subsystem and export it — JSON
by default, Prometheus text exposition when FILE ends in ``.prom``.
``deploy``, ``scaleout`` and ``compare`` accept ``--trace-out FILE``
to additionally arm the forensics layer (causal tracer + profiler +
provenance) and write the run as Chrome-trace JSON.
"""

from __future__ import annotations

import argparse

from repro import params
from repro.cloud.provisioner import METHODS, Provisioner
from repro.cloud.scenario import build_testbed
from repro.ctl.demand import DEMANDS as CTL_DEMANDS
from repro.ctl.placement import PLACEMENTS as CTL_PLACEMENTS
from repro.ctl.policy import POLICIES as CTL_POLICIES
from repro.dist.selector import POLICIES
from repro.guest.osimage import OsImage
from repro.metrics.report import format_table
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.sim import Environment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BMcast reproduction: deploy bare-metal instances "
        "in a simulated cloud (ASPLOS 2015).")
    sub = parser.add_subparsers(dest="command", required=True)

    deploy = sub.add_parser("deploy", help="deploy one instance")
    deploy.add_argument("--method", choices=METHODS, default="bmcast")
    deploy.add_argument("--image-gb", type=float, default=4.0,
                        help="OS image size (default 4; paper used 32)")
    deploy.add_argument("--controller",
                        choices=("ahci", "ide", "megaraid"),
                        default="ahci")
    deploy.add_argument("--cold", action="store_true",
                        help="include the first firmware initialization")
    deploy.add_argument("--prefetch", action="store_true",
                        help="prefetch the boot working set (BMcast)")
    deploy.add_argument("--wait", action="store_true",
                        help="wait for deployment to finish (BMcast)")
    deploy.add_argument("--trace", action="store_true",
                        help="record and print the VMM's event trace")
    deploy.add_argument("--metrics-out", metavar="FILE",
                        help="export telemetry (JSON, or Prometheus "
                        "text if FILE ends in .prom)")
    deploy.add_argument("--trace-out", metavar="FILE",
                        help="arm the forensics layer and write the "
                        "run as Chrome-trace JSON")
    deploy.add_argument("--replicas", type=int, default=1,
                        help="origin AoE replica count (default 1)")
    deploy.add_argument("--p2p", action="store_true",
                        help="enable peer-to-peer chunk serving")
    deploy.add_argument("--select-policy", choices=POLICIES,
                        default="round-robin",
                        help="replica selection policy")
    deploy.add_argument("--sanitize", action="store_true",
                        help="attach the runtime sanitizers (BMcast); "
                        "exit 1 on any violation")
    deploy.add_argument("--replay-check", action="store_true",
                        help="run the scenario twice and compare the "
                        "event-stream digests; exit 1 on divergence")
    deploy.add_argument("--fluid", action="store_true",
                        help="opt this deployment into the fluid-flow "
                        "fast path (BMcast; auto-demotes to packet "
                        "mode under moderation/loss/p2p/sanitizers)")
    deploy.add_argument("--full-speed", action="store_true",
                        help="deploy with the unmoderated FULL_SPEED "
                        "policy (required for --fluid to engage)")

    scaleout = sub.add_parser(
        "scaleout", help="deploy a fleet in waves over the fabric")
    scaleout.add_argument("--nodes", type=int, default=8,
                          help="fleet size (default 8)")
    scaleout.add_argument("--wave-size", type=int, default=4,
                          help="instances launched per wave (default 4)")
    scaleout.add_argument("--replicas", type=int, default=2,
                          help="origin AoE replica count (default 2)")
    scaleout.add_argument("--p2p", action="store_true",
                          help="enable peer-to-peer chunk serving")
    scaleout.add_argument("--select-policy", choices=POLICIES,
                          default="least-outstanding")
    scaleout.add_argument("--seed-fill", type=float, default=0.25,
                          help="previous-wave mean bitmap fill required "
                          "before the next wave launches (default 0.25)")
    scaleout.add_argument("--image-gb", type=float, default=0.5,
                          help="OS image size (default 0.5 for speed)")
    scaleout.add_argument("--wait", action="store_true",
                          help="run until every deployment finishes")
    scaleout.add_argument("--sanitize", action="store_true",
                          help="attach the runtime sanitizers to every "
                          "deployment; exit 1 on any violation")
    scaleout.add_argument("--trace-out", metavar="FILE",
                          help="arm the forensics layer and write the "
                          "run as Chrome-trace JSON")
    scaleout.add_argument("--fluid", action="store_true",
                          help="opt every deployment into the fluid-"
                          "flow fast path (auto-demotes per node when "
                          "fidelity-bearing dynamics engage)")
    scaleout.add_argument("--full-speed", action="store_true",
                          help="deploy waves with the unmoderated "
                          "FULL_SPEED policy (required for --fluid "
                          "to engage)")

    ctl = sub.add_parser(
        "ctl", help="run the elastic control plane over a demand curve")
    ctl.add_argument("--nodes", type=int, default=8,
                     help="fleet size the autoscaler manages (default 8)")
    ctl.add_argument("--policy", choices=sorted(CTL_POLICIES),
                     default="reactive", help="autoscaler policy")
    ctl.add_argument("--placement", choices=sorted(CTL_PLACEMENTS),
                     default="cache-aware", help="free-node placement")
    ctl.add_argument("--demand", choices=sorted(CTL_DEMANDS),
                     default="flash-crowd", help="demand model")
    ctl.add_argument("--demand-trace", metavar="FILE",
                     help="replay a recorded request trace instead of "
                     "a synthetic demand model")
    ctl.add_argument("--dump-demand", metavar="FILE",
                     help="also write the admitted requests as a "
                     "replayable trace file")
    ctl.add_argument("--duration", type=float, default=3600.0,
                     help="control-loop run time in sim seconds "
                     "(default 3600)")
    ctl.add_argument("--tick", type=float, default=15.0,
                     help="control tick in sim seconds (default 15)")
    ctl.add_argument("--seed", type=int, default=20150314,
                     help="demand model RNG seed")
    ctl.add_argument("--image-gb", type=float, default=0.25,
                     help="OS image size (default 0.25 for speed)")
    ctl.add_argument("--replicas", type=int, default=1,
                     help="origin AoE replica count (default 1)")
    ctl.add_argument("--p2p", action="store_true",
                     help="enable peer-to-peer chunk serving")
    ctl.add_argument("--vmxoff-mode",
                     choices=("full", "module-assisted", "resident"),
                     default="resident",
                     help="de-virtualization mode; resident keeps the "
                     "dormant VMM, making reclaim a fast re-arm")
    ctl.add_argument("--no-preserve", action="store_true",
                     help="scrub on reclaim instead of preserving "
                     "pristine blocks (disables the warm pool)")
    ctl.add_argument("--metrics-out", metavar="FILE",
                     help="export telemetry (JSON, or Prometheus "
                     "text if FILE ends in .prom)")
    ctl.add_argument("--trace-out", metavar="FILE",
                     help="arm the forensics layer and write the run "
                     "as Chrome-trace JSON")
    ctl.add_argument("--sanitize", action="store_true",
                     help="attach the runtime sanitizers to every "
                     "deployment; exit 1 on any violation")
    ctl.add_argument("--replay-check", action="store_true",
                     help="run the scenario twice and compare the "
                     "event-stream digests; exit 1 on divergence")
    ctl.add_argument("--fluid", action="store_true",
                     help="opt autoscaler deployments into the fluid-"
                     "flow fast path (auto-demotes per node when "
                     "fidelity-bearing dynamics engage)")

    compare = sub.add_parser("compare", help="compare every method")
    compare.add_argument("--image-gb", type=float, default=4.0)
    compare.add_argument("--metrics-out", metavar="FILE",
                         help="export telemetry for all runs combined")
    compare.add_argument("--trace-out", metavar="FILE",
                         help="arm the forensics layer and write all "
                         "runs into one Chrome-trace JSON")

    sweep = sub.add_parser(
        "sweep", help="parallel parameter sweep (repro.perf)")
    sweep.add_argument("--kind", choices=("moderation", "ctl"),
                       default="moderation",
                       help="moderation: write-interval sweep (Figure "
                       "14 shape); ctl: policy x demand x node-count "
                       "autoscaler grid")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1; the output "
                       "is byte-identical for any value)")
    sweep.add_argument("--seed", type=int, default=20150314,
                       help="parent seed; each grid point derives its "
                       "own from seed + parameter key")
    sweep.add_argument("--out", metavar="FILE",
                       help="write the merged sweep document as JSON")
    sweep.add_argument("--image-gb", type=float, default=None,
                       help="OS image size (default 2 for moderation, "
                       "0.0625 for ctl)")
    sweep.add_argument("--intervals", default="1.0,0.1,0.01,0.001,0.0",
                       help="moderation: comma list of VMM write "
                       "intervals in seconds")
    sweep.add_argument("--policies", default="reactive,headroom",
                       help="ctl: comma list of autoscaler policies")
    sweep.add_argument("--demands", default="flash-crowd",
                       help="ctl: comma list of demand models")
    sweep.add_argument("--node-counts", default="6",
                       help="ctl: comma list of fleet sizes")
    sweep.add_argument("--duration", type=float, default=900.0,
                       help="ctl: control-loop run time in sim seconds")

    metrics = sub.add_parser(
        "metrics", help="deploy with telemetry on and print the summary")
    metrics.add_argument("--method", choices=METHODS, default="bmcast")
    metrics.add_argument("--image-gb", type=float, default=1.0)
    metrics.add_argument("--controller",
                         choices=("ahci", "ide", "megaraid"),
                         default="ahci")
    metrics.add_argument("--wait", action="store_true",
                         help="wait for deployment to finish (BMcast)")
    metrics.add_argument("--metrics-out", metavar="FILE",
                         help="also export the telemetry to FILE")

    trace = sub.add_parser(
        "trace", help="deploy with forensics on; write a Chrome trace")
    trace.add_argument("--method", choices=METHODS, default="bmcast")
    trace.add_argument("--image-gb", type=float, default=1.0)
    trace.add_argument("--controller",
                       choices=("ahci", "ide", "megaraid"),
                       default="ahci")
    trace.add_argument("--wait", action="store_true", default=True,
                       help="wait for deployment to finish (default)")
    trace.add_argument("--out", metavar="FILE", default="trace.json",
                       help="Chrome-trace output path "
                       "(default trace.json)")
    trace.add_argument("--folded-out", metavar="FILE",
                       help="also write flamegraph folded stacks")

    profile = sub.add_parser(
        "profile", help="deploy with forensics on; print the sim-time "
        "profile and critical-path latency budget")
    profile.add_argument("--method", choices=METHODS, default="bmcast")
    profile.add_argument("--image-gb", type=float, default=1.0)
    profile.add_argument("--controller",
                         choices=("ahci", "ide", "megaraid"),
                         default="ahci")
    profile.add_argument("--anchor", default=None,
                         help="critical-path anchor mark (default: "
                         "devirtualize, then deploy-complete)")
    profile.add_argument("--out", metavar="FILE",
                         help="also write the profile report as JSON")

    lint = sub.add_parser(
        "lint", help="run simlint over the source tree")
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories (default: src/repro)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")

    check = sub.add_parser(
        "check", help="run simcheck whole-program analysis")
    check.add_argument("paths", nargs="*", default=["src/repro"],
                       help="files or directories (default: src/repro)")
    check.add_argument("--sarif", metavar="FILE",
                       help="also write findings as SARIF 2.1.0")
    check.add_argument("--baseline", metavar="FILE",
                       help="baseline file (default: "
                       "simcheck.baseline.json)")
    check.add_argument("--no-baseline", action="store_true",
                       help="ignore the baseline file")
    check.add_argument("--write-baseline", action="store_true",
                       help="regenerate the baseline from this run")
    check.add_argument("--no-cache", action="store_true",
                       help="parse everything fresh, write no cache")
    check.add_argument("--strict", action="store_true",
                       help="exit non-zero on warnings too")
    check.add_argument("--list-checks", action="store_true",
                       help="print the CHECK code catalog and exit")

    sub.add_parser("info", help="print testbed calibration")
    return parser


def _image(image_gb: float) -> OsImage:
    size = int(image_gb * 2**30)
    boot_bytes = min(params.OS_BOOT_READ_BYTES, size // 4)
    return OsImage(size_bytes=size, boot_read_bytes=boot_bytes)


def _segments(timeline) -> str:
    return "; ".join(f"{label} {seconds:.0f}s"
                     for label, seconds in timeline.segments)


def _make_telemetry(args):
    """(env, telemetry): a Telemetry when --metrics-out or --trace-out
    was given (the latter arms the forensics layer too), otherwise the
    zero-cost null object — the timeline is identical either way."""
    env = Environment()
    if getattr(args, "trace_out", None):
        return env, Telemetry(env, forensics=True)
    if getattr(args, "metrics_out", None):
        return env, Telemetry(env)
    return env, NULL_TELEMETRY


def _write_trace(telemetry, path, pid: int = 1,
                 process_name: str = "repro") -> None:
    from repro.obs import write_chrome_trace
    document = write_chrome_trace(telemetry, path, pid=pid,
                                  process_name=process_name)
    print(f"chrome trace written to {path} "
          f"({len(document['traceEvents'])} events; open in "
          f"chrome://tracing or https://ui.perfetto.dev)")


def cmd_deploy(args, print_summary: bool = False) -> int:
    env, telemetry = _make_telemetry(args)
    testbed = build_testbed(disk_controller=args.controller,
                            image=_image(args.image_gb),
                            server_count=getattr(args, "replicas", 1),
                            p2p=getattr(args, "p2p", False),
                            select_policy=getattr(args, "select_policy",
                                                  "round-robin"),
                            env=env, telemetry=telemetry)
    provisioner = Provisioner(testbed)
    options = {}
    if getattr(args, "prefetch", False) and args.method == "bmcast":
        options["prefetch_lbas"] = testbed.image.boot_lbas()
    if getattr(args, "trace", False) and args.method == "bmcast":
        options["trace"] = True
    suite = None
    if getattr(args, "sanitize", False):
        if args.method != "bmcast":
            print("--sanitize requires --method bmcast")
            return 2
        from repro.analysis import SanitizerSuite
        suite = SanitizerSuite(env)
        options["sanitizers"] = suite
    if getattr(args, "fluid", False):
        if args.method != "bmcast":
            print("--fluid requires --method bmcast")
            return 2
        options["fluid"] = True
    if getattr(args, "full_speed", False):
        from repro.vmm.moderation import FULL_SPEED
        options["policy"] = FULL_SPEED

    instance = env.run(until=env.process(provisioner.deploy(
        args.method, skip_firmware=not getattr(args, "cold", False),
        **options)))
    print(f"{args.method}: instance ready after "
          f"{instance.timeline.total:.1f}s "
          f"({_segments(instance.timeline)})")
    if getattr(args, "fluid", False):
        print(f"fluid mode: {instance.platform.fluid.describe()}")

    platform = instance.platform
    if args.wait and platform is not None and hasattr(platform, "copier"):
        env.run(until=platform.copier.done)
        env.run(until=env.now + 10.0)
        print(f"deployment finished at t={env.now:.1f}s; "
              f"phase={platform.phase}")
        for key, value in platform.summary().items():
            print(f"  {key}: {value}")
    if getattr(args, "trace", False) and platform is not None \
            and hasattr(platform, "tracer"):
        print("\nlast trace events:")
        print(platform.tracer.dump(limit=20))
    if print_summary and telemetry.enabled:
        print()
        print(telemetry.summary())
    if getattr(args, "metrics_out", None):
        telemetry.write(args.metrics_out)
        print(f"telemetry written to {args.metrics_out}")
    if getattr(args, "trace_out", None):
        _write_trace(telemetry, args.trace_out,
                     process_name=f"deploy:{args.method}")
    status = 0
    if suite is not None:
        suite.finalize()
        print(suite.describe())
        if suite.violations:
            status = 1
    if getattr(args, "replay_check", False):
        status = max(status, _replay_check(args))
    return status


def _replay_check(args) -> int:
    """Run the deploy scenario twice and compare event streams."""
    from repro.analysis import check_replay, deployment_scenario
    scenario = deployment_scenario(
        lambda: _image(args.image_gb),
        server_count=getattr(args, "replicas", 1),
        p2p=getattr(args, "p2p", False),
        select_policy=getattr(args, "select_policy", "round-robin"),
        wait=getattr(args, "wait", False))
    report = check_replay(scenario, runs=2)
    print(report.describe())
    return 1 if report.divergent else 0


def cmd_scaleout(args) -> int:
    from repro.cloud import Cluster, WaveScheduler
    env, telemetry = _make_telemetry(args)
    testbed = build_testbed(node_count=args.nodes,
                            server_count=args.replicas,
                            p2p=args.p2p,
                            select_policy=args.select_policy,
                            image=_image(args.image_gb),
                            env=env, telemetry=telemetry)
    cluster = Cluster(testbed)
    scheduler = WaveScheduler(cluster, wave_size=args.wave_size,
                              seed_fill_fraction=args.seed_fill)
    options = {}
    suite = None
    if getattr(args, "sanitize", False):
        from repro.analysis import SanitizerSuite
        suite = SanitizerSuite(env)
        options["sanitizers"] = suite
    if getattr(args, "fluid", False):
        options["fluid"] = True
    if getattr(args, "full_speed", False):
        from repro.vmm.moderation import FULL_SPEED
        options["policy"] = FULL_SPEED
    env.run(until=env.process(scheduler.run("bmcast", **options)))
    if args.wait:
        env.run(until=env.process(
            cluster.wait_deployment_complete()))
    rows = [
        [w.index, " ".join(str(i) for i in w.node_indexes),
         round(w.ready_seconds, 1),
         round(w.ready_seconds / len(w.node_indexes), 1),
         w.peer_hits, w.origin_fetches,
         f"{w.live_peer_hit_ratio():.0%}"]
        for w in scheduler.waves
    ]
    fabric = testbed.fabric.describe()
    print(format_table(
        ["wave", "nodes", "ready (s)", "s/instance",
         "peer hits", "origin fetches", "peer hit ratio"],
        rows,
        title=f"Scale-out: {args.nodes} nodes, "
        f"{args.replicas} replica(s), "
        f"p2p {'on' if args.p2p else 'off'}, "
        f"policy {args.select_policy}"))
    print(f"fleet ready in {scheduler.summary()['total_seconds']:.1f}s; "
          f"peers registered: {fabric['peers_registered']}")
    if getattr(args, "fluid", False):
        states: dict = {}
        for instance in cluster.instances:
            state = instance.platform.fluid.describe()
            states[state] = states.get(state, 0) + 1
        print("fluid mode: " + ", ".join(
            f"{count}x {state}"
            for state, count in sorted(states.items())))
    if getattr(args, "trace_out", None):
        _write_trace(telemetry, args.trace_out, process_name="scaleout")
    if suite is not None:
        suite.finalize()
        print(suite.describe())
        if suite.violations:
            return 1
    return 0


def cmd_ctl(args) -> int:
    """Run the elastic control plane and print the run report."""
    from repro.ctl import (ElasticController, NodePool, TraceDemand,
                           dump_trace, load_trace)
    env, telemetry = _make_telemetry(args)
    testbed = build_testbed(node_count=args.nodes,
                            server_count=args.replicas,
                            p2p=args.p2p,
                            image=_image(args.image_gb),
                            env=env, telemetry=telemetry)
    deploy_options = {}
    suite = None
    if args.sanitize:
        from repro.analysis import SanitizerSuite
        suite = SanitizerSuite(env)
        deploy_options["sanitizers"] = suite
    if getattr(args, "fluid", False):
        deploy_options["fluid"] = True
    pool = NodePool(testbed, vmxoff_mode=args.vmxoff_mode,
                    deploy_options=deploy_options, telemetry=telemetry)
    if args.demand_trace:
        demand = TraceDemand(load_trace(args.demand_trace),
                             seed=args.seed)
    else:
        demand = CTL_DEMANDS[args.demand](seed=args.seed)
    controller = ElasticController(
        pool, demand, CTL_POLICIES[args.policy](),
        CTL_PLACEMENTS[args.placement](), tick=args.tick,
        preserve_on_reclaim=not args.no_preserve, telemetry=telemetry)
    env.run(until=env.process(controller.run(args.duration),
                              name="ctl-loop"))
    report = controller.report()
    fleet = report.pop("fleet")
    print(format_table(
        ["metric", "value"],
        [[key, value] for key, value in report.items()],
        title=f"Elastic run: {args.nodes} nodes, "
        f"policy {args.policy}, placement {args.placement}, "
        f"demand {args.demand_trace or args.demand}"))
    print("fleet at end: " + ", ".join(
        f"{key}={value}" for key, value in fleet.items()))
    if controller.decisions:
        print("scale decisions:")
        for when, target, provisioned, reason in controller.decisions:
            print(f"  t={when:7.1f}s  {provisioned} -> {target}  "
                  f"({reason})")
    if args.dump_demand:
        dump_trace(controller.requests, args.dump_demand)
        print(f"demand trace written to {args.dump_demand}")
    if args.metrics_out:
        telemetry.write(args.metrics_out)
        print(f"telemetry written to {args.metrics_out}")
    if args.trace_out:
        _write_trace(telemetry, args.trace_out, process_name="ctl")
    status = 0
    if suite is not None:
        suite.finalize()
        print(suite.describe())
        if suite.violations:
            status = 1
    if args.replay_check:
        from repro.analysis import check_replay
        from repro.ctl import elasticity_scenario
        scenario = elasticity_scenario(
            lambda: _image(args.image_gb), node_count=args.nodes,
            server_count=args.replicas, p2p=args.p2p,
            policy_name=args.policy, placement_name=args.placement,
            demand_name=args.demand, demand_seed=args.seed,
            duration=args.duration, tick=args.tick,
            vmxoff_mode=args.vmxoff_mode)
        replay = check_replay(scenario, runs=2)
        print(replay.describe())
        status = max(status, 1 if replay.divergent else 0)
    return status


def cmd_lint(args) -> int:
    from repro.analysis.lint import main as lint_main
    argv = list(args.paths or ["src/repro"])
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def cmd_check(args) -> int:
    from repro.analysis.simcheck.engine import main as check_main
    argv = list(args.paths or ["src/repro"])
    if args.sarif:
        argv += ["--sarif", args.sarif]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    for flag in ("no_baseline", "write_baseline", "no_cache",
                 "strict", "list_checks"):
        if getattr(args, flag):
            argv.append("--" + flag.replace("_", "-"))
    return check_main(argv)


def cmd_compare(args) -> int:
    rows = []
    exports = []
    for method in METHODS:
        env, telemetry = _make_telemetry(args)
        testbed = build_testbed(image=_image(args.image_gb),
                                env=env, telemetry=telemetry)
        provisioner = Provisioner(testbed)
        try:
            instance = env.run(until=env.process(
                provisioner.deploy(method, skip_firmware=True)))
        except Exception as error:  # e.g. unsupported OS for streaming
            rows.append([method, "-", str(error)])
            continue
        rows.append([method, round(instance.timeline.total, 1),
                     _segments(instance.timeline)])
        if telemetry.enabled:
            exports.append((method, telemetry))
    print(format_table(["method", "ready (s)", "time spent on"], rows,
                       title=f"Startup comparison "
                       f"({args.image_gb:g}-GB image, warm firmware)"))
    if getattr(args, "metrics_out", None) and exports:
        _write_compare_metrics(args.metrics_out, exports)
        print(f"telemetry written to {args.metrics_out}")
    if getattr(args, "trace_out", None) and exports:
        _write_compare_trace(args.trace_out, exports)
    return 0


def _write_compare_trace(path: str, exports) -> None:
    """All compare runs in one Chrome trace, one pid per method."""
    import json

    from repro.obs import chrome_trace_document
    merged = {"traceEvents": [], "displayTimeUnit": "ms"}
    for index, (method, telemetry) in enumerate(exports):
        document = chrome_trace_document(telemetry, pid=index + 1,
                                         process_name=method)
        merged["traceEvents"].extend(document["traceEvents"])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, separators=(",", ":"))
        handle.write("\n")
    print(f"chrome trace written to {path} "
          f"({len(merged['traceEvents'])} events; open in "
          f"chrome://tracing or https://ui.perfetto.dev)")


def _write_compare_metrics(path: str, exports) -> None:
    """One file for all compare runs, keyed by method name."""
    if path.endswith(".prom"):
        text = "".join(
            f"# method: {method}\n{telemetry.to_prometheus()}"
            for method, telemetry in exports)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return
    import json
    payload = {method: telemetry.to_dict()
               for method, telemetry in exports}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def cmd_metrics(args) -> int:
    """Deploy once with telemetry always on and print the summary."""
    env = Environment()
    telemetry = Telemetry(env)
    testbed = build_testbed(disk_controller=args.controller,
                            image=_image(args.image_gb),
                            env=env, telemetry=telemetry)
    provisioner = Provisioner(testbed)
    instance = env.run(until=env.process(provisioner.deploy(
        args.method, skip_firmware=True)))
    platform = instance.platform
    if args.wait and platform is not None and hasattr(platform, "copier"):
        env.run(until=platform.copier.done)
        env.run(until=env.now + 10.0)
    print(telemetry.summary())
    if args.metrics_out:
        telemetry.write(args.metrics_out)
        print(f"telemetry written to {args.metrics_out}")
    return 0


def _forensic_deploy(args, wait: bool = True):
    """Deploy one instance with the forensics layer armed.

    Returns ``(env, telemetry)`` after the deployment (and, for
    methods with a background copier, the copy plus a settle window)
    has run to completion.
    """
    env = Environment()
    telemetry = Telemetry(env, forensics=True)
    testbed = build_testbed(disk_controller=args.controller,
                            image=_image(args.image_gb),
                            env=env, telemetry=telemetry)
    provisioner = Provisioner(testbed)
    instance = env.run(until=env.process(provisioner.deploy(
        args.method, skip_firmware=True)))
    platform = instance.platform
    if wait and platform is not None and hasattr(platform, "copier"):
        env.run(until=platform.copier.done)
        env.run(until=env.now + 10.0)
    print(f"{args.method}: instance ready after "
          f"{instance.timeline.total:.1f}s; run ended at "
          f"t={env.now:.1f}s")
    return env, telemetry


def cmd_trace(args) -> int:
    env, telemetry = _forensic_deploy(args, wait=args.wait)
    _write_trace(telemetry, args.out,
                 process_name=f"deploy:{args.method}")
    if args.folded_out:
        from repro.obs import folded_stacks
        text = folded_stacks(telemetry)
        with open(args.folded_out, "w", encoding="utf-8") as handle:
            handle.write(text)
        stacks = len(text.splitlines())
        print(f"folded stacks written to {args.folded_out} "
              f"({stacks} stacks)")
    return 0


def cmd_profile(args) -> int:
    env, telemetry = _forensic_deploy(args, wait=True)
    from repro.obs import format_profile, profile_report
    report = profile_report(telemetry, anchor=args.anchor)
    print()
    print(format_profile(report))
    if args.out:
        import json
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"profile report written to {args.out}")
    return 0


def cmd_sweep(args) -> int:
    """Fan a parameter grid across a worker pool (repro.perf)."""
    from repro.perf import SweepSpec, run_sweep, sweep_to_json

    if args.kind == "moderation":
        image_gb = args.image_gb if args.image_gb is not None else 2.0
        spec = SweepSpec(
            kind="moderation",
            axes={"write_interval":
                  tuple(float(value)
                        for value in args.intervals.split(","))},
            parent_seed=args.seed,
            fixed={"image_mb": int(image_gb * 1024), "fio_mb": 128})
    else:
        image_gb = args.image_gb if args.image_gb is not None else 0.0625
        spec = SweepSpec(
            kind="ctl",
            axes={"policy": tuple(args.policies.split(",")),
                  "demand": tuple(args.demands.split(",")),
                  "nodes": tuple(int(value) for value
                                 in args.node_counts.split(","))},
            parent_seed=args.seed,
            fixed={"image_mb": int(image_gb * 1024),
                   "duration": args.duration})
    result = run_sweep(spec, jobs=args.jobs)

    if args.kind == "moderation":
        rows = [
            ["full-speed" if run["params"]["write_interval"] == 0
             else f"{run['params']['write_interval']:g}s",
             round(run["figures"]["guest_read_mbps"], 1),
             round(run["figures"]["vmm_write_mbps"], 1)]
            for run in result["runs"]
        ]
        print(format_table(
            ["VMM write interval", "guest read MB/s", "VMM write MB/s"],
            rows, title="Moderation sweep (Figure 14 shape)"))
    else:
        rows = [
            [run["params"]["policy"], run["params"]["demand"],
             run["params"]["nodes"], run["figures"]["requests"],
             run["figures"]["served"],
             f"{run['figures']['slo_attainment']:.0%}",
             run["figures"]["ttr_p95_seconds"],
             round(run["figures"]["wasted_node_seconds"], 0)]
            for run in result["runs"]
        ]
        print(format_table(
            ["policy", "demand", "nodes", "requests", "served",
             "SLO met", "p95 ttr (s)", "wasted node-s"],
            rows, title=f"Autoscaler sweep ({len(rows)} runs, "
            f"jobs={args.jobs})"))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(sweep_to_json(result))
        print(f"sweep document written to {args.out}")
    return 0


def cmd_info(args) -> int:
    rows = [
        ["CPU", f"{params.CPU_CORES} cores @ {params.CPU_HZ / 1e9:.2f} GHz"],
        ["memory", f"{params.MEMORY_BYTES // 2**30} GB"],
        ["firmware init", f"{params.FIRMWARE_INIT_SECONDS:.0f} s"],
        ["disk", f"{params.DISK_READ_BW / 1e6:.1f} / "
                 f"{params.DISK_WRITE_BW / 1e6:.1f} MB/s r/w"],
        ["management net", f"{params.GBE_BITS_PER_SECOND / 1e9:.0f} GbE, "
                           f"MTU {params.GBE_MTU}"],
        ["InfiniBand", f"{params.IB_BITS_PER_SECOND / 1e9:.0f} Gb/s, "
                       f"{params.IB_BASE_LATENCY_SECONDS * 1e6:.1f} us"],
        ["OS image", f"{params.OS_IMAGE_BYTES // 2**30} GB "
                     f"(boot reads {params.OS_BOOT_READ_BYTES // 2**20} MB)"],
        ["copy block", f"{params.COPY_BLOCK_BYTES // 2**10} KB"],
        ["poll interval", f"{params.POLL_INTERVAL_SECONDS * 1e6:.0f} us"],
        ["VMM memory", f"{params.VMM_RESERVED_BYTES // 2**20} MB"],
    ]
    print(format_table(["parameter", "value"], rows,
                       title="Calibrated testbed "
                       "(FUJITSU PRIMERGY RX200 S6, paper Section 5)"))
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "deploy": cmd_deploy,
        "scaleout": cmd_scaleout,
        "ctl": cmd_ctl,
        "compare": cmd_compare,
        "sweep": cmd_sweep,
        "metrics": cmd_metrics,
        "trace": cmd_trace,
        "profile": cmd_profile,
        "lint": cmd_lint,
        "check": cmd_check,
        "info": cmd_info,
    }[args.command]
    return handler(args)
