"""Cloud orchestration: testbeds, instances, the provisioner."""

from repro.cloud.cluster import Cluster
from repro.cloud.instance import Instance, StartupTimeline
from repro.cloud.provisioner import METHODS, Provisioner
from repro.cloud.scaleout import WaveScheduler, WaveStats
from repro.cloud.scenario import Testbed, TestbedNode, build_testbed

__all__ = [
    "Cluster",
    "Instance",
    "METHODS",
    "Provisioner",
    "StartupTimeline",
    "Testbed",
    "TestbedNode",
    "WaveScheduler",
    "WaveStats",
    "build_testbed",
]
