"""Cluster orchestration: deploy and manage groups of instances.

The elasticity workflows the paper motivates — scale out a tier, stand
up an HPC cluster, rotate capacity — operate on groups, not single
machines.  :class:`Cluster` packages the common moves: simultaneous
deployment, waiting for every node's streaming deployment to finish,
and collective health checks.
"""

from __future__ import annotations

from repro.cloud.instance import Instance
from repro.cloud.provisioner import Provisioner
from repro.cloud.scenario import Testbed


class Cluster:
    """A group of instances on one testbed."""

    def __init__(self, testbed: Testbed,
                 provisioner: Provisioner | None = None):
        self.testbed = testbed
        self.env = testbed.env
        self.provisioner = provisioner or Provisioner(testbed)
        self.instances: list[Instance] = []

    def __len__(self) -> int:
        return len(self.instances)

    # -- deployment ------------------------------------------------------------

    def deploy_all(self, method: str, node_indexes=None,
                   skip_firmware: bool = True,
                   stagger_seconds: float = 0.0, **options):
        """Generator: deploy onto every node simultaneously.

        Returns the instances in node order once all are ready (the
        all-ready barrier is what an operator's "scale out by N" sees).
        ``stagger_seconds`` spaces the power-ons within the batch (boot
        storm avoidance: position *i* starts at ``i * stagger_seconds``)
        without changing the all-ready barrier or the returned order.
        """
        if node_indexes is None:
            node_indexes = range(len(self.testbed.nodes))
        slots: dict[int, Instance] = {}

        def deploy_one(index, delay):
            if delay > 0.0:
                yield self.env.timeout(delay)
            instance = yield from self.provisioner.deploy(
                method, node_index=index, skip_firmware=skip_firmware,
                **options)
            slots[index] = instance

        processes = [
            self.env.process(deploy_one(index, position * stagger_seconds),
                             name=f"deploy-{index}")
            for position, index in enumerate(node_indexes)
        ]
        yield self.env.all_of(processes)
        deployed = [slots[index] for index in sorted(slots)]
        self.instances.extend(deployed)
        return deployed

    # -- lifecycle barriers ----------------------------------------------------------

    def wait_deployment_complete(self, settle_seconds: float = 10.0):
        """Generator: until every BMcast node has de-virtualized."""
        for instance in self.instances:
            platform = instance.platform
            if platform is None or not hasattr(platform, "copier"):
                continue
            if not platform.copier.done.triggered:
                yield platform.copier.done
        yield self.env.timeout(settle_seconds)

    # -- state queries --------------------------------------------------------------

    def phases(self) -> dict:
        """Instance -> deployment phase (for BMcast nodes)."""
        return {
            instance: getattr(instance.platform, "phase", "n/a")
            for instance in self.instances
        }

    def all_baremetal(self) -> bool:
        """True when every BMcast node has fully de-virtualized."""
        return all(phase in ("baremetal", "n/a")
                   for phase in self.phases().values())

    def verify_all_deployed(self) -> bool:
        """Every node's local disk matches the image (modulo its own
        writes)."""
        image = self.testbed.image
        for index, instance in enumerate(self.instances):
            node = self.testbed.nodes[index]
            written = instance.guest.written if instance.guest else None
            if not image.verify_deployed(node.disk.contents, written):
                return False
        return True

    def total_startup_seconds(self) -> float:
        """Latest ready time minus earliest power-on across the group."""
        if not self.instances:
            raise ValueError("no instances deployed")
        start = min(i.timeline.power_on for i in self.instances)
        ready = max(i.timeline.ready for i in self.instances)
        return ready - start
