"""The instance abstraction applications run against.

Whatever deployed the machine — BMcast, image copy, network boot, KVM —
applications see the same facade: block I/O, the platform condition, and
a startup timeline.  Differences in behaviour (virtio penalties, network
storage latency, the deploy-phase interference) come from what sits
behind the facade, not from application-side special cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.machine import Machine


@dataclass
class StartupTimeline:
    """Time stamps of the startup sequence (Figure 4's stacked bars)."""

    power_on: float = 0.0
    firmware_done: float = 0.0
    platform_ready: float = 0.0  # VMM booted / installer done / n.a.
    os_boot_started: float = 0.0
    ready: float = 0.0
    #: Labelled durations making up the bar, in order.
    segments: list = field(default_factory=list)

    def add_segment(self, label: str, seconds: float) -> None:
        self.segments.append((label, seconds))

    @property
    def total(self) -> float:
        return self.ready - self.power_on

    def total_excluding_firmware(self) -> float:
        return sum(seconds for label, seconds in self.segments
                   if "firmware" not in label)


class Instance:
    """A deployed instance: machine + storage facade + timeline."""

    def __init__(self, machine: Machine, method: str,
                 timeline: StartupTimeline,
                 storage_read, storage_write,
                 guest=None, platform=None):
        self.machine = machine
        self.method = method
        self.timeline = timeline
        self._storage_read = storage_read
        self._storage_write = storage_write
        self.guest = guest
        #: The deploying platform object (BmcastVmm, KvmHypervisor, ...).
        self.platform = platform

    @property
    def env(self):
        return self.machine.env

    @property
    def condition(self):
        return self.machine.condition

    # -- storage facade -----------------------------------------------------------

    def read(self, lba: int, sector_count: int):
        """Generator: read blocks through whatever storage path this
        deployment method provides."""
        return (yield from self._storage_read(lba, sector_count))

    def write(self, lba: int, sector_count: int, tag: str = "app"):
        """Generator: write blocks through the deployment's path."""
        return (yield from self._storage_write(lba, sector_count, tag))

    def __repr__(self):
        return f"<Instance {self.method} on {self.machine.name}>"
