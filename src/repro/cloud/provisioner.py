"""The provisioner: the cloud's top-level deploy-an-instance API.

``yield from provisioner.deploy("bmcast")`` takes a node from cold power
to a ready instance by any of the methods the paper evaluates, recording
the startup timeline Figure 4 plots.
"""

from __future__ import annotations

from repro.baselines.image_copy import ImageCopyDeployment
from repro.baselines.kvm import KvmInstance
from repro.baselines.network_boot import NetworkBootInstance
from repro.baselines.os_streaming import StreamingOsInstance
from repro.cloud.instance import Instance, StartupTimeline
from repro.cloud.scenario import Testbed, TestbedNode
from repro.guest.kernel import GuestOs
from repro.obs.telemetry import NULL_TELEMETRY
from repro.vmm.bmcast import BmcastVmm
from repro.vmm.moderation import ModerationPolicy

METHODS = ("baremetal", "bmcast", "image-copy", "network-boot",
           "kvm-nfs", "kvm-iscsi", "kvm-local", "os-streaming")


class Provisioner:
    """Deploys instances onto a testbed's nodes."""

    def __init__(self, testbed: Testbed):
        self.testbed = testbed
        self.env = testbed.env
        self.telemetry = getattr(testbed, "telemetry", NULL_TELEMETRY)

    def deploy(self, method: str, node_index: int = 0,
               skip_firmware: bool = False,
               policy: ModerationPolicy | None = None,
               **options):
        """Generator: deploy an instance; returns an :class:`Instance`.

        ``skip_firmware`` starts from a machine whose firmware already
        initialized (the paper's "excluding the first firmware
        initialization" comparison).
        """
        if method not in METHODS:
            raise ValueError(
                f"unknown method {method!r}; choose from {METHODS}")
        node = self.testbed.nodes[node_index]
        timeline = StartupTimeline(power_on=self.env.now)
        spans = self.telemetry.tracer
        deploy_span = spans.start(f"deploy:{method}", parent=None,
                                  node=node_index)
        spans.ambient = deploy_span

        firmware_span = spans.start("firmware-init", parent=deploy_span)
        if skip_firmware:
            node.machine.firmware.initialized = True
        else:
            yield from node.machine.power_on()
        spans.end(firmware_span, skipped=skip_firmware)
        timeline.firmware_done = self.env.now
        timeline.add_segment("firmware init",
                             timeline.firmware_done - timeline.power_on)

        handler = getattr(self, "_deploy_" + method.replace("-", "_"))
        instance = yield from handler(node, timeline, policy=policy,
                                      **options)
        timeline.ready = self.env.now
        spans.end(deploy_span, ready_seconds=timeline.total)
        return instance

    # -- bare metal (pre-installed local disk) -----------------------------------------

    def _deploy_baremetal(self, node: TestbedNode,
                          timeline: StartupTimeline, policy=None):
        """The reference: image already on disk, boot it."""
        image = self.testbed.image
        # Pre-install: the disk holds the image before power-on.
        for start, end, token in image.contents.runs():
            node.disk.contents.set_range(start, end - start, token)
        timeline.platform_ready = self.env.now
        guest = GuestOs(node.machine, image)
        timeline.os_boot_started = self.env.now
        with self.telemetry.tracer.span("guest-os-boot"):
            yield from guest.boot()
        timeline.add_segment("OS boot", self.env.now
                             - timeline.os_boot_started)
        return Instance(node.machine, "baremetal", timeline,
                        storage_read=_driver_read(guest),
                        storage_write=_driver_write(guest),
                        guest=guest)

    # -- BMcast ---------------------------------------------------------------------------

    def _deploy_bmcast(self, node: TestbedNode, timeline: StartupTimeline,
                       policy: ModerationPolicy | None = None,
                       **vmm_options):
        image = self.testbed.image
        spans = self.telemetry.tracer
        sanitizers = vmm_options.pop("sanitizers", None)
        vmm_options.setdefault("telemetry", self.telemetry)
        fabric = getattr(self.testbed, "fabric", None)
        if fabric is not None:
            vmm_options.setdefault("fabric", fabric)
            vmm_options.setdefault("peer_nic", node.peer_nic)
        vmm = BmcastVmm(self.env, node.machine, node.vmm_nic,
                        self.testbed.server_port,
                        image_sectors=image.total_sectors,
                        policy=policy, **vmm_options)
        if sanitizers is not None:
            # Before boot: attaching late misses early guest writes and
            # the sanitizers would report phantom inconsistencies.
            sanitizers.attach_deployment(vmm, image=image)
            # Sanitizers validate per-packet protocol behavior (claim
            # replay, AoE conformance), which the analytic fluid path
            # deliberately skips — force the exact path.
            vmm.fluid.demote("sanitizers")
        self.telemetry.provenance.attach(vmm, node=node.machine.name)
        start = self.env.now
        boot_span = spans.start("vmm-netboot")
        with self.telemetry.profiler.track("vmm", "netboot"):
            yield from node.machine.firmware.network_boot()
            yield from vmm.boot()
        spans.end(boot_span)
        timeline.platform_ready = self.env.now
        timeline.add_segment("VMM boot", self.env.now - start)
        guest = GuestOs(node.machine, image)
        timeline.os_boot_started = self.env.now
        os_span = spans.start("guest-os-boot")
        with self.telemetry.profiler.track("guest", "os-boot"):
            yield from guest.boot()
        spans.end(os_span)
        timeline.add_segment("OS boot", self.env.now
                             - timeline.os_boot_started)
        return Instance(node.machine, "bmcast", timeline,
                        storage_read=_driver_read(guest),
                        storage_write=_driver_write(guest),
                        guest=guest, platform=vmm)

    # -- image copy ------------------------------------------------------------------------

    def _deploy_image_copy(self, node: TestbedNode,
                           timeline: StartupTimeline, policy=None):
        image = self.testbed.image
        deployment = ImageCopyDeployment(self.env, node,
                                         self.testbed.server_port, image)
        start = self.env.now
        with self.telemetry.tracer.span("installer-and-transfer"):
            yield from deployment.run()
        timeline.platform_ready = self.env.now
        timeline.add_segment("installer boot",
                             deployment.installer_boot_seconds + 2.0)
        timeline.add_segment("image transfer", deployment.transfer_seconds)
        restart = (self.env.now - start
                   - deployment.installer_boot_seconds - 2.0
                   - deployment.transfer_seconds)
        timeline.add_segment("restart (firmware again)", restart)
        guest = GuestOs(node.machine, image)
        timeline.os_boot_started = self.env.now
        yield from guest.boot()
        timeline.add_segment("OS boot", self.env.now
                             - timeline.os_boot_started)
        return Instance(node.machine, "image-copy", timeline,
                        storage_read=_driver_read(guest),
                        storage_write=_driver_write(guest),
                        guest=guest, platform=deployment)

    # -- network boot -----------------------------------------------------------------------

    def _deploy_network_boot(self, node: TestbedNode,
                             timeline: StartupTimeline, policy=None):
        image = self.testbed.image
        instance_model = NetworkBootInstance(self.env, node,
                                             self.testbed.server_port,
                                             image)
        timeline.platform_ready = self.env.now
        timeline.os_boot_started = self.env.now
        yield from instance_model.boot()
        timeline.add_segment("OS boot (netroot)",
                             self.env.now - timeline.os_boot_started)
        return Instance(node.machine, "network-boot", timeline,
                        storage_read=_facade_read(instance_model),
                        storage_write=_facade_write(instance_model),
                        platform=instance_model)

    # -- KVM variants -----------------------------------------------------------------------

    def _deploy_kvm_nfs(self, node, timeline, policy=None):
        return (yield from self._deploy_kvm(node, timeline, "nfs"))

    def _deploy_kvm_iscsi(self, node, timeline, policy=None):
        return (yield from self._deploy_kvm(node, timeline, "iscsi"))

    def _deploy_kvm_local(self, node, timeline, policy=None):
        # Local-disk backend assumes the image is already on disk
        # (paper 5.5.2's KVM/Local case).
        image = self.testbed.image
        for start, end, token in image.contents.runs():
            node.disk.contents.set_range(start, end - start, token)
        return (yield from self._deploy_kvm(node, timeline, "local"))

    def _deploy_kvm(self, node: TestbedNode, timeline: StartupTimeline,
                    backend: str):
        image = self.testbed.image
        instance_model = KvmInstance(self.env, node,
                                     self.testbed.server_port, image,
                                     backend=backend)
        start = self.env.now
        timeline.os_boot_started = self.env.now
        yield from instance_model.boot()
        timeline.platform_ready = start \
            + instance_model.hypervisor_boot_seconds
        timeline.add_segment("KVM boot",
                             instance_model.hypervisor_boot_seconds)
        timeline.add_segment(
            "guest OS boot",
            self.env.now - start - instance_model.hypervisor_boot_seconds)
        return Instance(node.machine, f"kvm-{backend}", timeline,
                        storage_read=_facade_read(instance_model),
                        storage_write=_facade_write(instance_model),
                        platform=instance_model)

    # -- OS streaming -------------------------------------------------------------------------

    def _deploy_os_streaming(self, node: TestbedNode,
                             timeline: StartupTimeline,
                             policy: ModerationPolicy | None = None):
        image = self.testbed.image
        instance_model = StreamingOsInstance(self.env, node,
                                             self.testbed.server_port,
                                             image, policy=policy)
        timeline.platform_ready = self.env.now
        timeline.os_boot_started = self.env.now
        yield from instance_model.boot()
        timeline.add_segment("OS boot (streaming)",
                             self.env.now - timeline.os_boot_started)
        return Instance(node.machine, "os-streaming", timeline,
                        storage_read=_facade_read(instance_model),
                        storage_write=_facade_write(instance_model),
                        platform=instance_model)


# -- storage facade adapters ------------------------------------------------------------------

def _driver_read(guest: GuestOs):
    def read(lba, sector_count):
        buffer = yield from guest.read(lba, sector_count)
        return buffer.runs
    return read


def _driver_write(guest: GuestOs):
    def write(lba, sector_count, tag):
        yield from guest.write(lba, sector_count, tag=tag)
        return None
    return write


def _facade_read(model):
    def read(lba, sector_count):
        return (yield from model.read(lba, sector_count))
    return read


def _facade_write(model):
    def write(lba, sector_count, tag):
        return (yield from model.write(lba, sector_count, tag=tag))
    return write
