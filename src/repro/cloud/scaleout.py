"""Scale-out scheduling: deploy a fleet in waves, later waves peer-fed.

One storage server deploying N instances at once divides its bandwidth
N ways — the saturation the paper measures in Section 4.2.  The
distribution fabric attacks that two ways: origin *replicas* multiply
the source bandwidth, and *peer chunk serving* turns every partially
deployed node into another source.  The :class:`WaveScheduler`
exploits the second property deliberately: it launches deployments in
waves, optionally holding each wave until the previous one's bitmaps
have reached a seed threshold, so later waves find most of the image
already advertised in the peer directory and pull it off the rack
instead of the origin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.cluster import Cluster


@dataclass
class WaveStats:
    """What one wave did, measured at the wave's all-ready barrier."""

    index: int
    node_indexes: list[int]
    started_at: float
    ready_at: float
    instances: list = field(default_factory=list)
    peer_hits: int = 0
    peer_misses: int = 0
    origin_fetches: int = 0

    @property
    def ready_seconds(self) -> float:
        """Launch-to-all-ready wall time for the wave."""
        return self.ready_at - self.started_at

    @property
    def peer_hit_ratio(self) -> float:
        total = self.peer_hits + self.origin_fetches
        return self.peer_hits / total if total else 0.0

    def live_peer_hit_ratio(self) -> float:
        """Hit ratio *now* (background copy keeps fetching after ready)."""
        hits = fetches = 0
        for instance in self.instances:
            router = getattr(instance.platform, "router", None)
            if router is None:
                continue
            hits += router.peer_hits
            fetches += router.total_fetches
        return hits / fetches if fetches else 0.0

    def to_dict(self) -> dict:
        return {
            "wave": self.index,
            "nodes": list(self.node_indexes),
            "ready_seconds": round(self.ready_seconds, 3),
            "peer_hits": self.peer_hits,
            "peer_misses": self.peer_misses,
            "origin_fetches": self.origin_fetches,
            "peer_hit_ratio": round(self.peer_hit_ratio, 4),
        }


class WaveScheduler:
    """Deploys a node set in fixed-size waves over one cluster."""

    #: Bitmap poll granularity while waiting for a wave to seed.
    SEED_POLL_SECONDS = 1.0

    def __init__(self, cluster: Cluster, wave_size: int,
                 seed_fill_fraction: float = 0.0,
                 stagger_seconds: float = 0.0):
        if wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        if not 0.0 <= seed_fill_fraction <= 1.0:
            raise ValueError("seed_fill_fraction must be in [0, 1]")
        if stagger_seconds < 0.0:
            raise ValueError("stagger_seconds must be >= 0")
        self.cluster = cluster
        self.env = cluster.env
        self.wave_size = wave_size
        #: Hold each wave until the previous one's mean bitmap fill
        #: reaches this fraction (0 disables the hold: waves launch
        #: back-to-back as each becomes ready).
        self.seed_fill_fraction = seed_fill_fraction
        #: Space power-ons within a wave (boot-storm avoidance).  Also
        #: what keeps lockstep nodes from pinning the same replica: a
        #: synchronized wave walks its selector cursors in unison, so
        #: every member fetches from the same origin at once.
        self.stagger_seconds = stagger_seconds
        self.waves: list[WaveStats] = []

    def run(self, method: str = "bmcast", node_indexes=None,
            skip_firmware: bool = True, **options):
        """Generator: deploy every node, wave by wave.

        Returns the list of :class:`WaveStats` (also kept on
        ``self.waves``).  Instances land in ``cluster.instances`` in
        node order, exactly as a flat ``deploy_all`` would leave them.
        """
        if node_indexes is None:
            node_indexes = range(len(self.cluster.testbed.nodes))
        indexes = list(node_indexes)
        batches = [indexes[i:i + self.wave_size]
                   for i in range(0, len(indexes), self.wave_size)]
        previous: list = []
        for wave_index, batch in enumerate(batches):
            if previous and self.seed_fill_fraction > 0:
                yield from self._wait_seeded(previous)
            started = self.env.now
            instances = yield from self.cluster.deploy_all(
                method, node_indexes=batch,
                skip_firmware=skip_firmware,
                stagger_seconds=self.stagger_seconds, **options)
            stats = WaveStats(index=wave_index, node_indexes=batch,
                              started_at=started, ready_at=self.env.now,
                              instances=instances)
            for instance in instances:
                router = getattr(instance.platform, "router", None)
                if router is None:
                    continue
                stats.peer_hits += router.peer_hits
                stats.peer_misses += router.peer_misses
                stats.origin_fetches += router.origin_fetches
            self.waves.append(stats)
            previous = instances
        return self.waves

    def _wait_seeded(self, instances):
        """Generator: until the wave's mean bitmap fill >= threshold."""
        while self._mean_fill(instances) < self.seed_fill_fraction:
            yield self.env.timeout(self.SEED_POLL_SECONDS)

    @staticmethod
    def _mean_fill(instances) -> float:
        fills = []
        for instance in instances:
            bitmap = getattr(instance.platform, "bitmap", None)
            if bitmap is None:
                fills.append(1.0)  # non-streaming method: all local
            else:
                fills.append(bitmap.filled_count / bitmap.block_count)
        return sum(fills) / len(fills) if fills else 1.0

    def summary(self) -> dict:
        """Scheduler-level rollup across all completed waves."""
        if not self.waves:
            return {"waves": 0}
        return {
            "waves": len(self.waves),
            "instances": sum(len(w.instances) for w in self.waves),
            "total_seconds": round(
                self.waves[-1].ready_at - self.waves[0].started_at, 3),
            "last_wave_peer_hit_ratio": round(
                self.waves[-1].peer_hit_ratio, 4),
            "per_wave": [w.to_dict() for w in self.waves],
        }
