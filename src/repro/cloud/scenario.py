"""Canned testbeds matching the paper's experimental environment.

A :class:`Testbed` wires up one (or more) target machines, the gigabit
management network, the AoE storage server, and an OS image — the
PRIMERGY cluster of Section 5 in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import params
from repro.aoe.server import AoeServer, ImageStore
from repro.guest.osimage import OsImage
from repro.hw.machine import Machine, MachineSpec
from repro.net.infiniband import IbFabric, IbHca
from repro.net.link import EthernetSwitch, LossModel
from repro.net.nic import Nic
from repro.obs.telemetry import NULL_TELEMETRY
from repro.sim import Environment
from repro.storage.ahci import AhciController
from repro.storage.disk import Disk
from repro.storage.ide import IdeController
from repro.storage.megaraid import MegaRaidController


@dataclass
class TestbedNode:
    """One target machine with its devices."""

    machine: Machine
    disk: Disk
    controller: object
    guest_nic: Nic
    vmm_nic: Nic
    ib_hca: IbHca | None = None


@dataclass
class Testbed:
    """The full experimental environment."""

    env: Environment
    switch: EthernetSwitch
    image: OsImage
    store: ImageStore
    server: AoeServer
    server_port: str
    nodes: list[TestbedNode] = field(default_factory=list)
    ib_fabric: IbFabric | None = None
    telemetry: object = NULL_TELEMETRY

    @property
    def node(self) -> TestbedNode:
        """The first (often only) node."""
        return self.nodes[0]


def build_testbed(node_count: int = 1,
                  disk_controller: str = "ahci",
                  image: OsImage | None = None,
                  mtu: int = params.GBE_MTU,
                  loss_probability: float = 0.0,
                  server_workers: int = 8,
                  server_cache_hit_ratio: float = 0.5,
                  with_infiniband: bool = False,
                  has_preemption_timer: bool = True,
                  env: Environment | None = None,
                  telemetry=NULL_TELEMETRY) -> Testbed:
    """Assemble the paper's testbed.

    Defaults follow Section 5: gigabit Ethernet with 9000-byte MTU, a
    thread-pooled AoE server, AHCI local disks, and a 32-GB image.

    ``telemetry`` (a :class:`repro.obs.Telemetry` built on the same
    ``env``) is threaded into the switch, every NIC, and the AoE
    server; the provisioner and VMM pick it up from the testbed.
    """
    env = env or Environment()
    if telemetry.enabled and telemetry.env is not env:
        raise ValueError(
            "telemetry must be built on the same Environment as the "
            "testbed (pass env= alongside telemetry=)")
    switch = EthernetSwitch(env, mtu=mtu,
                            loss=LossModel(loss_probability, seed=97),
                            telemetry=telemetry)
    image = image or OsImage()

    store = ImageStore(env, image.contents, image.total_sectors,
                       cache_hit_ratio=server_cache_hit_ratio)
    server_nic = Nic(env, switch, "server", rx_ring_size=8192,
                     telemetry=telemetry)
    server = AoeServer(env, server_nic, store, workers=server_workers,
                       telemetry=telemetry)
    server.start()

    fabric = IbFabric(env) if with_infiniband else None

    testbed = Testbed(env=env, switch=switch, image=image, store=store,
                      server=server, server_port="server",
                      ib_fabric=fabric, telemetry=telemetry)

    for index in range(node_count):
        name = f"node{index}"
        spec = MachineSpec(disk_controller=disk_controller,
                           has_preemption_timer=has_preemption_timer)
        machine = Machine(env, spec, name=name)
        disk = Disk(env)
        if disk_controller == "ide":
            controller = IdeController(env, disk, machine)
        elif disk_controller == "ahci":
            controller = AhciController(env, disk, machine)
        elif disk_controller == "megaraid":
            controller = MegaRaidController(env, disk, machine)
        else:
            raise ValueError(
                f"unknown controller kind {disk_controller!r}")
        guest_nic = Nic(env, switch, f"{name}-eth0",
                        telemetry=telemetry)
        vmm_nic = Nic(env, switch, f"{name}-eth1", rx_ring_size=8192,
                      telemetry=telemetry)
        machine.attach_nic(guest_nic)
        machine.attach_nic(vmm_nic)
        hca = IbHca(env, fabric, machine) if fabric is not None else None
        testbed.nodes.append(TestbedNode(
            machine=machine, disk=disk, controller=controller,
            guest_nic=guest_nic, vmm_nic=vmm_nic, ib_hca=hca))

    return testbed
