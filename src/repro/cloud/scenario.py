"""Canned testbeds matching the paper's experimental environment.

A :class:`Testbed` wires up one (or more) target machines, the gigabit
management network, the AoE storage server, and an OS image — the
PRIMERGY cluster of Section 5 in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import params
from repro.aoe.server import AoeServer, ImageStore
from repro.dist import DistFabric
from repro.guest.osimage import OsImage
from repro.hw.machine import Machine, MachineSpec
from repro.net.infiniband import IbFabric, IbHca
from repro.net.link import EthernetSwitch, LossModel
from repro.net.nic import Nic
from repro.obs.telemetry import NULL_TELEMETRY
from repro.sim import Environment
from repro.storage.ahci import AhciController
from repro.storage.disk import Disk
from repro.storage.ide import IdeController
from repro.storage.megaraid import MegaRaidController


@dataclass
class TestbedNode:
    """One target machine with its devices."""

    machine: Machine
    disk: Disk
    controller: object
    guest_nic: Nic
    vmm_nic: Nic
    ib_hca: IbHca | None = None
    #: Switch port for the node's peer chunk service (p2p fabrics only).
    peer_nic: Nic | None = None


@dataclass
class Testbed:
    """The full experimental environment."""

    env: Environment
    switch: EthernetSwitch
    image: OsImage
    store: ImageStore
    server: AoeServer
    server_port: str
    nodes: list[TestbedNode] = field(default_factory=list)
    ib_fabric: IbFabric | None = None
    telemetry: object = NULL_TELEMETRY
    #: All origin replicas (``servers[0] is server``).
    servers: list[AoeServer] = field(default_factory=list)
    stores: list[ImageStore] = field(default_factory=list)
    server_ports: list[str] = field(default_factory=list)
    #: Distribution fabric; None only for pre-fabric callers that
    #: construct a Testbed by hand.
    fabric: DistFabric | None = None

    @property
    def node(self) -> TestbedNode:
        """The first (often only) node."""
        return self.nodes[0]


def build_testbed(node_count: int = 1,
                  disk_controller: str = "ahci",
                  image: OsImage | None = None,
                  mtu: int = params.GBE_MTU,
                  loss_probability: float = 0.0,
                  loss_seed: int = 97,
                  server_count: int = 1,
                  select_policy: str = "round-robin",
                  p2p: bool = False,
                  server_workers: int = 8,
                  server_cache_hit_ratio: float = 0.5,
                  with_infiniband: bool = False,
                  has_preemption_timer: bool = True,
                  env: Environment | None = None,
                  telemetry=NULL_TELEMETRY) -> Testbed:
    """Assemble the paper's testbed.

    Defaults follow Section 5: gigabit Ethernet with 9000-byte MTU, a
    thread-pooled AoE server, AHCI local disks, and a 32-GB image.

    ``server_count`` origin replicas share one logical image (each gets
    its own :class:`ImageStore` and switch port); ``select_policy``
    names the replica-selection policy every initiator runs, and
    ``p2p`` additionally gives every node a peer chunk-service port so
    deployments can seed each other.  ``loss_seed`` varies the loss
    model's random stream without changing the loss rate.

    ``telemetry`` (a :class:`repro.obs.Telemetry` built on the same
    ``env``) is threaded into the switch, every NIC, and the AoE
    server; the provisioner and VMM pick it up from the testbed.
    """
    env = env or Environment()
    if telemetry.enabled and telemetry.env is not env:
        raise ValueError(
            "telemetry must be built on the same Environment as the "
            "testbed (pass env= alongside telemetry=)")
    if server_count < 1:
        raise ValueError("server_count must be >= 1")
    switch = EthernetSwitch(env, mtu=mtu,
                            loss=LossModel(loss_probability,
                                           seed=loss_seed),
                            telemetry=telemetry)
    image = image or OsImage()

    # Origin replica set: independent AoE targets over the same logical
    # image.  The first keeps the historical "server" port name so
    # single-server callers see no change.
    servers: list[AoeServer] = []
    stores: list[ImageStore] = []
    server_ports: list[str] = []
    for replica in range(server_count):
        port = "server" if replica == 0 else f"server-r{replica}"
        replica_store = ImageStore(
            env, image.contents, image.total_sectors,
            cache_hit_ratio=server_cache_hit_ratio)
        replica_nic = Nic(env, switch, port, rx_ring_size=8192,
                          telemetry=telemetry)
        replica_server = AoeServer(env, replica_nic, replica_store,
                                   workers=server_workers,
                                   telemetry=telemetry)
        replica_server.start()
        servers.append(replica_server)
        stores.append(replica_store)
        server_ports.append(port)

    dist_fabric = DistFabric(server_ports, select_policy=select_policy,
                             p2p=p2p, telemetry=telemetry)

    fabric = IbFabric(env) if with_infiniband else None

    testbed = Testbed(env=env, switch=switch, image=image,
                      store=stores[0], server=servers[0],
                      server_port="server",
                      ib_fabric=fabric, telemetry=telemetry,
                      servers=servers, stores=stores,
                      server_ports=server_ports, fabric=dist_fabric)

    for index in range(node_count):
        name = f"node{index}"
        spec = MachineSpec(disk_controller=disk_controller,
                           has_preemption_timer=has_preemption_timer)
        machine = Machine(env, spec, name=name)
        disk = Disk(env, telemetry=telemetry)
        if disk_controller == "ide":
            controller = IdeController(env, disk, machine)
        elif disk_controller == "ahci":
            controller = AhciController(env, disk, machine)
        elif disk_controller == "megaraid":
            controller = MegaRaidController(env, disk, machine)
        else:
            raise ValueError(
                f"unknown controller kind {disk_controller!r}")
        guest_nic = Nic(env, switch, f"{name}-eth0",
                        telemetry=telemetry)
        vmm_nic = Nic(env, switch, f"{name}-eth1", rx_ring_size=8192,
                      telemetry=telemetry)
        machine.attach_nic(guest_nic)
        machine.attach_nic(vmm_nic)
        peer_nic = None
        if p2p:
            peer_nic = Nic(env, switch,
                           dist_fabric.peer_port_of(vmm_nic.name),
                           rx_ring_size=8192, telemetry=telemetry)
        hca = IbHca(env, fabric, machine) if fabric is not None else None
        testbed.nodes.append(TestbedNode(
            machine=machine, disk=disk, controller=controller,
            guest_nic=guest_nic, vmm_nic=vmm_nic, ib_hca=hca,
            peer_nic=peer_nic))

    return testbed
