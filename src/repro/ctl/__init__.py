"""The elastic control plane (repro.ctl).

Everything above a single deployment: the node lifecycle FSM with the
bare-metal reclaim path, demand models, autoscaler policies,
cache-aware placement, and the controller that ties them into a
closed loop.  See docs/control_plane.md.
"""

from repro.ctl.controller import (ElasticController, elasticity_scenario,
                                  percentile)
from repro.ctl.demand import (DEMANDS, DemandModel, DiurnalDemand,
                              FlashCrowdDemand, Request, StepDemand,
                              TraceDemand, dump_trace, load_trace)
from repro.ctl.lifecycle import (DEPLOYING, DRAINING, FAILED, FREE,
                                 NETBOOTING, READY, SCRUBBING, STATES,
                                 TRANSITIONS, LifecycleError, NodePool,
                                 NodeRecord)
from repro.ctl.placement import (PLACEMENTS, CacheAwarePlacement,
                                 RoundRobinPlacement, image_block_set)
from repro.ctl.policy import (POLICIES, HeadroomPolicy, Observation,
                              PredictivePolicy, ReactivePolicy,
                              ScaleDecision)

__all__ = [
    "ElasticController", "elasticity_scenario", "percentile",
    "DEMANDS", "DemandModel", "DiurnalDemand", "FlashCrowdDemand",
    "Request", "StepDemand", "TraceDemand", "dump_trace", "load_trace",
    "FREE", "NETBOOTING", "DEPLOYING", "READY", "DRAINING", "SCRUBBING",
    "FAILED", "STATES", "TRANSITIONS", "LifecycleError", "NodePool",
    "NodeRecord",
    "PLACEMENTS", "CacheAwarePlacement", "RoundRobinPlacement",
    "image_block_set",
    "POLICIES", "HeadroomPolicy", "Observation", "PredictivePolicy",
    "ReactivePolicy", "ScaleDecision",
]
