"""The elastic controller: demand in, scale decisions out.

Closes the loop the paper's agility argument implies but never runs:
if deployment is fast *and* reclamation is cheap, a control loop can
track demand with a small fleet instead of overprovisioning.  The
:class:`ElasticController` runs inside the simulation as one process:

every ``tick`` seconds it

1. admits new requests from the demand model into the queue,
2. assigns queued requests to idle-ready nodes (FIFO),
3. builds an :class:`~repro.ctl.policy.Observation` and asks the
   policy for a target,
4. grows by deploying onto free nodes — chosen by the placement
   policy, so warm reclaimed nodes are preferred — or shrinks by
   draining the longest-idle ready nodes through the reclaim path.

Deployments and reclamations run as their own simulation processes,
so a tick never blocks on a slow node; capacity in flight is visible
to the policy through the observation's ``deploying``/``reclaiming``
counts.  Every decision, admission, and completion is appended to
in-order logs, and the whole run is deterministic — the CLI's
``--replay-check`` executes it twice and compares event digests.
"""

from __future__ import annotations

from repro.ctl.lifecycle import NodePool
from repro.ctl.placement import image_block_set
from repro.obs.telemetry import NULL_TELEMETRY


def percentile(values, q: float) -> float:
    """Nearest-rank percentile of an unsorted sequence (0 if empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(q / 100.0 * len(ordered) + 0.5) - 1))
    return ordered[rank]


class ElasticController:
    """One autoscaling run over a node pool."""

    def __init__(self, pool: NodePool, demand, policy, placement,
                 tick: float = 15.0, give_up_after: float | None = None,
                 preserve_on_reclaim: bool = True, telemetry=None):
        self.pool = pool
        self.env = pool.env
        self.demand = demand
        self.policy = policy
        self.placement = placement
        self.tick = tick
        self.give_up_after = give_up_after
        self.preserve_on_reclaim = preserve_on_reclaim
        self.telemetry = telemetry if telemetry is not None \
            else pool.telemetry
        self.image_blocks = image_block_set(pool.testbed)
        #: Every admitted request, in arrival order.
        self.requests: list = []
        #: Admitted, waiting for a ready node (FIFO).
        self.queue: list = []
        #: (time, target, provisioned, reason) per non-hold decision.
        self.decisions: list = []
        self.scale_ups = 0
        self.scale_downs = 0
        self._completed_since_tick = 0
        registry = self.telemetry.registry
        self._s_queue = registry.series(
            "ctl_queue_depth", help="admission queue depth per tick")
        self._s_fleet = registry.series(
            "ctl_fleet_provisioned",
            help="provisioned (busy+idle+deploying) nodes per tick")
        self._m_admitted = registry.counter(
            "ctl_requests_admitted_total", help="requests admitted")
        self._m_served = registry.counter(
            "ctl_requests_served_total",
            help="requests that reached a ready node")
        self._m_abandoned = registry.counter(
            "ctl_requests_abandoned_total",
            help="requests dropped after give_up_after seconds queued")
        self._m_scale_ups = registry.counter(
            "ctl_scale_up_total", help="grow decisions acted on")
        self._m_scale_downs = registry.counter(
            "ctl_scale_down_total", help="shrink decisions acted on")

    # -- the control loop ---------------------------------------------------

    def run(self, duration: float):
        """Generator: drive the loop for ``duration`` seconds."""
        started = self.env.now
        last = started
        while self.env.now - started < duration:
            yield self.env.timeout(self.tick)
            now = self.env.now
            arrived = self._admit(last, now)
            last = now
            self._expire_queued()
            self._assign_ready()
            observation = self._observe(arrived)
            decision = self.policy.decide(observation)
            delta = decision.target - observation.provisioned
            if delta != 0:
                self.decisions.append((now, decision.target,
                                       observation.provisioned,
                                       decision.reason))
            if delta > 0:
                self._scale_up(delta)
            elif delta < 0:
                self._scale_down(-delta)
            self._s_queue.record(now, len(self.queue))
            self._s_fleet.record(now, observation.provisioned)

    def _admit(self, since: float, now: float) -> int:
        arrivals = self.demand.arrivals(since, now)
        for request in arrivals:
            self.requests.append(request)
            self.queue.append(request)
            self._m_admitted.inc()
            note_hold = getattr(self.policy, "note_hold", None)
            if note_hold is not None:
                note_hold(request.hold)
        return len(arrivals)

    def _expire_queued(self) -> None:
        if self.give_up_after is None:
            return
        still = []
        for request in self.queue:
            if self.env.now - request.arrived > self.give_up_after:
                request.abandoned = self.env.now
                self._m_abandoned.inc()
            else:
                still.append(request)
        self.queue = still

    def _assign_ready(self) -> None:
        """FIFO-match queued requests to idle-ready nodes."""
        while self.queue:
            idle = sorted(self.pool.idle_ready(),
                          key=lambda record: record.index)
            if not idle:
                return
            request = self.queue.pop(0)
            record = idle[0]
            request.assigned = self.env.now
            request.node = record.index
            request.ready = self.env.now
            self.pool.assign(record.index, request)
            self._m_served.inc()
            self.env.process(self._serve(request),
                             name=f"ctl-serve-{request.rid}")

    def _serve(self, request):
        yield self.env.timeout(request.hold)
        self.pool.release(request.node)
        request.completed = self.env.now
        self._completed_since_tick += 1
        self._assign_ready()

    def _observe(self, arrived: int):
        from repro.ctl.policy import Observation
        from repro.ctl import lifecycle
        counts = self.pool.counts()
        completed = self._completed_since_tick
        self._completed_since_tick = 0
        return Observation(
            now=self.env.now,
            queue_depth=len(self.queue),
            busy=self.pool.busy(),
            idle=counts[lifecycle.READY] - self.pool.busy(),
            free=counts[lifecycle.FREE],
            deploying=counts[lifecycle.NETBOOTING]
            + counts[lifecycle.DEPLOYING],
            reclaiming=counts[lifecycle.DRAINING]
            + counts[lifecycle.SCRUBBING],
            arrived=arrived,
            completed=completed,
        )

    # -- actuation ----------------------------------------------------------

    def _scale_up(self, count: int) -> None:
        free = self.pool.free_nodes()
        started = 0
        for _ in range(min(count, len(free))):
            index = self.placement.choose(self.pool, free,
                                          self.image_blocks)
            free = [record for record in free if record.index != index]
            self.env.process(self._deploy(index),
                             name=f"ctl-deploy-{index}")
            started += 1
        if started:
            self.scale_ups += 1
            self._m_scale_ups.inc()
            self.telemetry.causal.mark("scale-up")

    def _deploy(self, index: int):
        yield from self.pool.deploy(index)
        # New capacity: serve the queue without waiting for the tick.
        self._assign_ready()

    def _scale_down(self, count: int) -> None:
        # Longest-idle first: they are the least likely to be missed,
        # and their peer summaries have had the longest time to matter.
        idle = sorted(self.pool.idle_ready(),
                      key=lambda record: (record.since, record.index))
        victims = idle[:count]
        if not victims:
            return
        for record in victims:
            self.env.process(
                self._reclaim(record.index),
                name=f"ctl-reclaim-{record.index}")
        self.scale_downs += 1
        self._m_scale_downs.inc()

    def _reclaim(self, index: int):
        record = self.pool.nodes[index]
        if not record.idle:
            return  # a request landed between decision and actuation
        yield from self.pool.reclaim(index,
                                     preserve=self.preserve_on_reclaim)

    # -- reporting ----------------------------------------------------------

    def report(self) -> dict:
        served = [request for request in self.requests
                  if request.ready is not None]
        ttrs = [request.time_to_ready for request in served]
        met = sum(1 for request in served if request.met_deadline)
        abandoned = sum(1 for request in self.requests
                        if request.abandoned is not None)
        scored = len(self.requests)
        return {
            "requests": scored,
            "served": len(served),
            "abandoned": abandoned,
            "queued_at_end": len(self.queue),
            # Deadline misses and never-served requests both count
            # against attainment — dropping a request is not a way to
            # improve the SLO number.
            "slo_attainment": round(met / scored, 4) if scored else 1.0,
            "ttr_p50_seconds": round(percentile(ttrs, 50), 3),
            "ttr_p95_seconds": round(percentile(ttrs, 95), 3),
            "wasted_node_seconds": round(
                self.pool.wasted_node_seconds(), 1),
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "decisions": len(self.decisions),
            "reclaims": sum(record.reclaims
                            for record in self.pool.nodes),
            "reclaim_p95_seconds": round(
                percentile(self.pool.reclaim_latencies, 95), 3),
            "fluid_deploys": self.pool.fluid_deploys,
            "fluid_demotions": dict(
                sorted(self.pool.fluid_demotions.items())),
            "fleet": self.pool.describe(),
        }


# -- canned scenario for replay checks ---------------------------------------

def elasticity_scenario(image_factory, node_count: int = 6,
                        server_count: int = 1, p2p: bool = True,
                        policy_name: str = "reactive",
                        placement_name: str = "cache-aware",
                        demand_name: str = "flash-crowd",
                        demand_seed: int = 20150314,
                        duration: float = 1800.0, tick: float = 15.0,
                        vmxoff_mode: str = "resident",
                        telemetry_factory=None,
                        fast_lane: bool = True):
    """A canned autoscaling run for :func:`~repro.analysis.replay.
    check_replay` — fresh environment and testbed per call, per the
    checker's contract.  Exercises grow -> shrink -> grow so the
    reclaim path's determinism is part of the digest.
    """
    from repro.cloud import build_testbed
    from repro.ctl.demand import DEMANDS
    from repro.ctl.placement import PLACEMENTS
    from repro.ctl.policy import POLICIES
    from repro.sim import Environment

    def scenario(recorder) -> None:
        env = Environment(fast_lane=fast_lane)
        telemetry = NULL_TELEMETRY if telemetry_factory is None \
            else telemetry_factory(env)
        testbed = build_testbed(node_count=node_count,
                                server_count=server_count, p2p=p2p,
                                image=image_factory(), env=env,
                                telemetry=telemetry)
        recorder.attach(env)
        pool = NodePool(testbed, vmxoff_mode=vmxoff_mode,
                        telemetry=telemetry)
        controller = ElasticController(
            pool, DEMANDS[demand_name](seed=demand_seed),
            POLICIES[policy_name](), PLACEMENTS[placement_name](),
            tick=tick, telemetry=telemetry)
        env.run(until=env.process(controller.run(duration),
                                  name="ctl-loop"))

    return scenario
