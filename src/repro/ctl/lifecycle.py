"""Node lifecycle FSM and the bare-metal reclaim path.

The paper makes deployment fast; elasticity additionally needs the
*other* half of the lifecycle — a node that stops serving must return
to the free pool, cheaply, so the same metal can absorb the next
spike (M2's provision → run → scrub → reclaim loop).  The FSM here:

::

    free ──▶ netbooting ──▶ deploying ──▶ ready
     ▲                                      │
     │                                      ▼ (idle, scale-down)
     └── scrubbing ◀────────────────── draining
                (failed is reachable from every busy state)

Forward edges wrap the existing :class:`~repro.cloud.provisioner.
Provisioner`; the reclaim edges are new:

* **draining** — let in-flight work settle, then take the machine back
  from the guest.  A ``resident``-mode node still carries the dormant
  VMM, so re-virtualization is a sub-second re-arm; a fully
  de-virtualized node must power-cycle through firmware and netboot
  (the several-minute penalty the paper measured — which is exactly
  why resident mode earns its keep in an elastic cloud).  A node still
  *deploying* shuts down gracefully via the VMM's bitmap-persist path.
* **scrubbing** — either wipe the image extent (one sequential pass at
  disk write bandwidth: the new tenant must never see old data), or
  **preserve** it: the node's pristine blocks (FILLED by the copier,
  never guest-written) are snapshotted to the protected disk region so
  the next deployment of the same image resumes warm, and the node's
  peer chunk service re-publishes them — a *free* node that feeds the
  next scale-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import params
from repro.cloud.provisioner import Provisioner
from repro.hw.memory import MemoryMapError
from repro.hw.platform import BAREMETAL
from repro.obs.telemetry import NULL_TELEMETRY
from repro.storage.blockdev import BlockOp, BlockRequest
from repro.vmm.bmcast import BmcastVmm
from repro.vmm.devirt import reset_virtualization

# -- states -------------------------------------------------------------------

FREE = "free"
NETBOOTING = "netbooting"
DEPLOYING = "deploying"
READY = "ready"
DRAINING = "draining"
SCRUBBING = "scrubbing"
FAILED = "failed"

STATES = (FREE, NETBOOTING, DEPLOYING, READY, DRAINING, SCRUBBING, FAILED)

#: Legal FSM edges.  ``failed`` is reachable from every busy state and
#: recovers through a scrub (the only safe route back to the pool).
TRANSITIONS = {
    FREE: (NETBOOTING,),
    NETBOOTING: (DEPLOYING, FAILED),
    DEPLOYING: (READY, FAILED),
    READY: (DRAINING, FAILED),
    DRAINING: (SCRUBBING, FAILED),
    SCRUBBING: (FREE, FAILED),
    FAILED: (SCRUBBING,),
}

#: Declared protocol model for ``repro check``'s FSM pass.  The edge
#: list is written out independently of ``TRANSITIONS`` on purpose:
#: the checker extracts the implementation table and diffs it against
#: this spec, so an edit to either one alone fails the check.  The
#: spec graph itself is also checked for reachability, dead states,
#: and a recovery edge out of every busy state.
SIMCHECK_FSM = {
    "name": "node-lifecycle",
    "initial": FREE,
    "recovery": FAILED,
    "states": STATES,
    "transitions": {
        FREE: (NETBOOTING,),
        NETBOOTING: (DEPLOYING, FAILED),
        DEPLOYING: (READY, FAILED),
        READY: (DRAINING, FAILED),
        DRAINING: (SCRUBBING, FAILED),
        SCRUBBING: (FREE, FAILED),
        FAILED: (SCRUBBING,),
    },
    "extract": {"kind": "transitions-literal", "source": "TRANSITIONS"},
}

#: Re-arming the dormant resident VMM: reinstall intercepts and
#: re-protect its (still reserved) memory — no firmware, no PXE.
RESIDENT_REARM_SECONDS = 0.5

#: Sectors wiped beyond the image extent: the protected bitmap-save
#: region must not survive a scrub (a stale snapshot would warm-start
#: the next tenant from another tenant's deployment state).
SCRUB_TRAILER_SECTORS = 128


class LifecycleError(RuntimeError):
    """An illegal FSM transition or reclaim from the wrong state."""


@dataclass
class NodeRecord:
    """One node's position in the lifecycle, with full history."""

    index: int
    state: str = FREE
    #: Time of the last transition.
    since: float = 0.0
    #: (time, state) for every transition, in order.
    history: list = field(default_factory=list)
    instance: object = None
    vmm: BmcastVmm | None = None
    #: Pristine copy-block indexes preserved by the last reclaim.
    warm_blocks: set = field(default_factory=set)
    #: The admitted request currently served by this node, if any.
    request: object = None
    #: (start, end) intervals this node spent serving a request.
    service_log: list = field(default_factory=list)
    deploys: int = 0
    reclaims: int = 0
    fail_reason: str | None = None

    def transition(self, now: float, state: str) -> None:
        if state not in TRANSITIONS.get(self.state, ()):
            raise LifecycleError(
                f"node {self.index}: illegal transition "
                f"{self.state!r} -> {state!r}")
        self.state = state
        self.since = now
        self.history.append((now, state))

    @property
    def idle(self) -> bool:
        return self.state == READY and self.request is None


class NodePool:
    """The lifecycle FSM over one testbed's machines.

    Wraps a :class:`~repro.cloud.provisioner.Provisioner` for the
    forward path and owns the reclaim path.  Every deployment uses
    ``vmxoff_mode`` (default ``resident`` — the mode that makes
    reclaim fast); ``preserve`` selects scrub-vs-preserve at reclaim
    time and can be overridden per call.
    """

    def __init__(self, testbed, provisioner: Provisioner | None = None,
                 vmxoff_mode: str = "resident",
                 drain_seconds: float = 2.0,
                 deploy_options: dict | None = None,
                 telemetry=None):
        self.testbed = testbed
        self.env = testbed.env
        self.provisioner = provisioner or Provisioner(testbed)
        if vmxoff_mode not in ("full", "module-assisted", "resident"):
            raise ValueError(f"unknown vmxoff mode {vmxoff_mode!r}")
        self.vmxoff_mode = vmxoff_mode
        self.drain_seconds = drain_seconds
        self.deploy_options = dict(deploy_options or {})
        self.telemetry = telemetry if telemetry is not None \
            else getattr(testbed, "telemetry", NULL_TELEMETRY)
        self.nodes = [NodeRecord(index=i, since=self.env.now,
                                 history=[(self.env.now, FREE)])
                      for i in range(len(testbed.nodes))]
        #: Deploy-start-to-ready seconds, one entry per deployment.
        self.time_to_ready: list[float] = []
        #: Fluid fast-path outcomes across deployments: how many ran
        #: (still) fluid at ready, and how many were demoted, by reason.
        self.fluid_deploys = 0
        self.fluid_demotions: dict[str, int] = {}
        #: Reclaim-start-to-free seconds, one entry per reclaim.
        self.reclaim_latencies: list[float] = []
        registry = self.telemetry.registry
        self._m_ttr = registry.histogram(
            "ctl_time_to_ready_seconds",
            help="deploy-start to instance-ready per node deployment")
        self._m_reclaim = registry.histogram(
            "ctl_reclaim_seconds",
            help="drain-start to returned-to-free-pool per reclaim")
        self._m_deploys = registry.counter(
            "ctl_deploys_total", help="node deployments started")
        self._m_reclaims = registry.counter(
            "ctl_reclaims_total", help="node reclamations completed")

    def __len__(self) -> int:
        return len(self.nodes)

    # -- queries ------------------------------------------------------------

    def counts(self) -> dict:
        """State -> node count (every state always present)."""
        result = {state: 0 for state in STATES}
        for record in self.nodes:
            result[record.state] += 1
        return result

    def in_state(self, *states) -> list[NodeRecord]:
        return [record for record in self.nodes if record.state in states]

    def free_nodes(self) -> list[NodeRecord]:
        return self.in_state(FREE)

    def idle_ready(self) -> list[NodeRecord]:
        return [record for record in self.nodes if record.idle]

    def busy(self) -> int:
        """Nodes currently serving a request."""
        return sum(1 for record in self.nodes
                   if record.state == READY and record.request is not None)

    def provisioned(self) -> int:
        """Nodes that are, or are becoming, serving capacity."""
        return len(self.in_state(NETBOOTING, DEPLOYING, READY))

    def peer_port_of(self, index: int) -> str | None:
        node = self.testbed.nodes[index]
        fabric = getattr(self.testbed, "fabric", None)
        if fabric is None or node.peer_nic is None:
            return None
        return fabric.peer_port_of(node.vmm_nic.name)

    # -- forward path -------------------------------------------------------

    def deploy(self, index: int, **options):
        """Generator: free -> netbooting -> deploying -> ready.

        Returns the :class:`~repro.cloud.instance.Instance`.  A node
        with preserved warm blocks resumes from its on-disk snapshot:
        those blocks never refetch, and the OS boot reads them locally.
        """
        record = self.nodes[index]
        record.transition(self.env.now, NETBOOTING)
        started = self.env.now
        self._m_deploys.inc()
        # A stale warm-source responder must release the NIC before the
        # new deployment's own peer service binds to it.
        stale = record.vmm.peer_service if record.vmm is not None else None
        if stale is not None:
            stale.stop()
        merged = {**self.deploy_options, **options}
        merged.setdefault("vmxoff_mode", self.vmxoff_mode)
        if record.warm_blocks:
            merged.setdefault("resume", True)
        try:
            instance = yield from self.provisioner.deploy(
                "bmcast", node_index=index, skip_firmware=True, **merged)
        except Exception as error:
            record.fail_reason = str(error)
            record.transition(self.env.now, FAILED)
            raise
        record.instance = instance
        record.vmm = instance.platform
        record.deploys += 1
        record.warm_blocks = set()
        # Backfill the netbooting -> deploying edge from the VMM's own
        # phase log (the instant the guest was first allowed to run).
        deploy_at = next((stamp for stamp, phase in record.vmm.phase_log
                          if phase == "deployment"), self.env.now)
        record.state = DEPLOYING
        record.history.append((deploy_at, DEPLOYING))
        record.transition(self.env.now, READY)
        elapsed = self.env.now - started
        self.time_to_ready.append(elapsed)
        self._m_ttr.observe(elapsed)
        fluid = getattr(record.vmm, "fluid", None)
        if fluid is not None and fluid.requested:
            if fluid.demotion_reason is not None:
                reason = fluid.demotion_reason
                self.fluid_demotions[reason] = \
                    self.fluid_demotions.get(reason, 0) + 1
            else:
                self.fluid_deploys += 1
        if record.vmm.resumed_from_disk \
                and record.vmm.peer_service is not None:
            # The resumed blocks were FILLED before the copier ever ran,
            # so no fill callback will announce them — publish now.
            record.vmm.peer_service.publish()
        return instance

    # -- assignment ---------------------------------------------------------

    def assign(self, index: int, request) -> None:
        record = self.nodes[index]
        if not record.idle:
            raise LifecycleError(
                f"node {index} is not idle ready (state {record.state})")
        record.request = request
        record.service_log.append([self.env.now, None])

    def release(self, index: int) -> None:
        record = self.nodes[index]
        if record.request is None:
            raise LifecycleError(f"node {index} has no assigned request")
        record.request = None
        record.service_log[-1][1] = self.env.now

    # -- reclaim path -------------------------------------------------------

    def reclaim(self, index: int, preserve: bool = True):
        """Generator: ready -> draining -> scrubbing -> free.

        Returns the reclaim latency in seconds.  ``preserve`` keeps the
        pristine image blocks (warm pool + peer source); otherwise the
        image extent is wiped.
        """
        record = self.nodes[index]
        if record.state not in (READY, FAILED):
            raise LifecycleError(
                f"cannot reclaim node {index} from {record.state!r}")
        if record.request is not None:
            raise LifecycleError(
                f"node {index} still serves a request; release it first")
        started = self.env.now
        if record.state == FAILED:
            # Recovery route: no orderly drain possible, scrub only.
            preserve = False
            pristine = set()
            yield from self._power_cycle_into_control(record)
            record.transition(self.env.now, SCRUBBING)
        else:
            record.transition(self.env.now, DRAINING)
            pristine = yield from self._drain(record)
            record.transition(self.env.now, SCRUBBING)
        node = self.testbed.nodes[index]
        if preserve and pristine:
            yield from self._persist_warm_snapshot(record, pristine)
            record.warm_blocks = set(pristine)
            service = record.vmm.peer_service \
                if record.vmm is not None else None
            if service is not None:
                yield from self._republish_warm(service)
        else:
            yield from self._scrub(record)
            record.warm_blocks = set()
        node.machine.set_condition(BAREMETAL)
        record.instance = None
        record.transition(self.env.now, FREE)
        record.reclaims += 1
        elapsed = self.env.now - started
        self.reclaim_latencies.append(elapsed)
        self._m_reclaim.observe(elapsed)
        self._m_reclaims.inc()
        self.telemetry.causal.mark("reclaim-complete")
        return elapsed

    def fail(self, index: int, reason: str) -> None:
        """Mark a node failed (operator / health-check edge)."""
        record = self.nodes[index]
        record.fail_reason = reason
        record.transition(self.env.now, FAILED)

    # -- reclaim internals --------------------------------------------------

    def _drain(self, record: NodeRecord):
        """Generator: settle in-flight work, take the machine back.

        Returns the pristine block set measured at the moment the guest
        epoch ended.
        """
        vmm = record.vmm
        yield self.env.timeout(self.drain_seconds)
        if vmm.phase == "deployment":
            # Mid-deployment shrink: the VMM's own graceful-shutdown
            # path stops the copier, persists the bitmap, and tears the
            # virtualization down (memory released, CPUs VMXOFF).
            pristine = vmm.pristine_blocks()
            yield from vmm.shutdown()
            return pristine
        while vmm.phase == "devirtualization":
            # The drain landed inside the (brief) teardown window; let
            # the devirtualizer reach a settled state first.
            yield self.env.timeout(1e-3)
        if vmm.phase != "baremetal":
            raise LifecycleError(
                f"node {record.index}: cannot drain from VMM phase "
                f"{vmm.phase!r}")
        pristine = vmm.pristine_blocks()
        yield from self._power_cycle_into_control(record)
        return pristine

    def _power_cycle_into_control(self, record: NodeRecord):
        """Generator: end the guest epoch, return to netboot-ready.

        Resident mode re-arms the dormant VMM in place; full mode pays
        the firmware power-cycle plus a PXE netboot of the reclaim
        agent — the asymmetry the elasticity bench measures.
        """
        vmm = record.vmm
        machine = self.testbed.nodes[record.index].machine
        if vmm is not None and vmm.devirtualizer.vmxoff_mode == "resident":
            yield self.env.timeout(RESIDENT_REARM_SECONDS)
        else:
            yield from machine.firmware.reboot()
            yield from machine.firmware.network_boot()
            yield self.env.timeout(params.BMCAST_VMM_BOOT_SECONDS)
        reset_virtualization(
            machine,
            None if vmm is None
            else vmm.devirtualizer.management_nic_slot)
        if vmm is not None:
            self._release_vmm_memory(machine, vmm)

    @staticmethod
    def _release_vmm_memory(machine, vmm) -> None:
        region = getattr(vmm, "reserved_region", None)
        if region is not None and region in machine.memory.regions:
            try:
                machine.memory.release(region)
            except MemoryMapError:
                pass  # already usable (shutdown / release_memory path)

    def _persist_warm_snapshot(self, record: NodeRecord, pristine):
        """Generator: write a pristine-only bitmap snapshot to disk.

        The next deployment boots with ``resume=True`` and finds these
        blocks FILLED — content the copier wrote and no guest touched,
        so trusting it is safe for a *new* tenant.  Guest-written
        blocks are left EMPTY: they refetch from the fabric.
        """
        vmm = record.vmm
        bitmap = vmm.bitmap
        filled = self._runs_of(sorted(pristine))
        snapshot = {
            "image_sectors": bitmap.image_sectors,
            "block_sectors": bitmap.block_sectors,
            "filled": tuple((start, end, True) for start, end in filled),
            "dirty": (),
        }
        node = self.testbed.nodes[record.index]
        lba = vmm.deployment.protected_lba
        count = vmm.deployment.protected_sectors
        request = BlockRequest(BlockOp.WRITE, lba, count, origin="vmm")
        request.buffer.runs = [(lba, lba + count,
                                (BmcastVmm.BITMAP_TOKEN, snapshot))]
        yield from node.disk.execute(request)

    @staticmethod
    def _runs_of(blocks: list) -> list:
        """Sorted block indexes -> (start, end) runs."""
        runs: list = []
        for block in blocks:
            if runs and runs[-1][1] == block:
                runs[-1][1] = block + 1
            else:
                runs.append([block, block + 1])
        return [(start, end) for start, end in runs]

    def _republish_warm(self, service):
        """Generator: re-arm the node's responder as a warm source.

        ``start()`` is a no-op on a live responder, so this covers both
        the still-serving case (devirtualized node whose agent kept
        running) and the stopped case (mid-deployment shutdown).
        """
        service.serve_warm()
        yield self.env.timeout(0.0)

    def _scrub(self, record: NodeRecord):
        """Generator: one sequential wipe of the image extent.

        Covers the image plus the protected bitmap-save region, so
        neither tenant data nor a stale warm snapshot survives into the
        next lease.
        """
        node = self.testbed.nodes[record.index]
        vmm = record.vmm
        image_sectors = self.testbed.image.total_sectors \
            if vmm is None else vmm.bitmap.image_sectors
        extent = min(image_sectors + SCRUB_TRAILER_SECTORS,
                     node.disk.total_sectors)
        service = vmm.peer_service if vmm is not None else None
        if service is not None:
            service.stop()
        request = BlockRequest(BlockOp.WRITE, 0, extent, origin="vmm")
        request.buffer.runs = [(0, extent, None)]
        yield from node.disk.execute(request)

    # -- reporting ----------------------------------------------------------

    def wasted_node_seconds(self, until: float | None = None) -> float:
        """Node-seconds provisioned (or in transition) but not serving.

        The elasticity cost metric: every second a node is out of the
        free pool without a request on it is capacity paid for and not
        used — deployment, drain, scrub, and idle-ready time all count.
        """
        end = self.env.now if until is None else until
        total = 0.0
        for record in self.nodes:
            edges = record.history + [(end, record.state)]
            occupied = 0.0
            for (start, state), (stop, _) in zip(edges, edges[1:]):
                if state != FREE:
                    occupied += min(stop, end) - min(start, end)
            serving = sum(
                (end if stop is None else stop) - start
                for start, stop in record.service_log)
            total += occupied - serving
        return total

    def describe(self) -> dict:
        counts = self.counts()
        return {
            "nodes": len(self.nodes),
            **counts,
            "deploys": sum(record.deploys for record in self.nodes),
            "reclaims": sum(record.reclaims for record in self.nodes),
            "warm_nodes": sum(1 for record in self.nodes
                              if record.warm_blocks),
        }
