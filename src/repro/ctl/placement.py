"""Placement: which free node should the next deployment land on?

On a cloud with the reclaim-and-preserve path, free nodes are not
interchangeable: one that recently ran the same image still holds its
pristine blocks on disk (and may be advertising them to the peer
fabric), so deploying *there* skips most of the fetch traffic.

* :class:`RoundRobinPlacement` — the oblivious baseline: rotate
  through free nodes in index order.
* :class:`CacheAwarePlacement` — score each free node by how many of
  the requested image's copy blocks it already holds, preferring the
  peer directory's advertised summary (exact, includes what the node
  serves to others) and falling back to the lifecycle record's
  preserved warm set on non-p2p testbeds.  Ties and zero-score nodes
  decay to round-robin order so cold nodes still wear evenly.

``benchmarks/bench_elasticity.py`` measures the difference as p95
time-to-ready at equal fleet size.
"""

from __future__ import annotations


class RoundRobinPlacement:
    """Rotate through free nodes in index order (cache-oblivious)."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def choose(self, pool, free_nodes, image_blocks) -> int:
        """Pick one of ``free_nodes`` (NodeRecords); returns its index."""
        indexes = sorted(record.index for record in free_nodes)
        for candidate in indexes:
            if candidate >= self._next:
                self._next = candidate + 1
                return candidate
        # Wrapped: take the lowest free index.
        chosen = indexes[0]
        self._next = chosen + 1
        return chosen


class CacheAwarePlacement:
    """Prefer the free node with the most image blocks already local."""

    name = "cache-aware"

    def __init__(self):
        self._fallback = RoundRobinPlacement()

    def score(self, pool, record, image_blocks) -> int:
        """Copy blocks of the wanted image this node already holds."""
        fabric = getattr(pool.testbed, "fabric", None)
        peer_port = pool.peer_port_of(record.index)
        if fabric is not None and peer_port is not None:
            advertised = fabric.directory.overlap(peer_port, image_blocks)
            if advertised:
                return advertised
        # Non-p2p testbed (or the responder is down): trust the
        # lifecycle record of what the last reclaim preserved.
        return len(record.warm_blocks & image_blocks)

    def choose(self, pool, free_nodes, image_blocks) -> int:
        scored = sorted(
            ((self.score(pool, record, image_blocks), record.index)
             for record in free_nodes),
            key=lambda pair: (-pair[0], pair[1]))
        best_score, best_index = scored[0]
        if best_score == 0:
            # Nothing warm anywhere: wear-level like the baseline.
            return self._fallback.choose(pool, free_nodes, image_blocks)
        return best_index


def image_block_set(testbed) -> set[int]:
    """Copy-block indexes the testbed's image occupies.

    The ``wanted`` set placement scores against; on fabrics this uses
    the fabric's block geometry (must match the peer directory), else
    the default copy-block size.
    """
    from repro import params
    fabric = getattr(testbed, "fabric", None)
    if fabric is not None:
        return set(fabric.blocks_of(0, testbed.image.total_sectors))
    block_sectors = params.COPY_BLOCK_BYTES // params.SECTOR_BYTES
    blocks = (testbed.image.total_sectors + block_sectors - 1) \
        // block_sectors
    return set(range(blocks))


#: Name -> zero-argument factory, for the CLI and benches.
PLACEMENTS = {
    "round-robin": RoundRobinPlacement,
    "cache-aware": CacheAwarePlacement,
}
