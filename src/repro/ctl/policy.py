"""Autoscaler policies: how many nodes should be provisioned?

Each control tick the :class:`~repro.ctl.controller.ElasticController`
builds an :class:`Observation` of the fleet and asks its policy for a
:class:`ScaleDecision` — a target provisioned-node count plus the
reason, which lands in the scale-decision log and the forensics
timeline.  Policies are pure functions of the observation stream plus
their own bounded history: no wall clock, no hidden randomness, so an
autoscaling run replays bit-identically (``--replay-check``).

Three members, spanning the classic design space:

* :class:`ReactivePolicy` — threshold on the observed queue with
  hysteresis and a cooldown, the industry-default feedback loop.
* :class:`PredictivePolicy` — a moving-window arrival-rate forecast
  turned into a capacity target via Little's law, so capacity starts
  building *before* the queue does.
* :class:`HeadroomPolicy` — always keep ``headroom`` idle-ready nodes
  on top of demand; simple, fast to react, pays for the spare metal.

The interesting economics: a slow-to-provision cloud must overprovision
(HeadroomPolicy) to hit deadlines, while a fast-deploy/fast-reclaim
cloud (the paper's contribution) can run the cheaper reactive loop and
still meet the SLO — ``benchmarks/bench_elasticity.py`` quantifies
exactly that trade.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Observation:
    """What the controller can see at one tick."""

    now: float
    #: Requests admitted but not yet assigned to a ready node.
    queue_depth: int
    #: Nodes currently serving a request.
    busy: int
    #: Ready nodes with no request on them.
    idle: int
    #: Nodes free (fully reclaimed, available to deploy).
    free: int
    #: Nodes in netbooting/deploying (capacity in flight).
    deploying: int
    #: Nodes draining or scrubbing (capacity leaving).
    reclaiming: int
    #: Arrivals since the previous tick.
    arrived: int
    #: Requests that completed their hold since the previous tick.
    completed: int

    @property
    def provisioned(self) -> int:
        """Capacity that exists or is being built."""
        return self.busy + self.idle + self.deploying

    @property
    def total_nodes(self) -> int:
        return (self.busy + self.idle + self.free + self.deploying
                + self.reclaiming)


@dataclass(frozen=True)
class ScaleDecision:
    """Target provisioned-node count plus the why."""

    target: int
    reason: str

    def delta(self, observation: Observation) -> int:
        return self.target - observation.provisioned


class ReactivePolicy:
    """Queue-threshold feedback with hysteresis and cooldown.

    Scale up one node per ``up_per`` queued requests once the queue
    exceeds ``queue_high``; scale down only when the queue has been
    empty *and* at least ``idle_low`` nodes sat idle for
    ``settle_ticks`` consecutive ticks (hysteresis — a momentary lull
    must not shed capacity a second spike will need).  ``cooldown``
    seconds must pass between scale-downs so reclaim churn never
    oscillates.
    """

    name = "reactive"

    def __init__(self, queue_high: int = 2, up_per: int = 2,
                 idle_low: int = 2, settle_ticks: int = 3,
                 cooldown: float = 300.0, min_nodes: int = 1):
        self.queue_high = queue_high
        self.up_per = up_per
        self.idle_low = idle_low
        self.settle_ticks = settle_ticks
        self.cooldown = cooldown
        self.min_nodes = min_nodes
        self._calm_ticks = 0
        self._last_shrink = None

    def decide(self, observation: Observation) -> ScaleDecision:
        provisioned = observation.provisioned
        if observation.queue_depth > self.queue_high:
            self._calm_ticks = 0
            extra = -(-observation.queue_depth // self.up_per)  # ceil
            target = min(observation.total_nodes, provisioned + extra)
            return ScaleDecision(
                target, f"queue {observation.queue_depth} > "
                        f"{self.queue_high}: +{target - provisioned}")
        if observation.queue_depth == 0 \
                and observation.idle >= self.idle_low:
            self._calm_ticks += 1
        else:
            self._calm_ticks = 0
        cooled = (self._last_shrink is None
                  or observation.now - self._last_shrink >= self.cooldown)
        if self._calm_ticks >= self.settle_ticks and cooled \
                and provisioned > self.min_nodes:
            # Shed idle capacity, but never below what is in use.
            target = max(self.min_nodes, observation.busy + 1,
                         provisioned - observation.idle + 1)
            if target < provisioned:
                self._last_shrink = observation.now
                self._calm_ticks = 0
                return ScaleDecision(
                    target, f"idle {observation.idle} for "
                            f"{self.settle_ticks} ticks: "
                            f"-{provisioned - target}")
        return ScaleDecision(provisioned, "hold")


class PredictivePolicy:
    """Little's-law forecast over a moving arrival window.

    Keeps the last ``window_ticks`` (arrivals, completions) samples;
    the forecast capacity is ``arrival_rate × mean_hold`` (the steady
    state concurrency Little's law predicts) plus the current backlog,
    padded by ``margin``.  Reacts before the queue grows — at the cost
    of trusting the recent past to predict the near future.
    """

    name = "predictive"

    def __init__(self, window_ticks: int = 10, mean_hold: float = 600.0,
                 margin: float = 1.25, min_nodes: int = 1):
        self.window_ticks = window_ticks
        self.mean_hold = mean_hold
        self.margin = margin
        self.min_nodes = min_nodes
        self._window: list = []  # (tick_seconds, arrivals)
        self._hold_estimate = mean_hold
        self._active_holds: list = []

    def note_hold(self, hold: float) -> None:
        """Controller feedback: an admitted request's declared hold."""
        self._active_holds.append(hold)
        if len(self._active_holds) > 64:
            self._active_holds.pop(0)
        self._hold_estimate = (sum(self._active_holds)
                               / len(self._active_holds))

    def decide(self, observation: Observation) -> ScaleDecision:
        self._window.append(observation)
        if len(self._window) > self.window_ticks:
            self._window.pop(0)
        span = (self._window[-1].now - self._window[0].now) \
            if len(self._window) > 1 else 0.0
        arrivals = sum(obs.arrived for obs in self._window)
        if span <= 0.0:
            rate = 0.0
        else:
            rate = arrivals / span
        forecast = rate * self._hold_estimate
        target = max(
            self.min_nodes,
            int(forecast * self.margin + 0.5) + observation.queue_depth,
            observation.busy,
        )
        target = min(target, observation.total_nodes)
        return ScaleDecision(
            target,
            f"rate {rate * 3600:.1f}/h x hold {self._hold_estimate:.0f}s "
            f"-> {forecast:.1f} + queue {observation.queue_depth}")


class HeadroomPolicy:
    """Always keep ``headroom`` idle-ready nodes above current demand.

    The overprovisioning baseline: capacity follows ``busy + queue``
    with a fixed cushion, so deadlines are met by paying for spare
    metal around the clock.  Its wasted-node-seconds column is the
    price agility lets the other policies avoid.
    """

    name = "headroom"

    def __init__(self, headroom: int = 2, min_nodes: int = 1):
        self.headroom = headroom
        self.min_nodes = min_nodes

    def decide(self, observation: Observation) -> ScaleDecision:
        wanted = (observation.busy + observation.queue_depth
                  + self.headroom)
        target = min(observation.total_nodes,
                     max(self.min_nodes, wanted))
        return ScaleDecision(
            target, f"busy {observation.busy} + queue "
                    f"{observation.queue_depth} + headroom "
                    f"{self.headroom}")


#: Name -> zero-argument factory, for the CLI and benches.
POLICIES = {
    "reactive": ReactivePolicy,
    "predictive": PredictivePolicy,
    "headroom": HeadroomPolicy,
}
