"""repro.dist — the scale-out image-distribution fabric.

The paper's deployment path funnels every instance through one AoE
storage server, and its own evaluation (Section 4.2) shows that target
saturating under concurrent deployments.  This package removes the
funnel:

* :class:`DistFabric` — a *replica set* of AoE targets sharing one
  logical image, plus the fabric-wide peer directory;
* :mod:`repro.dist.selector` — pluggable initiator-side replica
  selection (round-robin, consistent-hash-by-LBA, least-outstanding,
  RTT-aware);
* :class:`PeerChunkService` — a deploying node's lightweight AoE
  responder serving blocks its bitmap already marks local, with bitmap
  summaries gossiped to the :class:`PeerDirectory`;
* :class:`FetchRouter` — routes each VMM fetch to a peer when one
  advertises the block, an origin replica otherwise.

The wave scheduler that exploits all of this lives in
:mod:`repro.cloud.scaleout`.
"""

from repro.dist.fabric import DistFabric
from repro.dist.peer import LocalChunkStore, PeerChunkService, PeerDirectory
from repro.dist.router import FetchRouter
from repro.dist.selector import (
    POLICIES,
    ConsistentHashSelector,
    LeastOutstandingSelector,
    ReplicaSelector,
    RoundRobinSelector,
    RttAwareSelector,
    make_selector,
)

__all__ = [
    "POLICIES",
    "ConsistentHashSelector",
    "DistFabric",
    "FetchRouter",
    "LeastOutstandingSelector",
    "LocalChunkStore",
    "PeerChunkService",
    "PeerDirectory",
    "ReplicaSelector",
    "RoundRobinSelector",
    "RttAwareSelector",
    "make_selector",
]
