"""The distribution fabric: replica set + peer directory + policy.

One :class:`DistFabric` per testbed describes how image data flows at
scale: the origin replica ports (each an independent AoE target over
its own image store), the replica-selection policy every initiator
instantiates, and — when peer-to-peer serving is on — the shared
:class:`~repro.dist.peer.PeerDirectory` the chunk services gossip
their bitmap summaries into.

``build_testbed(server_count=N, p2p=True, select_policy=...)``
assembles one automatically; the provisioner hands it to each BMcast
VMM, which routes its fetches through a per-node
:class:`~repro.dist.router.FetchRouter`.
"""

from __future__ import annotations

from repro import params
from repro.dist.peer import PeerDirectory
from repro.dist.selector import make_selector
from repro.obs.telemetry import NULL_TELEMETRY

#: Suffix appended to a node's VMM port name to form its peer port.
PEER_PORT_SUFFIX = "-peer"


class DistFabric:
    """Fabric description shared by every node on one testbed."""

    def __init__(self, replica_ports,
                 select_policy: str = "round-robin",
                 p2p: bool = False,
                 block_bytes: int = params.COPY_BLOCK_BYTES,
                 telemetry=NULL_TELEMETRY):
        self.replica_ports = list(replica_ports)
        if not self.replica_ports:
            raise ValueError("fabric needs at least one replica port")
        self.select_policy = select_policy
        self.p2p = p2p
        self.block_sectors = block_bytes // params.SECTOR_BYTES
        self.directory = PeerDirectory()
        self.telemetry = telemetry
        # Validate the policy name eagerly (fail at build, not deploy).
        make_selector(select_policy, self.replica_ports)

    def make_selector(self, telemetry=None):
        """A fresh selector instance for one initiator."""
        return make_selector(self.select_policy, self.replica_ports,
                             telemetry=telemetry or self.telemetry)

    def blocks_of(self, lba: int, sector_count: int) -> list[int]:
        """Copy-block indexes overlapped by a sector range."""
        first = lba // self.block_sectors
        last = (lba + sector_count - 1) // self.block_sectors
        return list(range(first, last + 1))

    @staticmethod
    def peer_port_of(vmm_port: str) -> str:
        """The peer-service port name for a node's VMM port."""
        return vmm_port + PEER_PORT_SUFFIX

    def describe(self) -> dict:
        return {
            "replicas": list(self.replica_ports),
            "select_policy": self.select_policy,
            "p2p": self.p2p,
            "peers_registered": len(self.directory),
        }
