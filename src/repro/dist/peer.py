"""Peer-to-peer chunk serving for scale-out deployments.

A deploying (or already deployed) node runs a lightweight AoE responder
— :class:`PeerChunkService` — on its own switch port.  It serves only
sectors whose copy blocks its deployment bitmap marks FILLED *and* that
the guest has never written (pristine image data); anything else gets
an immediate :class:`~repro.aoe.protocol.AoeNak` so the requester can
fall back to an origin replica without burning its retry budget.

Nodes advertise what they can serve with *bitmap summaries* — the set
of pristine filled copy-block indexes — published to the fabric's
:class:`PeerDirectory`.  Publication piggybacks on traffic the node is
already generating (the copier's fetch stream), so a summary costs no
extra frames; it is batched every :data:`PeerChunkService.ANNOUNCE_BLOCKS`
block fills.  Summaries only ever *add* blocks, so a stale entry is
safe: at worst a request hits a peer whose block was just tainted by a
guest write, and the NAK path corrects the directory.
"""

from __future__ import annotations

from repro.aoe.protocol import AoeCommand, AoeNak
from repro.aoe.server import AoeServer
from repro.obs.telemetry import NULL_TELEMETRY
from repro.storage.blockdev import BlockOp, BlockRequest


class PeerDirectory:
    """Fabric-wide view of which peer serves which copy blocks.

    The control-plane side of gossip: entries are written by each
    node's chunk service when it publishes a summary and read by every
    fetch router.  Lookups return a deterministically ordered list so
    simulation runs replay identically.
    """

    def __init__(self):
        self._summaries: dict[str, set[int]] = {}
        #: Called with ``(event, port, **details)`` on every directory
        #: mutation — ``"publish"`` (``blocks=`` the new summary),
        #: ``"invalidate"`` (``block=``) and ``"withdraw"``.  The AoE
        #: conformance validator uses this to prove every NAK is
        #: followed by the matching invalidation.
        self.listeners: list = []
        self.publishes = 0
        self.invalidations = 0

    def _notify(self, event: str, port: str, **details) -> None:
        for listener in self.listeners:
            listener(event, port, **details)

    def publish(self, port: str, blocks) -> None:
        """Replace ``port``'s advertised block set."""
        self._summaries[port] = set(blocks)
        self.publishes += 1
        if self.listeners:
            self._notify("publish", port,
                         blocks=frozenset(self._summaries[port]))

    def withdraw(self, port: str) -> None:
        """Remove a peer entirely (service stopped)."""
        self._summaries.pop(port, None)
        if self.listeners:
            self._notify("withdraw", port)

    def invalidate(self, port: str, block: int) -> None:
        """A NAK proved ``port`` no longer serves ``block``."""
        summary = self._summaries.get(port)
        if summary is not None:
            summary.discard(block)
            self.invalidations += 1
            if self.listeners:
                self._notify("invalidate", port, block=block)

    def peers_for(self, blocks, exclude: str | None = None) -> list[str]:
        """Ports advertising *every* block in ``blocks``, sorted."""
        wanted = set(blocks)
        return sorted(
            port for port, summary in self._summaries.items()
            if port != exclude and wanted <= summary)

    def advertised(self, port: str) -> set[int]:
        return set(self._summaries.get(port, ()))

    def overlap(self, port: str, blocks) -> int:
        """How many of ``blocks`` the peer at ``port`` advertises.

        The cache-aware placement policy (repro.ctl) scores free nodes
        by this overlap with the requested image's block set before
        falling back to round-robin.
        """
        summary = self._summaries.get(port)
        if not summary:
            return 0
        wanted = blocks if isinstance(blocks, (set, frozenset)) \
            else set(blocks)
        return len(summary & wanted)

    def __len__(self) -> int:
        return len(self._summaries)


class LocalChunkStore:
    """Store adapter serving AoE reads from the node's local disk.

    Peer reads go through the real :class:`~repro.storage.disk.Disk`
    (its actuator Resource and seek model), so serving chunks competes
    honestly with the node's own deployment and guest I/O.
    """

    def __init__(self, env, disk):
        self.env = env
        self.disk = disk
        self.reads = 0

    def read(self, lba: int, sector_count: int):
        """Generator: content runs from the local platters."""
        self.reads += 1
        request = BlockRequest(BlockOp.READ, lba, sector_count,
                               origin="peer")
        yield from self.disk.execute(request)
        return list(request.buffer.runs)

    def write(self, lba: int, runs: list):
        raise RuntimeError("peer chunk service is read-only")


class PeerChunkService(AoeServer):
    """The lightweight AoE responder a deploying node runs.

    Reuses the origin target's receive/serve machinery with three
    differences: it reads from the local disk instead of an image
    store, it answers only for pristine FILLED blocks (NAK otherwise),
    and it keeps a modest worker pool so serving peers never starves
    the node's own deployment.
    """

    PROTOCOL = "aoe-peer"
    COMPONENT = "peer-fabric"

    #: Publish a summary update every this many newly filled blocks.
    ANNOUNCE_BLOCKS = 8

    def __init__(self, env, nic, disk, bitmap,
                 directory: PeerDirectory,
                 workers: int = 2, telemetry=NULL_TELEMETRY):
        super().__init__(env, nic, LocalChunkStore(env, disk),
                         workers=workers, telemetry=telemetry)
        self.bitmap = bitmap
        self.directory = directory
        #: Blocks a guest write has touched — never servable again.
        self.tainted: set[int] = set()
        self._unannounced = 0
        #: After de-virtualization the mediator is gone, so *every*
        #: image-range disk write is the guest's (set by the VMM).
        self.direct_io = False
        # Two provenance signals, because the disk cannot tell who
        # programmed its controller: the bitmap reports mediated guest
        # writes, the raw disk observer covers the post-devirt era.
        bitmap.guest_write_listeners.append(self._on_guest_write)
        disk.write_observers.append(self._on_disk_write)
        # Metrics.
        self.chunks_served = 0
        self.naks_sent = 0
        registry = telemetry.registry
        self._m_chunks = registry.counter(
            "peer_chunks_served_total", node=nic.name,
            help="AoE read commands served from this peer's local disk")
        self._m_naks = registry.counter(
            "peer_naks_total", node=nic.name,
            help="peer requests refused (block not servable)")

    # -- servability --------------------------------------------------------------

    def servable(self, lba: int, sector_count: int) -> bool:
        """True when the whole range is pristine, copier-filled data."""
        for block in self.bitmap.blocks_overlapping(lba, sector_count):
            if block in self.tainted or not self.bitmap.is_filled(block):
                return False
        return True

    def summary(self) -> set[int]:
        """Pristine filled copy-block indexes — the gossip payload."""
        return {
            block
            for start, end, value in self.bitmap.filled_runs()
            for block in range(start, end)
            if block not in self.tainted
        }

    # -- gossip -------------------------------------------------------------------

    def publish(self) -> None:
        """Push the current summary to the directory now."""
        self.directory.publish(self.nic.name, self.summary())
        self._unannounced = 0

    def note_block_filled(self, block: int) -> None:
        """Copier callback: batch-publish every ANNOUNCE_BLOCKS fills.

        The update rides on the AoE command stream the copier is
        already sending (zero extra frames) — hence no wire cost here.
        """
        self._unannounced += 1
        if self._unannounced >= self.ANNOUNCE_BLOCKS \
                or self.bitmap.complete:
            self.publish()

    def mark_direct_io(self) -> None:
        """The node de-virtualized: disk writes are now all guest I/O."""
        self.direct_io = True

    def _taint(self, lba: int, sector_count: int) -> None:
        if lba >= self.bitmap.image_sectors:
            return  # bitmap-save region, not image data
        for block in self.bitmap.blocks_overlapping(lba, sector_count):
            self.tainted.add(block)

    def _on_guest_write(self, lba: int, sector_count: int) -> None:
        self._taint(lba, sector_count)

    def _on_disk_write(self, request) -> None:
        if self.direct_io:
            self._taint(request.lba, request.sector_count)

    def stop(self) -> None:
        self.directory.withdraw(self.nic.name)
        super().stop()

    def serve_warm(self) -> None:
        """Re-arm a stopped responder as a free-node warm source.

        The reclaim path (repro.ctl) preserves a node's pristine image
        blocks on the local disk; restarting the responder and
        re-publishing the summary turns the *free* node into a peer
        source for the next scale-up — capacity the fabric gets back
        for nothing.  The node has no mediator anymore, so every
        subsequent disk write is direct I/O.
        """
        self.direct_io = True
        self.start()
        self.publish()

    # -- serving ------------------------------------------------------------------

    def _serve_read(self, command: AoeCommand, reply_to: str):
        if not self.servable(command.lba, command.sector_count):
            self.naks_sent += 1
            self._m_naks.inc()
            nak = AoeNak(command.tag)
            yield from self.nic.send(reply_to, nak, nak.payload_bytes,
                                     protocol=self.PROTOCOL)
            return
        yield from super()._serve_read(command, reply_to)
        self.chunks_served += 1
        self._m_chunks.inc()
