"""Initiator-side fetch routing over replicas and peers.

The :class:`FetchRouter` slots in where the VMM previously talked to
the single storage server: the deployment context and background
copier call :meth:`read_blocks` with the initiator's exact signature,
and the router decides *where* each read goes.

Routing order per request:

1. **Peers first** (when the fabric runs p2p): if the directory lists
   peers advertising every copy block of the range, fetch from one —
   chosen by the selection policy — and fall back on NAK or timeout.
   NAKs also repair the directory entry that misled us.
2. **Origin replicas**: pick one via the policy.  Origin failures
   (:class:`~repro.aoe.client.AoeTimeoutError`) propagate to the
   caller — the copier's outage backoff stays in charge.

Writes never route: they go to the primary origin target untouched.
"""

from __future__ import annotations

from repro.aoe.client import AoeNakError, AoeTimeoutError
from repro.obs.telemetry import NULL_TELEMETRY

#: Frame tag for peer-to-peer chunk traffic (switch accounting).
PEER_PROTOCOL = "aoe-peer"


class FetchRouter:
    """Routes one VMM's image fetches through the distribution fabric."""

    def __init__(self, env, initiator, fabric, node_port: str,
                 telemetry=NULL_TELEMETRY):
        self.env = env
        self.initiator = initiator
        self.fabric = fabric
        self.node_port = node_port
        self.selector = fabric.make_selector(telemetry=telemetry)
        self.telemetry = telemetry
        # Metrics.
        self.peer_hits = 0
        self.peer_misses = 0
        self.origin_fetches = 0
        #: Peer port -> fetches it served us.  The elastic control
        #: plane reads this to prove reclaimed warm nodes actually fed
        #: the next scale-up.
        self.peer_hits_by_target: dict[str, int] = {}
        registry = telemetry.registry
        self._m_peer_hits = registry.counter(
            "dist_peer_hits_total", node=node_port,
            help="fetches served by a peer instead of an origin replica")
        self._m_peer_misses = registry.counter(
            "dist_peer_misses_total", node=node_port,
            help="peer fetch attempts that fell back to origin")
        self._m_hit_ratio = registry.gauge(
            "dist_peer_hit_ratio", node=node_port,
            help="fraction of fetches served by peers so far")

    # -- stats -------------------------------------------------------------------

    @property
    def total_fetches(self) -> int:
        return self.peer_hits + self.origin_fetches

    @property
    def peer_hit_ratio(self) -> float:
        total = self.total_fetches
        return self.peer_hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "peer_hits": self.peer_hits,
            "peer_misses": self.peer_misses,
            "origin_fetches": self.origin_fetches,
            "peer_hit_ratio": round(self.peer_hit_ratio, 4),
            "peer_hits_by_target": dict(
                sorted(self.peer_hits_by_target.items())),
            "replica_load": dict(sorted(self.selector.load.items())),
        }

    # -- fetch path --------------------------------------------------------------

    def read_blocks(self, lba: int, sector_count: int,
                    bulk: bool = False, fluid: bool = False):
        """Generator: fetch content runs via the fabric.

        Drop-in for :meth:`AoeInitiator.read_blocks` — the deployment
        context and copier cannot tell the difference.  ``fluid``
        applies only to origin fetches (peer gossip demotes fluid mode
        at arm time, but the threading is defensive either way: peer
        legs always run packet mode).
        """
        if self.fabric.p2p:
            blocks = self.fabric.blocks_of(lba, sector_count)
            if bulk and len(blocks) > 1:
                # Coalesced multi-block run from the copier: route it
                # segment by segment so partial peer coverage still
                # serves what it can.
                runs = yield from self._read_segmented(lba, sector_count,
                                                       blocks, fluid)
                return runs
            peer = self._pick_peer(lba, sector_count)
            if peer is not None:
                runs = yield from self._fetch_from_peer(
                    peer, lba, sector_count, bulk)
                if runs is not None:
                    return runs
        runs = yield from self._fetch_from_origin(lba, sector_count, bulk,
                                                  fluid)
        return runs

    def _read_segmented(self, lba: int, sector_count: int,
                        blocks: list, fluid: bool = False):
        """Split a coalesced bulk run into per-target segments.

        A single peer rarely advertises every block of a long run —
        requiring full coverage would send whole runs to origin and
        starve the peer fabric.  Instead the run is cut into maximal
        contiguous segments: at each position, either the widest block
        prefix some one peer fully covers (fetched from that peer, with
        the usual NAK/timeout fallback to origin), or the prefix of
        blocks no peer advertises (fetched from an origin replica in
        one transaction).  Segments stay in LBA order, so the returned
        runs concatenate and coalesce directly.
        """
        directory = self.fabric.directory
        own = self._own_peer_port
        block_sectors = self.fabric.block_sectors
        end = lba + sector_count
        runs: list = []
        index = 0
        total = len(blocks)
        while index < total:
            peers = directory.peers_for([blocks[index]], exclude=own)
            stop = index + 1
            if peers:
                while stop < total:
                    wider = directory.peers_for(blocks[index:stop + 1],
                                                exclude=own)
                    if not wider:
                        break
                    peers = wider
                    stop += 1
            else:
                while stop < total and not directory.peers_for(
                        [blocks[stop]], exclude=own):
                    stop += 1
            seg_start = max(lba, blocks[index] * block_sectors)
            seg_end = min(end, (blocks[stop - 1] + 1) * block_sectors)
            seg_count = seg_end - seg_start
            seg_runs = None
            if peers:
                peer = self.selector.select(seg_start, seg_count,
                                            candidates=peers)
                seg_runs = yield from self._fetch_from_peer(
                    peer, seg_start, seg_count, True)
            if seg_runs is None:
                seg_runs = yield from self._fetch_from_origin(
                    seg_start, seg_count, True, fluid)
            runs.extend(seg_runs)
            index = stop
        return _coalesce_runs(runs)

    def _pick_peer(self, lba: int, sector_count: int) -> str | None:
        blocks = self.fabric.blocks_of(lba, sector_count)
        peers = self.fabric.directory.peers_for(blocks,
                                                exclude=self._own_peer_port)
        if not peers:
            return None
        return self.selector.select(lba, sector_count, candidates=peers)

    @property
    def _own_peer_port(self) -> str:
        return self.fabric.peer_port_of(self.node_port)

    def _fetch_from_peer(self, peer: str, lba: int, sector_count: int,
                         bulk: bool):
        started = self.env.now
        self.selector.note_sent(peer)
        try:
            with self.telemetry.profiler.track("peer-fabric",
                                               "peer-fetch"):
                runs = yield from self.initiator.read_blocks(
                    lba, sector_count, bulk=bulk, target=peer,
                    protocol=PEER_PROTOCOL)
        except (AoeNakError, AoeTimeoutError):
            # The peer cannot (or can no longer) serve the range; fix
            # the directory so the next request skips it, and fall back.
            self.selector.note_complete(peer, self.env.now - started,
                                        ok=False)
            for block in self.fabric.blocks_of(lba, sector_count):
                self.fabric.directory.invalidate(peer, block)
            self.peer_misses += 1
            self._m_peer_misses.inc()
            return None
        self.selector.note_complete(peer, self.env.now - started)
        self.peer_hits += 1
        self.peer_hits_by_target[peer] = \
            self.peer_hits_by_target.get(peer, 0) + 1
        self._m_peer_hits.inc()
        self._m_hit_ratio.set(self.peer_hit_ratio)
        self.telemetry.provenance.note_fetch(
            self.node_port, lba, sector_count, peer, "peer", started,
            block_sectors=self.fabric.block_sectors)
        return runs

    def _fetch_from_origin(self, lba: int, sector_count: int,
                           bulk: bool, fluid: bool = False):
        target = self.selector.select(lba, sector_count)
        started = self.env.now
        self.selector.note_sent(target)
        try:
            with self.telemetry.profiler.track("origin",
                                               "origin-fetch"):
                if fluid:
                    runs = yield from self.initiator.read_blocks(
                        lba, sector_count, bulk=bulk, target=target,
                        fluid=True)
                else:
                    runs = yield from self.initiator.read_blocks(
                        lba, sector_count, bulk=bulk, target=target)
        except AoeTimeoutError:
            self.selector.note_complete(target, self.env.now - started,
                                        ok=False)
            raise
        self.selector.note_complete(target, self.env.now - started)
        self.origin_fetches += 1
        self._m_hit_ratio.set(self.peer_hit_ratio)
        self.telemetry.provenance.note_fetch(
            self.node_port, lba, sector_count, target, "origin", started,
            block_sectors=self.fabric.block_sectors)
        return runs


def _coalesce_runs(runs: list) -> list:
    """Merge adjacent same-token runs from consecutive segments."""
    merged: list = []
    for start, end, token in runs:
        if merged and merged[-1][1] == start and merged[-1][2] == token:
            merged[-1] = (merged[-1][0], end, token)
        else:
            merged.append((start, end, token))
    return merged
