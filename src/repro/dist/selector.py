"""Replica selection policies for the distribution fabric.

Every BMcast initiator that fetches through the fabric owns one
selector.  A selector answers one question — *which target should this
read go to?* — over a candidate list that is either the fabric's origin
replica set or, for peer fetches, the set of peers currently
advertising the wanted block.

Policies (pick with ``build_testbed(select_policy=...)``):

* ``round-robin``      — cycle through the candidates; the baseline.
* ``consistent-hash``  — hash the copy-block index onto a replica ring,
  so every node asks the *same* replica for the same block and each
  replica's page cache only ever warms ``1/N`` of the image.
* ``least-outstanding``— this initiator's in-flight request count per
  target; join the shortest queue.
* ``rtt-aware``        — per-target Jacobson/Karels estimators (the
  AoE initiator's own :class:`~repro.aoe.rtt.RttEstimator`); route to
  the lowest smoothed RTT, with a deterministic exploration tick so a
  recovering replica is re-probed.

All policies are deterministic: no wall-clock, no unseeded RNG — two
runs of the same scenario pick the same replicas in the same order.
"""

from __future__ import annotations

import hashlib

from repro import params
from repro.aoe.rtt import RttEstimator
from repro.obs.telemetry import NULL_TELEMETRY

POLICIES = ("round-robin", "consistent-hash", "least-outstanding",
            "rtt-aware")


def make_selector(policy: str, replicas, telemetry=NULL_TELEMETRY):
    """Build a selector for ``policy`` over the origin ``replicas``."""
    classes = {
        "round-robin": RoundRobinSelector,
        "consistent-hash": ConsistentHashSelector,
        "least-outstanding": LeastOutstandingSelector,
        "rtt-aware": RttAwareSelector,
    }
    cls = classes.get(policy)
    if cls is None:
        raise ValueError(
            f"unknown selection policy {policy!r}; choose from {POLICIES}")
    return cls(replicas, telemetry=telemetry)


class ReplicaSelector:
    """Base: candidate bookkeeping, load counters, decision spans."""

    policy = "base"

    def __init__(self, replicas, telemetry=NULL_TELEMETRY):
        self.replicas = list(replicas)
        if not self.replicas:
            raise ValueError("need at least one replica")
        self.telemetry = telemetry
        self.decisions = 0
        #: Requests routed per target (the per-replica load counters).
        self.load: dict[str, int] = {}
        self._outstanding: dict[str, int] = {}
        registry = telemetry.registry
        self._m_requests: dict = {}
        self._registry = registry
        self._m_decisions = registry.counter(
            "dist_selector_decisions_total", policy=self.policy,
            help="replica-selection decisions taken")

    # -- public API --------------------------------------------------------------

    def select(self, lba: int, sector_count: int,
               candidates=None) -> str:
        """Pick a target for ``[lba, lba+sector_count)``.

        ``candidates`` restricts the choice (peer fetches pass the
        ports advertising the block); ``None`` means the origin
        replica set.
        """
        pool = self.replicas if candidates is None else list(candidates)
        if not pool:
            raise ValueError("no candidates to select from")
        choice = pool[0] if len(pool) == 1 \
            else self._choose(lba, sector_count, pool)
        self.decisions += 1
        self._m_decisions.inc()
        span = self.telemetry.tracer.start(
            "select-replica", policy=self.policy, lba=lba,
            candidates=len(pool))
        self.telemetry.tracer.end(span, target=choice)
        return choice

    def note_sent(self, target: str) -> None:
        """A request was dispatched to ``target``."""
        self.load[target] = self.load.get(target, 0) + 1
        self._outstanding[target] = self._outstanding.get(target, 0) + 1
        counter = self._m_requests.get(target)
        if counter is None:
            counter = self._registry.counter(
                "dist_replica_requests_total", replica=target,
                help="fetches routed to each replica/peer target")
            self._m_requests[target] = counter
        counter.inc()

    def note_complete(self, target: str, rtt_seconds: float,
                      ok: bool = True) -> None:
        """The request to ``target`` finished after ``rtt_seconds``."""
        count = self._outstanding.get(target, 0)
        if count > 0:
            self._outstanding[target] = count - 1

    def outstanding(self, target: str) -> int:
        return self._outstanding.get(target, 0)

    # -- policy hook -------------------------------------------------------------

    def _choose(self, lba: int, sector_count: int, pool: list) -> str:
        raise NotImplementedError


class RoundRobinSelector(ReplicaSelector):
    """Cycle through the candidates in order."""

    policy = "round-robin"

    def __init__(self, replicas, telemetry=NULL_TELEMETRY):
        super().__init__(replicas, telemetry=telemetry)
        self._cursor = 0

    def _choose(self, lba, sector_count, pool):
        choice = pool[self._cursor % len(pool)]
        self._cursor += 1
        return choice


def _ring_hash(key: str) -> int:
    """Stable hash for ring placement (``hash()`` is salted per run)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode(), digest_size=8).digest(), "big")


class ConsistentHashSelector(ReplicaSelector):
    """Map the copy-block index onto a replica hash ring.

    Sector-to-block granularity matches the deployment bitmap
    (:data:`repro.params.COPY_BLOCK_BYTES`), so a block's every fetch —
    from any node — lands on the same replica and the replica set
    partitions the image's cache footprint instead of mirroring it.
    """

    policy = "consistent-hash"

    #: Virtual nodes per replica; smooths the partition.
    VNODES = 32

    #: Sectors per copy block (mirrors the bitmap's default geometry).
    BLOCK_SECTORS = params.COPY_BLOCK_BYTES // params.SECTOR_BYTES

    def __init__(self, replicas, telemetry=NULL_TELEMETRY):
        super().__init__(replicas, telemetry=telemetry)
        self._ring = sorted(
            (_ring_hash(f"{replica}#{vnode}"), replica)
            for replica in self.replicas
            for vnode in range(self.VNODES))

    def _choose(self, lba, sector_count, pool):
        block = lba // self.BLOCK_SECTORS
        point = _ring_hash(str(block))
        pool_set = set(pool)
        # Walk the ring from the block's point to the first candidate.
        start = self._bisect(point)
        for offset in range(len(self._ring)):
            _, replica = self._ring[(start + offset) % len(self._ring)]
            if replica in pool_set:
                return replica
        return pool[0]

    def _bisect(self, point: int) -> int:
        import bisect
        return bisect.bisect_left(self._ring, (point, "")) \
            % len(self._ring)


class LeastOutstandingSelector(ReplicaSelector):
    """Join the shortest queue (this initiator's own view)."""

    policy = "least-outstanding"

    def __init__(self, replicas, telemetry=NULL_TELEMETRY):
        super().__init__(replicas, telemetry=telemetry)
        self._tiebreak = 0

    def _choose(self, lba, sector_count, pool):
        best = min(self.outstanding(target) for target in pool)
        shortest = [t for t in pool if self.outstanding(t) == best]
        choice = shortest[self._tiebreak % len(shortest)]
        self._tiebreak += 1
        return choice


class RttAwareSelector(ReplicaSelector):
    """Route to the lowest smoothed RTT.

    Each target gets its own Jacobson/Karels estimator, fed by the
    router's completion callbacks.  Targets without a sample yet are
    probed first; afterwards every :data:`EXPLORE_EVERY`-th decision
    round-robins so a slow replica's estimate can recover.
    """

    policy = "rtt-aware"

    EXPLORE_EVERY = 16

    def __init__(self, replicas, telemetry=NULL_TELEMETRY):
        super().__init__(replicas, telemetry=telemetry)
        self._estimators: dict[str, RttEstimator] = {}
        self._explore_cursor = 0

    def estimator(self, target: str) -> RttEstimator:
        estimator = self._estimators.get(target)
        if estimator is None:
            estimator = RttEstimator()
            self._estimators[target] = estimator
        return estimator

    def note_complete(self, target, rtt_seconds, ok=True):
        super().note_complete(target, rtt_seconds, ok=ok)
        if ok:
            self.estimator(target).observe(rtt_seconds)
        else:
            self.estimator(target).back_off()

    def _choose(self, lba, sector_count, pool):
        unprobed = [t for t in pool
                    if self.estimator(t).samples == 0]
        if unprobed:
            return unprobed[0]
        if self.decisions % self.EXPLORE_EVERY == self.EXPLORE_EVERY - 1:
            choice = pool[self._explore_cursor % len(pool)]
            self._explore_cursor += 1
            return choice
        return min(pool, key=lambda t: (self.estimator(t).srtt, t))
