"""Guest OS substrate: images, kernel model, stock block drivers."""

from repro.guest.driver_ahci import AhciDriver, AhciDriverError
from repro.guest.driver_e1000 import E1000Driver
from repro.guest.driver_ide import IdeDriver, IdeDriverError
from repro.guest.kernel import GuestOs
from repro.guest.osimage import (
    BootStep,
    OsImage,
    centos_image,
    ubuntu_image,
    windows_image,
)
from repro.guest.workload import (
    DiskWorkload,
    MixedWorkload,
    RandomReader,
    SequentialReader,
    SequentialWriter,
)

__all__ = [
    "AhciDriver",
    "AhciDriverError",
    "BootStep",
    "E1000Driver",
    "GuestOs",
    "DiskWorkload",
    "IdeDriver",
    "IdeDriverError",
    "MixedWorkload",
    "OsImage",
    "RandomReader",
    "SequentialReader",
    "SequentialWriter",
    "centos_image",
    "ubuntu_image",
    "windows_image",
]
