"""Guest AHCI block driver.

Builds command FIS + PRDT structures in memory, issues slots through
``PxCI``, and waits for the port interrupt — the same sequence a real
libahci-style driver performs, all via the machine bus so a mediating VMM
sees every access.
"""

from __future__ import annotations

from repro.storage import ahci
from repro.storage.blockdev import BlockOp, SectorBuffer, coalesce_runs
from repro.storage.ide import CMD_READ_DMA_EXT, CMD_WRITE_DMA_EXT


class AhciDriverError(Exception):
    """Port reported an error."""


class AhciDriver:
    """Block driver bound to one machine's AHCI controller."""

    MAX_SECTORS = 65536

    def __init__(self, machine, cpu=None):
        self.machine = machine
        self.bus = machine.bus
        self.cpu = cpu if cpu is not None else machine.boot_cpu
        self.controller = machine.disk_controller
        self.abar = self.controller.abar
        self.irq_line = self.controller.irq_line
        self._command_list: list = [None] * ahci.COMMAND_SLOTS
        self._clb_address: int | None = None
        self._started = False
        self._starting = None
        # Metrics.
        self.requests_completed = 0
        self.sectors_transferred = 0
        self.total_latency = 0.0

    # -- initialization -----------------------------------------------------------

    def start(self):
        """Generator: initialize the port (command list, interrupts, ST).

        Safe under concurrent first use: one caller initializes, the
        rest wait for it.
        """
        if self._started:
            return
        if self._starting is not None:
            yield self._starting
            return
        from repro.sim import Event
        self._starting = Event(self.machine.env)
        self._clb_address = self.machine.hostmem.allocate(self._command_list)
        yield from self._mmio_write(ahci.REG_PXCLB, self._clb_address)
        yield from self._mmio_write(ahci.REG_PXIE, ahci.PXIS_DHRS)
        yield from self._mmio_write(ahci.REG_PXCMD, ahci.PXCMD_ST)
        self._started = True
        self._starting.succeed()

    # -- public API -----------------------------------------------------------------

    def read(self, lba: int, sector_count: int):
        """Generator: DMA read; returns the filled buffer."""
        return (yield from self._transfer(BlockOp.READ, lba, sector_count,
                                          token=None))

    def write(self, lba: int, sector_count: int, token):
        """Generator: DMA write of ``token``-tagged data."""
        return (yield from self._transfer(BlockOp.WRITE, lba, sector_count,
                                          token=token))

    def flush(self):
        """Generator: FLUSH CACHE through a command slot."""
        from repro.storage.ide import CMD_FLUSH_CACHE
        cfis = ahci.CommandFis(CMD_FLUSH_CACHE, 0, 0)
        table = ahci.CommandTable(cfis)
        yield from self._issue_and_wait(table)

    @property
    def mean_latency(self) -> float:
        if self.requests_completed == 0:
            return 0.0
        return self.total_latency / self.requests_completed

    # -- transfer engine ----------------------------------------------------------------

    def _transfer(self, op: BlockOp, lba: int, sector_count: int, token):
        if not self._started:
            yield from self.start()
        result = SectorBuffer(lba, sector_count)
        remaining = sector_count
        cursor = lba
        collected = []
        while remaining > 0:
            chunk = min(remaining, self.MAX_SECTORS)
            buffer = yield from self._one_command(op, cursor, chunk, token)
            collected.extend(buffer.runs)
            cursor += chunk
            remaining -= chunk
        result.runs = coalesce_runs(collected)
        return result

    def _one_command(self, op: BlockOp, lba: int, sector_count: int, token):
        env = self.machine.env
        start = env.now
        buffer = SectorBuffer(lba, sector_count)
        if op is BlockOp.WRITE:
            buffer.fill_constant(token)
        buffer_address = self.machine.hostmem.allocate(buffer)
        command = CMD_READ_DMA_EXT if op is BlockOp.READ \
            else CMD_WRITE_DMA_EXT
        cfis = ahci.CommandFis(command, lba, sector_count)
        table = ahci.CommandTable(cfis, prdt=[buffer_address])
        try:
            yield from self._issue_and_wait(table)
        finally:
            self.machine.hostmem.free(buffer_address)
        self.requests_completed += 1
        self.sectors_transferred += sector_count
        self.total_latency += env.now - start
        return buffer

    def _issue_and_wait(self, table: ahci.CommandTable):
        slot = yield from self._find_free_slot()
        ctba = self.machine.hostmem.allocate(table)
        self._command_list[slot] = ahci.CommandHeader(ctba)
        try:
            yield from self._mmio_write(ahci.REG_PXCI, 1 << slot)
            yield from self._wait_slot(slot)
        finally:
            self._command_list[slot] = None
            self.machine.hostmem.free(ctba)

    #: Placeholder header marking a slot claimed but not yet built.
    _RESERVED = object()

    def _find_free_slot(self):
        while True:
            # Claim atomically (no yield between scan and claim): many
            # kernel contexts submit through this driver concurrently.
            for slot in range(ahci.COMMAND_SLOTS):
                if self._command_list[slot] is None:
                    self._command_list[slot] = self._RESERVED
                    return slot
            # All slots busy: wait for a completion interrupt.
            yield self.machine.interrupts.wait(self.irq_line)

    def _wait_slot(self, slot: int):
        while True:
            issued = yield from self._mmio_read(ahci.REG_PXCI)
            if not issued & (1 << slot):
                break
            yield self.machine.interrupts.wait(self.irq_line)
        # Acknowledge the port interrupt status (write-1-to-clear).
        pxis = yield from self._mmio_read(ahci.REG_PXIS)
        if pxis:
            yield from self._mmio_write(ahci.REG_PXIS, pxis)

    # -- bus shorthand ---------------------------------------------------------------------

    def _mmio_read(self, offset: int):
        return (yield from self.bus.mmio_read(self.abar + offset,
                                              cpu=self.cpu))

    def _mmio_write(self, offset: int, value: int):
        yield from self.bus.mmio_write(self.abar + offset, value,
                                       cpu=self.cpu)
