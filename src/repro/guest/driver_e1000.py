"""Guest e1000 network driver.

Programs the descriptor rings through the machine bus exactly as a real
driver would.  In the shared-NIC configuration (paper Section 6) every
one of these register accesses is intercepted by the NIC mediator; the
driver neither knows nor cares.
"""

from __future__ import annotations

from repro.net import e1000
from repro.sim import Resource


class E1000Driver:
    """Guest-side driver bound to one E1000 NIC."""

    def __init__(self, machine, nic, cpu=None):
        self.machine = machine
        self.nic = nic
        self.bus = machine.bus
        self.cpu = cpu if cpu is not None else machine.boot_cpu
        self.mmio_base = nic.mmio_base
        self.irq_line = nic.irq_line
        self._tx_ring = e1000.make_ring(e1000.TxDescriptor)
        self._rx_ring = e1000.make_ring(e1000.RxDescriptor)
        self._tx_ring_address = None
        self._rx_ring_address = None
        self._tx_tail = 0
        self._rx_next = 0  # next descriptor the driver will examine
        self._tx_lock = Resource(machine.env, capacity=1)
        self._started = False
        # Metrics.
        self.frames_sent = 0
        self.frames_received = 0

    # -- initialization ------------------------------------------------------------

    def start(self):
        """Generator: set up rings and enable interrupts."""
        if self._started:
            return
        hostmem = self.machine.hostmem
        self._tx_ring_address = hostmem.allocate(self._tx_ring)
        self._rx_ring_address = hostmem.allocate(self._rx_ring)
        for descriptor in self._rx_ring:
            descriptor.buffer_address = hostmem.allocate(object())
        yield from self._write(e1000.REG_TDBA, self._tx_ring_address)
        yield from self._write(e1000.REG_TDLEN, len(self._tx_ring))
        yield from self._write(e1000.REG_RDBA, self._rx_ring_address)
        yield from self._write(e1000.REG_RDLEN, len(self._rx_ring))
        # Hand the device every RX descriptor except one (ring-full
        # convention: RDT one behind RDH means empty for the device).
        yield from self._write(e1000.REG_RDT, len(self._rx_ring) - 1)
        yield from self._write(e1000.REG_IMS,
                               e1000.ICR_TXDW | e1000.ICR_RXT0)
        self._started = True

    # -- transmit ---------------------------------------------------------------------

    def send(self, dst: str, payload, payload_bytes: int,
             protocol: str = "guest"):
        """Generator: queue one frame and ring the doorbell."""
        if not self._started:
            yield from self.start()
        with self._tx_lock.request() as grant:
            yield grant
            hostmem = self.machine.hostmem
            slot = self._tx_tail
            descriptor = self._tx_ring[slot]
            # Flow control: never reuse a descriptor the device has not
            # finished with (DD clear) — wait for a completion interrupt.
            while descriptor.buffer_address and not descriptor.dd:
                yield self.machine.interrupts.wait(self.irq_line)
                yield from self._read(e1000.REG_ICR)
            if descriptor.buffer_address:
                hostmem.free(descriptor.buffer_address)
            descriptor.buffer_address = hostmem.allocate(
                e1000.TxPayload(dst, payload, payload_bytes, protocol))
            descriptor.length = payload_bytes
            descriptor.dd = False
            self._tx_tail = (self._tx_tail + 1) % len(self._tx_ring)
            yield from self._write(e1000.REG_TDT, self._tx_tail)
        self.frames_sent += 1

    # -- receive ------------------------------------------------------------------------

    def recv(self):
        """Generator: block until a frame arrives; returns it."""
        if not self._started:
            yield from self.start()
        while True:
            frame = yield from self._harvest_one()
            if frame is not None:
                return frame
            yield self.machine.interrupts.wait(self.irq_line)
            # Read (and thereby clear) the cause; spurious interrupts —
            # e.g. for a mediating VMM's own traffic — show cause 0 and
            # are safely ignored (paper 3.2).
            yield from self._read(e1000.REG_ICR)

    def _harvest_one(self):
        descriptor = self._rx_ring[self._rx_next]
        if not descriptor.dd:
            return None
        frame = descriptor.frame
        descriptor.dd = False
        descriptor.frame = None
        self._rx_next = (self._rx_next + 1) % len(self._rx_ring)
        # Return the slot to the device.
        new_tail = (self._rx_next - 1) % len(self._rx_ring)
        yield from self._write(e1000.REG_RDT, new_tail)
        self.frames_received += 1
        return frame

    def poll(self):
        """Generator: non-blocking receive."""
        return (yield from self._harvest_one())

    # -- bus shorthand --------------------------------------------------------------------

    def _read(self, offset: int):
        return (yield from self.bus.mmio_read(self.mmio_base + offset,
                                              cpu=self.cpu))

    def _write(self, offset: int, value: int):
        yield from self.bus.mmio_write(self.mmio_base + offset, value,
                                       cpu=self.cpu)
