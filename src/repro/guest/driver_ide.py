"""Guest IDE block driver.

Issues DMA reads/writes through the machine's I/O bus exactly as a real
driver would: program the taskfile, point the bus-master at a PRD table,
fire the command, sleep until the interrupt, check and acknowledge status.
The driver never knows whether a VMM is mediating underneath — that is the
OS transparency the paper is about.
"""

from __future__ import annotations

from repro import params
from repro.sim import Resource
from repro.storage import ide
from repro.storage.blockdev import BlockOp, SectorBuffer, coalesce_runs


class IdeDriverError(Exception):
    """Device reported an error status."""


class IdeDriver:
    """Block driver bound to one machine's IDE controller."""

    #: Largest single transfer the driver issues (sectors, LBA48).
    MAX_SECTORS = 65536

    def __init__(self, machine, cpu=None):
        self.machine = machine
        self.bus = machine.bus
        self.cpu = cpu if cpu is not None else machine.boot_cpu
        self.irq_line = ide.IDE_IRQ
        # IDE has one outstanding command; the kernel block layer
        # serializes submitters.
        self._lock = Resource(machine.env, capacity=1)
        # Metrics.
        self.requests_completed = 0
        self.sectors_transferred = 0
        self.total_latency = 0.0

    # -- public API -------------------------------------------------------------

    def read(self, lba: int, sector_count: int):
        """Generator: DMA read; returns the filled :class:`SectorBuffer`."""
        return (yield from self._transfer(BlockOp.READ, lba, sector_count,
                                          token=None))

    def write(self, lba: int, sector_count: int, token):
        """Generator: DMA write of ``token``-tagged data."""
        return (yield from self._transfer(BlockOp.WRITE, lba, sector_count,
                                          token=token))

    def flush(self):
        """Generator: FLUSH CACHE."""
        start = self.machine.env.now
        yield from self._pio_write(ide.REG_COMMAND, ide.CMD_FLUSH_CACHE)
        yield from self._wait_irq_and_ack()
        self.total_latency += self.machine.env.now - start

    def identify(self):
        """Generator: IDENTIFY DEVICE (used during boot enumeration)."""
        yield from self._pio_write(ide.REG_COMMAND, ide.CMD_IDENTIFY)
        yield from self._wait_irq_and_ack()

    @property
    def mean_latency(self) -> float:
        if self.requests_completed == 0:
            return 0.0
        return self.total_latency / self.requests_completed

    # -- transfer engine ------------------------------------------------------------

    def _transfer(self, op: BlockOp, lba: int, sector_count: int, token):
        if sector_count <= 0:
            raise ValueError("sector_count must be positive")
        result = SectorBuffer(lba, sector_count)
        remaining = sector_count
        cursor = lba
        collected = []
        while remaining > 0:
            chunk = min(remaining, self.MAX_SECTORS)
            buffer = yield from self._one_dma(op, cursor, chunk, token)
            collected.extend(buffer.runs)
            cursor += chunk
            remaining -= chunk
        result.runs = coalesce_runs(collected)
        return result

    def _one_dma(self, op: BlockOp, lba: int, sector_count: int, token):
        with self._lock.request() as grant:
            yield grant
            buffer = yield from self._one_dma_locked(op, lba, sector_count,
                                                     token)
        return buffer

    def _one_dma_locked(self, op: BlockOp, lba: int, sector_count: int,
                        token):
        env = self.machine.env
        start = env.now
        buffer = SectorBuffer(lba, sector_count)
        if op is BlockOp.WRITE:
            buffer.fill_constant(token)
        prdt_address = self.machine.hostmem.allocate(buffer)
        try:
            # Program the taskfile (LBA48 so one command covers big I/O).
            taskfile = ide.Taskfile()
            taskfile.load(lba, sector_count, ext=True)
            yield from self._program_taskfile(taskfile)
            # Bus-master setup: PRD table and direction.
            yield from self._pio_write(ide.BM_PRDT, prdt_address)
            direction = ide.BM_CMD_WRITE_TO_MEMORY if op is BlockOp.READ \
                else 0
            yield from self._pio_write(ide.BM_COMMAND, direction)
            # Fire.
            command = ide.CMD_READ_DMA_EXT if op is BlockOp.READ \
                else ide.CMD_WRITE_DMA_EXT
            yield from self._pio_write(ide.REG_COMMAND, command)
            yield from self._pio_write(ide.BM_COMMAND,
                                       direction | ide.BM_CMD_START)
            # Sleep until our interrupt, then acknowledge.
            yield from self._wait_dma_completion(direction)
        finally:
            self.machine.hostmem.free(prdt_address)
        self.requests_completed += 1
        self.sectors_transferred += sector_count
        self.total_latency += env.now - start
        return buffer

    def _program_taskfile(self, taskfile: ide.Taskfile):
        # LBA48: each shifting register is written twice (hob then current).
        for port in (ide.REG_SECTOR_COUNT, ide.REG_LBA_LOW,
                     ide.REG_LBA_MID, ide.REG_LBA_HIGH):
            yield from self._pio_write(port, taskfile.hob[port])
            yield from self._pio_write(port, taskfile.current[port])
        yield from self._pio_write(ide.REG_DEVICE,
                                   taskfile.current[ide.REG_DEVICE])

    def _wait_dma_completion(self, direction: int):
        while True:
            yield self.machine.interrupts.wait(self.irq_line)
            bm_status = yield from self._pio_read(ide.BM_STATUS)
            if bm_status & ide.BM_STATUS_IRQ:
                break
            # Shared line / spurious: not ours, wait again.
        status = yield from self._pio_read(ide.REG_COMMAND)
        if status & ide.STATUS_ERR:
            raise IdeDriverError(f"IDE error, status {status:#04x}")
        # Acknowledge: clear the bus-master interrupt, stop the engine.
        yield from self._pio_write(ide.BM_STATUS, ide.BM_STATUS_IRQ)
        yield from self._pio_write(ide.BM_COMMAND, direction)

    def _wait_irq_and_ack(self):
        yield self.machine.interrupts.wait(self.irq_line)
        status = yield from self._pio_read(ide.REG_COMMAND)
        if status & ide.STATUS_ERR:
            raise IdeDriverError(f"IDE error, status {status:#04x}")

    # -- bus shorthand ------------------------------------------------------------------

    def _pio_read(self, port: int):
        return (yield from self.bus.pio_read(port, cpu=self.cpu))

    def _pio_write(self, port: int, value: int):
        yield from self.bus.pio_write(port, value, cpu=self.cpu)


#: Bytes per sector, re-exported for workload code convenience.
SECTOR_BYTES = params.SECTOR_BYTES
