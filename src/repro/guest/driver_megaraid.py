"""Guest MegaRAID driver: builds MFI frames and posts them."""

from __future__ import annotations

from itertools import count

from repro.sim import Resource
from repro.storage import megaraid
from repro.storage.blockdev import BlockOp, SectorBuffer, coalesce_runs


class MegaRaidDriver:
    """Block driver bound to one machine's MegaRAID controller."""

    MAX_SECTORS = 65536

    def __init__(self, machine, cpu=None):
        self.machine = machine
        self.bus = machine.bus
        self.cpu = cpu if cpu is not None else machine.boot_cpu
        self.controller = machine.disk_controller
        self.mmio_base = self.controller.mmio_base
        self.irq_line = self.controller.irq_line
        self._contexts = count(1)
        # The shared reply register makes out-of-order reaping fiddly;
        # the block layer serializes submitters (like the IDE driver).
        self._lock = Resource(machine.env, capacity=1)
        # Metrics.
        self.requests_completed = 0
        self.sectors_transferred = 0
        self.total_latency = 0.0

    # -- public API --------------------------------------------------------------

    def read(self, lba: int, sector_count: int):
        """Generator: read; returns the filled buffer."""
        return (yield from self._transfer(BlockOp.READ, lba, sector_count,
                                          token=None))

    def write(self, lba: int, sector_count: int, token):
        """Generator: write ``token``-tagged data."""
        return (yield from self._transfer(BlockOp.WRITE, lba, sector_count,
                                          token=token))

    def flush(self):
        """Generator: firmware cache flush."""
        frame = megaraid.MfiFrame("flush", 0, 0, 0, next(self._contexts))
        yield from self._post_and_wait(frame)

    @property
    def mean_latency(self) -> float:
        if self.requests_completed == 0:
            return 0.0
        return self.total_latency / self.requests_completed

    # -- transfer engine -----------------------------------------------------------

    def _transfer(self, op: BlockOp, lba: int, sector_count: int, token):
        result = SectorBuffer(lba, sector_count)
        remaining = sector_count
        cursor = lba
        collected = []
        while remaining > 0:
            chunk = min(remaining, self.MAX_SECTORS)
            buffer = yield from self._one_frame(op, cursor, chunk, token)
            collected.extend(buffer.runs)
            cursor += chunk
            remaining -= chunk
        result.runs = coalesce_runs(collected)
        return result

    def _one_frame(self, op: BlockOp, lba: int, sector_count: int, token):
        env = self.machine.env
        start = env.now
        hostmem = self.machine.hostmem
        buffer = SectorBuffer(lba, sector_count)
        if op is BlockOp.WRITE:
            buffer.fill_constant(token)
        buffer_address = hostmem.allocate(buffer)
        frame = megaraid.MfiFrame(
            "read" if op is BlockOp.READ else "write",
            lba, sector_count, buffer_address, next(self._contexts))
        try:
            yield from self._post_and_wait(frame)
        finally:
            hostmem.free(buffer_address)
        self.requests_completed += 1
        self.sectors_transferred += sector_count
        self.total_latency += env.now - start
        return buffer

    def _post_and_wait(self, frame: megaraid.MfiFrame):
        with self._lock.request() as grant:
            yield grant
            hostmem = self.machine.hostmem
            frame_address = hostmem.allocate(frame)
            try:
                yield from self._write(megaraid.REG_INBOUND_QUEUE,
                                       frame_address)
                yield from self._wait_completion(frame.context)
            finally:
                hostmem.free(frame_address)

    def _wait_completion(self, context: int):
        while True:
            reply = yield from self._read(megaraid.REG_OUTBOUND_REPLY)
            if reply == context:
                break
            if reply != megaraid.REPLY_NONE:
                # Someone else's completion popped: in a real driver the
                # reply queue is shared; requeue is not modelled, so a
                # single-outstanding discipline applies (block layer).
                raise RuntimeError(f"unexpected completion {reply}")
            yield self.machine.interrupts.wait(self.irq_line)
        yield from self._write(megaraid.REG_DOORBELL_CLEAR, 1)

    # -- bus shorthand -----------------------------------------------------------------

    def _read(self, offset: int):
        return (yield from self.bus.mmio_read(self.mmio_base + offset,
                                              cpu=self.cpu))

    def _write(self, offset: int, value: int):
        yield from self.bus.mmio_write(self.mmio_base + offset, value,
                                       cpu=self.cpu)
