"""Guest OS kernel model: boot sequence and block-layer access.

The guest is **unmodified**: it enumerates PCI, initializes its stock
IDE/AHCI driver, and boots by replaying the image's access trace through
that driver.  Whether a mediating VMM sits underneath is invisible to it —
that is the OS transparency BMcast provides.
"""

from __future__ import annotations

from repro.guest.driver_ahci import AhciDriver
from repro.guest.driver_ide import IdeDriver
from repro.guest.driver_megaraid import MegaRaidDriver
from repro.guest.osimage import OsImage
from repro.hw.machine import Machine
from repro.hw.mmu import PROFILE_COMPILE


class GuestOs:
    """One guest OS instance bound to a machine."""

    def __init__(self, machine: Machine, image: OsImage,
                 name: str | None = None):
        self.machine = machine
        self.image = image
        self.name = name or image.name
        self.driver = self._probe_driver()
        self.booted = False
        self.boot_started_at: float | None = None
        self.boot_finished_at: float | None = None
        #: What this guest wrote to disk (for deployment verification).
        from repro.util.intervalmap import IntervalMap
        self.written = IntervalMap()
        self._write_counter = 0

    def _probe_driver(self):
        """PCI scan: bind the right block driver to the controller."""
        controller = self.machine.disk_controller
        if controller is None:
            raise RuntimeError("machine has no disk controller")
        if controller.kind == "ide":
            return IdeDriver(self.machine)
        if controller.kind == "ahci":
            return AhciDriver(self.machine)
        if controller.kind == "megaraid":
            return MegaRaidDriver(self.machine)
        raise TypeError(f"no driver for controller {controller.kind!r}")

    # -- boot ---------------------------------------------------------------------

    def boot(self):
        """Generator: run the boot sequence; returns boot seconds."""
        env = self.machine.env
        self.boot_started_at = env.now
        if self.machine.disk_controller.kind == "ahci":
            yield from self.driver.start()
        for step in self.image.boot_trace():
            think = step.think_seconds * self._cpu_slowdown()
            yield env.timeout(think)
            for lba, sector_count in step.reads:
                yield from self.driver.read(lba, sector_count)
        self.booted = True
        self.boot_finished_at = env.now
        return self.boot_finished_at - self.boot_started_at

    def _cpu_slowdown(self) -> float:
        condition = self.machine.condition
        return condition.cpu_slowdown(PROFILE_COMPILE.tlb_stall_fraction)

    @property
    def boot_seconds(self) -> float | None:
        if self.boot_started_at is None or self.boot_finished_at is None:
            return None
        return self.boot_finished_at - self.boot_started_at

    # -- application-visible block I/O -----------------------------------------------

    def read(self, lba: int, sector_count: int):
        """Generator: read through the stock driver."""
        return (yield from self.driver.read(lba, sector_count))

    def write(self, lba: int, sector_count: int, tag: str = "guest"):
        """Generator: write through the stock driver, tracking the range
        for end-of-deployment verification."""
        self._write_counter += 1
        token = (self.name, tag, self._write_counter)
        result = yield from self.driver.write(lba, sector_count, token)
        self.written.set_range(lba, sector_count, True)
        return result
