"""OS image model: contents plus a boot-time disk access trace.

The image is the 32-GB Ubuntu 14.04 disk the paper deploys.  Contents are
symbolic: one token per 1-MB chunk, so the end-of-deployment consistency
check can compare the local disk against the image run-for-run.

The boot trace models what an OS actually does while booting: bursts of
clustered reads (readahead over binaries and config) interleaved with CPU
work.  Calibrated against the paper's numbers: ~29 s boot on bare metal,
~72 MB read from disk during boot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import params
from repro.util.intervalmap import IntervalMap
from repro.util.rng import make_rng

CHUNK_BYTES = 2**20
CHUNK_SECTORS = CHUNK_BYTES // params.SECTOR_BYTES


@dataclass(frozen=True)
class BootStep:
    """One boot-trace step: think, then issue the listed reads."""

    think_seconds: float
    reads: tuple  # ((lba, sector_count), ...)


@dataclass
class OsImage:
    """A deployable OS image."""

    name: str = "ubuntu-14.04"
    size_bytes: int = params.OS_IMAGE_BYTES
    #: Bytes the OS reads from disk during boot (paper 5.1: 72 MB).
    boot_read_bytes: int = params.OS_BOOT_READ_BYTES
    #: CPU/think time of the boot excluding disk waits.
    boot_think_seconds: float = 22.5
    #: Single read size during boot and reads per cluster.
    boot_read_sectors: int = 16           # 8 KB
    boot_cluster_reads: int = 16
    seed: int = 20150314
    contents: IntervalMap = field(default_factory=IntervalMap)

    def __post_init__(self):
        if self.size_bytes % CHUNK_BYTES != 0:
            raise ValueError("image size must be a whole number of chunks")
        chunks = self.size_bytes // CHUNK_BYTES
        # One run per maximal span would collapse tokens; distinct token
        # per chunk keeps copy verification honest while staying compact:
        # consecutive chunks share a (name, band) token per 1-GB band.
        band_chunks = 1024
        for band_start in range(0, chunks, band_chunks):
            band_end = min(chunks, band_start + band_chunks)
            self.contents.set_range(
                band_start * CHUNK_SECTORS,
                (band_end - band_start) * CHUNK_SECTORS,
                (self.name, band_start // band_chunks))

    @property
    def total_sectors(self) -> int:
        return self.size_bytes // params.SECTOR_BYTES

    def boot_trace(self) -> list[BootStep]:
        """Deterministic boot access trace (same seed -> same trace)."""
        rng = make_rng(self.seed)
        read_bytes = self.boot_read_sectors * params.SECTOR_BYTES
        total_reads = self.boot_read_bytes // read_bytes
        clusters = max(1, total_reads // self.boot_cluster_reads)
        think_per_cluster = self.boot_think_seconds / clusters
        # Boot data lives in the first quarter of the image (the OS
        # partition), which is where real boots concentrate.
        span_sectors = self.total_sectors // 4
        steps: list[BootStep] = []
        for _ in range(clusters):
            cluster_len = self.boot_cluster_reads * self.boot_read_sectors
            start = rng.randrange(0, span_sectors - cluster_len)
            reads = tuple(
                (start + index * self.boot_read_sectors,
                 self.boot_read_sectors)
                for index in range(self.boot_cluster_reads)
            )
            # Jitter the think time deterministically (+-30%).
            think = think_per_cluster * (0.7 + 0.6 * rng.random())
            steps.append(BootStep(think, reads))
        return steps

    def boot_lbas(self) -> list[int]:
        """Every LBA the boot trace reads (one entry per read).

        A cloud provider profiles an image's boot once and feeds this to
        the deployer's prefetcher (paper 3.3's startup optimization).
        """
        return [lba for step in self.boot_trace()
                for lba, _ in step.reads]

    def verify_deployed(self, disk_contents: IntervalMap,
                        guest_written: IntervalMap | None = None) -> bool:
        """Check the local disk holds the image, except where the guest
        wrote its own data (which is newer by definition)."""
        for start, end, token in self.contents.runs():
            for run_start, run_end, disk_token in \
                    disk_contents.runs_in(start, end - start):
                if disk_token == token:
                    continue
                if guest_written is not None:
                    span = run_end - run_start
                    if guest_written.covered_length(run_start,
                                                    span) == span:
                        continue
                return False
        return True


# -- canned image profiles (the OSs the paper deploys, Section 4.3) ----------

def ubuntu_image(**overrides) -> OsImage:
    """Ubuntu 14.04, the paper's evaluation guest (the defaults)."""
    return OsImage(**overrides)


def centos_image(**overrides) -> OsImage:
    """CentOS 6.5 — also covered by the OS-streaming baseline's driver."""
    overrides.setdefault("name", "centos-6.5")
    overrides.setdefault("boot_think_seconds", 24.0)
    overrides.setdefault("seed", 20140609)
    return OsImage(**overrides)


def windows_image(**overrides) -> OsImage:
    """Windows Server 2008 (paper 2: the 30-GB default EC2 image).

    Boots slower and reads a larger working set than Linux; critically,
    the OS-streaming baseline has no driver port for it — only the
    OS-transparent methods (BMcast, image copy) can deploy it.
    """
    overrides.setdefault("name", "windows-server-2008")
    overrides.setdefault("size_bytes", 30 * 2**30)
    overrides.setdefault("boot_read_bytes", 180 * 2**20)
    overrides.setdefault("boot_think_seconds", 38.0)
    overrides.setdefault("boot_read_sectors", 64)   # 32-KB reads
    overrides.setdefault("boot_cluster_reads", 8)
    overrides.setdefault("seed", 20080227)
    return OsImage(**overrides)
