"""Generic guest disk workloads.

Reusable traffic generators for experiments beyond the paper's canned
benchmarks: sequential/random readers and writers and a rate-controlled
mixed workload, all measuring their own throughput and latency through
the instance storage facade.
"""

from __future__ import annotations

from repro import params
from repro.metrics.timeseries import TimeSeries
from repro.util.rng import make_rng


class DiskWorkload:
    """Base: tracks per-request latency and aggregate throughput."""

    def __init__(self, instance, name: str = "workload"):
        self.instance = instance
        self.name = name
        self.requests = 0
        self.bytes_moved = 0
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.latency = TimeSeries(f"{name} latency", unit="s")

    def _record(self, start: float, nbytes: int) -> None:
        env = self.instance.env
        self.requests += 1
        self.bytes_moved += nbytes
        self.latency.record(env.now, env.now - start)

    @property
    def throughput(self) -> float:
        """Bytes/second over the run."""
        if self.started_at is None or self.finished_at is None:
            raise ValueError(f"{self.name}: run() has not completed")
        elapsed = self.finished_at - self.started_at
        return self.bytes_moved / elapsed if elapsed > 0 else 0.0

    @property
    def mean_latency(self) -> float:
        return self.latency.mean()


class SequentialReader(DiskWorkload):
    """Stream ``total_bytes`` sequentially from ``lba``."""

    def __init__(self, instance, lba: int, total_bytes: int,
                 request_bytes: int = 2**20, name: str = "seq-read"):
        super().__init__(instance, name)
        self.lba = lba
        self.total_bytes = total_bytes
        self.request_sectors = max(1, request_bytes // params.SECTOR_BYTES)

    def run(self):
        """Generator: read the whole span; returns bytes/second."""
        env = self.instance.env
        self.started_at = env.now
        cursor = self.lba
        remaining = self.total_bytes // params.SECTOR_BYTES
        while remaining > 0:
            count = min(self.request_sectors, remaining)
            start = env.now
            yield from self.instance.read(cursor, count)
            self._record(start, count * params.SECTOR_BYTES)
            cursor += count
            remaining -= count
        self.finished_at = env.now
        return self.throughput


class SequentialWriter(DiskWorkload):
    """Stream ``total_bytes`` of writes sequentially from ``lba``."""

    def __init__(self, instance, lba: int, total_bytes: int,
                 request_bytes: int = 2**20, name: str = "seq-write"):
        super().__init__(instance, name)
        self.lba = lba
        self.total_bytes = total_bytes
        self.request_sectors = max(1, request_bytes // params.SECTOR_BYTES)

    def run(self):
        """Generator: write the whole span; returns bytes/second."""
        env = self.instance.env
        self.started_at = env.now
        cursor = self.lba
        remaining = self.total_bytes // params.SECTOR_BYTES
        while remaining > 0:
            count = min(self.request_sectors, remaining)
            start = env.now
            yield from self.instance.write(cursor, count, tag=self.name)
            self._record(start, count * params.SECTOR_BYTES)
            cursor += count
            remaining -= count
        self.finished_at = env.now
        return self.throughput


class RandomReader(DiskWorkload):
    """``requests`` random reads over ``[lba, lba + span_sectors)``."""

    def __init__(self, instance, lba: int, span_sectors: int,
                 requests: int = 100, request_bytes: int = 4096,
                 seed: int = 7, name: str = "rand-read"):
        super().__init__(instance, name)
        self.lba = lba
        self.span_sectors = span_sectors
        self.request_count = requests
        self.request_sectors = max(1, request_bytes // params.SECTOR_BYTES)
        self._rng = make_rng(seed)

    def run(self):
        """Generator: issue the random reads; returns mean latency."""
        env = self.instance.env
        self.started_at = env.now
        limit = self.span_sectors - self.request_sectors
        for _ in range(self.request_count):
            offset = self._rng.randrange(0, max(limit, 1))
            start = env.now
            yield from self.instance.read(self.lba + offset,
                                          self.request_sectors)
            self._record(start, self.request_sectors * params.SECTOR_BYTES)
        self.finished_at = env.now
        return self.mean_latency


class MixedWorkload(DiskWorkload):
    """Rate-controlled mixed read/write traffic for ``duration``.

    Issues ``rate`` requests/second (open loop, deterministic spacing
    with seeded jitter), each a read with probability
    ``read_fraction``.
    """

    def __init__(self, instance, lba: int, span_sectors: int,
                 rate: float = 50.0, read_fraction: float = 0.7,
                 request_bytes: int = 64 * 1024, seed: int = 11,
                 name: str = "mixed"):
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if rate <= 0:
            raise ValueError("rate must be positive")
        super().__init__(instance, name)
        self.lba = lba
        self.span_sectors = span_sectors
        self.rate = rate
        self.read_fraction = read_fraction
        self.request_sectors = max(1, request_bytes // params.SECTOR_BYTES)
        self._rng = make_rng(seed)
        self.reads = 0
        self.writes = 0

    def run(self, duration: float):
        """Generator: run for ``duration`` seconds; returns self."""
        env = self.instance.env
        self.started_at = env.now
        interval = 1.0 / self.rate
        limit = max(self.span_sectors - self.request_sectors, 1)
        while env.now - self.started_at < duration:
            offset = self._rng.randrange(0, limit)
            start = env.now
            if self._rng.random() < self.read_fraction:
                yield from self.instance.read(self.lba + offset,
                                              self.request_sectors)
                self.reads += 1
            else:
                yield from self.instance.write(self.lba + offset,
                                               self.request_sectors,
                                               tag=self.name)
                self.writes += 1
            self._record(start, self.request_sectors * params.SECTOR_BYTES)
            jitter = interval * 0.2 * (self._rng.random() - 0.5)
            wait = interval + jitter - (env.now - start)
            if wait > 0:
                yield env.timeout(wait)
        self.finished_at = env.now
        return self
