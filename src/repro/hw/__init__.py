"""Hardware substrate: machines, CPUs, memory, buses, firmware."""

from repro.hw.cpu import Cpu, CpuError, ExitReason, VmxMode
from repro.hw.firmware import Firmware
from repro.hw.interrupts import InterruptController
from repro.hw.iobus import BusError, IoAccess, IoBus
from repro.hw.machine import Machine, MachineSpec
from repro.hw.memory import E820Region, MemoryMapError, PhysicalMemory
from repro.hw.mmu import MemoryProfile, MmuFault, NestedPageTable, TrapRange
from repro.hw.pci import PciBus, PciDevice
from repro.hw.platform import BAREMETAL, PlatformCondition

__all__ = [
    "BAREMETAL",
    "BusError",
    "Cpu",
    "CpuError",
    "E820Region",
    "ExitReason",
    "Firmware",
    "InterruptController",
    "IoAccess",
    "IoBus",
    "Machine",
    "MachineSpec",
    "MemoryMapError",
    "MemoryProfile",
    "MmuFault",
    "NestedPageTable",
    "PciBus",
    "PciDevice",
    "PhysicalMemory",
    "PlatformCondition",
    "TrapRange",
    "VmxMode",
]
