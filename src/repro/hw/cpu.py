"""CPU model: VMX modes, VM exits, and the preemption timer.

The simulation does not execute instructions; what matters for the paper's
evaluation is *which events cause VM exits*, what each exit costs, and how
the VMM gets scheduled (preemption timer vs soft timers).  Those are
modelled explicitly here.
"""

from __future__ import annotations

import enum
from collections import Counter

from repro import params
from repro.hw.mmu import NestedPageTable
from repro.sim import Environment, Interrupt


class VmxMode(enum.Enum):
    """Hardware virtualization mode of one CPU."""

    OFF = "off"          # VMX disabled (bare metal / after VMXOFF)
    ROOT = "root"        # VMM context
    NON_ROOT = "non-root"  # guest context under the VMM


class ExitReason(enum.Enum):
    """VM-exit reasons the BMcast VMM enables (paper 4.1)."""

    PIO = "pio"
    MMIO = "mmio"
    CPUID = "cpuid"
    CR_ACCESS = "cr-access"
    INIT_SIGNAL = "init-signal"
    STARTUP_IPI = "startup-ipi"
    PREEMPTION_TIMER = "preemption-timer"
    EXTERNAL_INTERRUPT = "external-interrupt"  # soft-timer fallback only


class CpuError(Exception):
    """Invalid CPU mode transition."""


class Cpu:
    """One physical CPU core.

    Tracks VMX mode, owns its nested page table, counts and charges VM
    exits, and (core 0 only, by convention) runs the preemption timer that
    schedules the VMM's polling threads.
    """

    def __init__(self, env: Environment, index: int,
                 has_preemption_timer: bool = True):
        self.env = env
        self.index = index
        self.has_preemption_timer = has_preemption_timer
        self.mode = VmxMode.OFF
        self.npt = NestedPageTable()
        self.exit_counts: Counter = Counter()
        #: Total simulated seconds spent in VM exits on this CPU.
        self.exit_seconds = 0.0
        self._timer_process = None

    def __repr__(self):
        return f"<Cpu {self.index} {self.mode.value}>"

    # -- mode transitions ---------------------------------------------------

    def vmxon(self) -> None:
        """Enter VMX root mode (VMM boots)."""
        if self.mode is not VmxMode.OFF:
            raise CpuError(f"vmxon in mode {self.mode}")
        self.mode = VmxMode.ROOT

    def vmenter(self) -> None:
        """Switch to guest context."""
        if self.mode is not VmxMode.ROOT:
            raise CpuError(f"vmenter in mode {self.mode}")
        self.mode = VmxMode.NON_ROOT

    def vmexit(self, reason: ExitReason,
               cost: float = params.VM_EXIT_SECONDS) -> float:
        """Record a VM exit; returns the time the transition costs.

        The caller (typically the I/O bus or the timer) is responsible for
        actually advancing simulated time by the returned amount, because
        only a process can yield.
        """
        if self.mode is not VmxMode.NON_ROOT:
            raise CpuError(f"vmexit in mode {self.mode}")
        self.mode = VmxMode.ROOT
        self.exit_counts[reason] += 1
        self.exit_seconds += cost
        return cost

    def vmresume(self) -> None:
        """Return to guest context after handling an exit."""
        if self.mode is not VmxMode.ROOT:
            raise CpuError(f"vmresume in mode {self.mode}")
        self.mode = VmxMode.NON_ROOT

    def vmxoff(self) -> None:
        """Turn VMX off entirely (final de-virtualization step).

        Valid from either root mode (normal path: the VMM exits first) or
        non-root (the guest-context trampoline described in paper 4.3).
        """
        if self.mode is VmxMode.OFF:
            raise CpuError("vmxoff with VMX already off")
        if self._timer_process is not None:
            self.cancel_preemption_timer()
        self.mode = VmxMode.OFF

    # -- exit statistics -----------------------------------------------------

    @property
    def total_exits(self) -> int:
        return sum(self.exit_counts.values())

    def exit_rate(self, elapsed: float) -> float:
        """Average exits/second over ``elapsed`` seconds."""
        return self.total_exits / elapsed if elapsed > 0 else 0.0

    # -- preemption timer -----------------------------------------------------

    def arm_preemption_timer(self, interval: float, callback,
                             jitter: float = 0.0):
        """Fire ``callback`` every ``interval`` seconds of guest time.

        ``callback`` must be a function returning a generator (the VMM's
        polling work); each firing costs one VM exit.  If this CPU lacks
        the preemption timer, the caller should use
        :meth:`arm_soft_timer` instead (paper 4.1's fallback).
        """
        if not self.has_preemption_timer:
            raise CpuError("preemption timer not available on this CPU")
        if self._timer_process is not None:
            raise CpuError("preemption timer already armed")
        self._timer_process = self.env.process(
            self._timer_loop(interval, callback, ExitReason.PREEMPTION_TIMER,
                             jitter),
            name=f"cpu{self.index}-preempt-timer")
        return self._timer_process

    def arm_soft_timer(self, interval: float, callback,
                       jitter: float | None = None):
        """Soft-timer fallback: coarser interval, piggybacks on interrupts.

        Models the paper's fallback for CPUs without the VMX preemption
        timer: VM exits on hardware interrupts are used to regain control,
        so the effective polling granularity is the (coarser, jittery)
        interrupt cadence.
        """
        if self._timer_process is not None:
            raise CpuError("timer already armed")
        if jitter is None:
            jitter = interval * 0.5
        self._timer_process = self.env.process(
            self._timer_loop(interval, callback,
                             ExitReason.EXTERNAL_INTERRUPT, jitter),
            name=f"cpu{self.index}-soft-timer")
        return self._timer_process

    def cancel_preemption_timer(self) -> None:
        if self._timer_process is not None and self._timer_process.is_alive:
            self._timer_process.interrupt("disarm")
        self._timer_process = None

    def _timer_loop(self, interval: float, callback, reason: ExitReason,
                    jitter: float):
        # Deterministic triangle-wave jitter avoids needing an RNG here
        # while still de-synchronizing soft-timer firings.
        phase = 0
        try:
            while True:
                delay = interval
                if jitter:
                    phase = (phase + 1) % 8
                    delay += jitter * (phase - 3.5) / 3.5
                yield self.env.timeout(max(delay, 1e-9))
                if self.mode is VmxMode.NON_ROOT:
                    cost = self.vmexit(reason)
                    yield self.env.timeout(cost)
                    yield from callback()
                    self.vmresume()
        except Interrupt:
            return
