"""Firmware (BIOS) model: slow server-board initialization and boot source.

The paper's startup-time numbers are dominated by firmware on reboots
(133 s on their server board), which is exactly why BMcast's avoid-the-
reboot design wins: image copying pays firmware *twice*.
"""

from __future__ import annotations

from repro import params
from repro.sim import Environment


class Firmware:
    """BIOS with measurable initialization time and PXE network boot."""

    def __init__(self, env: Environment,
                 init_seconds: float = params.FIRMWARE_INIT_SECONDS,
                 pxe_load_seconds: float = 2.0):
        self.env = env
        self.init_seconds = init_seconds
        self.pxe_load_seconds = pxe_load_seconds
        self.initialized = False
        #: Number of full firmware initializations performed (reboots).
        self.init_count = 0

    def power_on(self):
        """Generator: full power-on self test and device init."""
        yield self.env.timeout(self.init_seconds)
        self.initialized = True
        self.init_count += 1

    def reboot(self):
        """Generator: warm reboot — firmware runs again in full.

        Server boards re-run the whole initialization; this is the
        several-minute penalty the image-copy baseline pays.
        """
        self.initialized = False
        yield from self.power_on()

    def network_boot(self):
        """Generator: PXE-load a small payload (VMM or installer kernel).

        Returns after the payload is in memory; the payload's own startup
        time is charged by whoever boots it.
        """
        if not self.initialized:
            raise RuntimeError("network_boot before firmware initialization")
        yield self.env.timeout(self.pxe_load_seconds)
