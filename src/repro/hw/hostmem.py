"""Host-memory object registry for DMA descriptors and buffers.

Guest drivers place DMA buffers, PRD tables, and AHCI command structures
"in memory" and hand devices their physical addresses.  The simulation
models that memory as an address-to-object registry: devices (and the VMM,
which reads guest structures during I/O interpretation) look objects up by
address exactly as hardware would follow a pointer.
"""

from __future__ import annotations


class HostMemoryError(Exception):
    """Bad address or double allocation."""


class HostMemory:
    """Address-keyed registry of in-memory structures."""

    #: Where dynamically allocated objects start (clear of MMIO ranges).
    ALLOC_BASE = 0x1000_0000

    def __init__(self):
        self._objects: dict[int, object] = {}
        self._next = self.ALLOC_BASE

    def allocate(self, obj, address: int | None = None) -> int:
        """Place ``obj`` in memory; returns its physical address."""
        if address is None:
            address = self._next
            self._next += 0x1000
        if address in self._objects:
            raise HostMemoryError(f"address {address:#x} already in use")
        self._objects[address] = obj
        return address

    def lookup(self, address: int):
        """Dereference a physical address."""
        try:
            return self._objects[address]
        except KeyError:
            raise HostMemoryError(
                f"dangling DMA pointer {address:#x}") from None

    def replace(self, address: int, obj) -> object:
        """Swap the object at ``address``; returns the old one."""
        old = self.lookup(address)
        self._objects[address] = obj
        return old

    def free(self, address: int) -> None:
        if address not in self._objects:
            raise HostMemoryError(f"freeing unmapped address {address:#x}")
        del self._objects[address]

    def __contains__(self, address: int) -> bool:
        return address in self._objects

    def __len__(self) -> int:
        return len(self._objects)
