"""Interrupt controller model (IOAPIC-style line delivery).

Guest drivers wait on interrupt lines; device models raise them.  Device
mediators never virtualize this controller (paper 3.2 rejects that for
portability) — instead they *mask* a device's line while the VMM owns the
device for a multiplexed request and detect completion by polling, then
clear any pending state before unmasking so the guest never observes the
VMM's interrupts.
"""

from __future__ import annotations

from repro.sim import Environment, Event


#: Latency from a device raising a line to the handler observing it.
IRQ_DELIVERY_SECONDS = 4e-6


class InterruptController:
    """Delivers device interrupts to registered waiters, with masking."""

    def __init__(self, env: Environment, lines: int = 24):
        self.env = env
        self.lines = lines
        self._waiters: dict[int, list[Event]] = {n: [] for n in range(lines)}
        self._masked: set[int] = set()
        self._pending: set[int] = set()
        #: Per-line delivered-interrupt counters (metrics/tests).
        self.delivered: dict[int, int] = {n: 0 for n in range(lines)}
        #: Interrupts suppressed while masked.
        self.suppressed: dict[int, int] = {n: 0 for n in range(lines)}

    def _check_line(self, line: int) -> None:
        if not 0 <= line < self.lines:
            raise ValueError(f"no such interrupt line: {line}")

    # -- waiting --------------------------------------------------------------

    def wait(self, line: int) -> Event:
        """Event that fires on the next delivery on ``line``.

        If an interrupt is already pending (raised while nobody waited and
        the line unmasked), it is consumed immediately.
        """
        self._check_line(line)
        event = self.env.event()
        if line in self._pending and line not in self._masked:
            self._pending.discard(line)
            self.delivered[line] += 1
            event.succeed(line)
        else:
            self._waiters[line].append(event)
        return event

    # -- raising --------------------------------------------------------------

    def raise_irq(self, line: int) -> None:
        """A device asserts ``line``."""
        self._check_line(line)
        if line in self._masked:
            self.suppressed[line] += 1
            self._pending.add(line)
            return
        self._deliver(line)

    def _deliver(self, line: int) -> None:
        waiters = self._waiters[line]
        if not waiters:
            self._pending.add(line)
            return
        self._pending.discard(line)
        self.delivered[line] += 1
        # Deliver to every waiter (shared line); each decides relevance.
        self._waiters[line] = []
        for event in waiters:
            # Small delivery latency so handlers run after the raising
            # device finishes its state update.
            self.env.process(_delayed_succeed(self.env, event, line))

    # -- masking (used by device mediators) -----------------------------------

    def mask(self, line: int) -> None:
        self._check_line(line)
        self._masked.add(line)

    def unmask(self, line: int) -> None:
        """Unmask; a pending interrupt (if not cleared) is then delivered."""
        self._check_line(line)
        self._masked.discard(line)
        if line in self._pending and self._waiters[line]:
            self._deliver(line)

    def clear_pending(self, line: int) -> None:
        """Drop any pending assertion (mediator acked the device itself)."""
        self._check_line(line)
        self._pending.discard(line)

    def is_masked(self, line: int) -> bool:
        return line in self._masked

    def is_pending(self, line: int) -> bool:
        return line in self._pending


def _delayed_succeed(env: Environment, event: Event, line: int):
    yield env.timeout(IRQ_DELIVERY_SECONDS)
    if not event.triggered:
        event.succeed(line)
