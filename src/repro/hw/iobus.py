"""The I/O bus: PIO/MMIO routing with VMM interception.

This is the seam the whole design hangs on.  Guest drivers issue port and
memory-mapped I/O through the bus.  When the issuing CPU is in VMX
non-root mode and the address is trapped, the access causes a VM exit and
is handed to the installed intercept (the device mediator), which may
observe it, forward it, emulate a reply, or block it.  When virtualization
is off — or the address is not trapped — the access goes straight to the
device model, with **zero** added cost: this is what "de-virtualized means
zero overhead" looks like mechanically.

All bus access methods are generators (``yield from`` them) because an
intercepted access can take time (the exit itself) or even block (a
mediator redirecting a read across the network).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import params
from repro.hw.cpu import Cpu, ExitReason, VmxMode
from repro.sim import Environment


class BusError(Exception):
    """Access to an unmapped port/address, or conflicting registration."""


@dataclass
class IoAccess:
    """One PIO or MMIO access, as seen by an intercept."""

    kind: str            # "pio" | "mmio"
    is_write: bool
    address: int         # port number or physical address
    value: int | None    # written value (writes only)
    cpu: Cpu | None
    #: Set by the intercept to override what the guest reads.
    reply: int | None = None
    #: If True the access is NOT forwarded to the device by the bus.
    absorb: bool = False
    extra: dict = field(default_factory=dict)


class _MmioRegion:
    def __init__(self, start: int, length: int, device):
        self.start = start
        self.length = length
        self.device = device

    def contains(self, address: int) -> bool:
        return self.start <= address < self.start + self.length


class IoBus:
    """Routes PIO/MMIO to devices, with an interception layer for the VMM."""

    def __init__(self, env: Environment):
        self.env = env
        self._pio_devices: dict[int, object] = {}
        self._mmio_regions: list[_MmioRegion] = []
        # Intercepts: the VMM installs at most one hook per port/region.
        self._pio_intercepts: dict[int, object] = {}
        self._mmio_intercepts: list[tuple[_MmioRegion, object]] = []
        #: Accesses routed through intercepts (metrics).
        self.intercepted_accesses = 0
        #: Accesses that went straight to hardware.
        self.direct_accesses = 0

    # -- device registration ---------------------------------------------------

    def register_pio(self, ports, device) -> None:
        """Claim PIO ``ports`` (iterable of ints) for ``device``.

        The device must expose ``pio_read(port) -> int`` and
        ``pio_write(port, value) -> None``.
        """
        for port in ports:
            if port in self._pio_devices:
                raise BusError(f"port {port:#x} already claimed")
            self._pio_devices[port] = device

    def register_mmio(self, start: int, length: int, device) -> None:
        """Claim MMIO range for ``device`` (``mmio_read``/``mmio_write``)."""
        region = _MmioRegion(start, length, device)
        for existing in self._mmio_regions:
            if (existing.start < region.start + region.length
                    and region.start < existing.start + existing.length):
                raise BusError(
                    f"MMIO range {start:#x}+{length:#x} overlaps existing")
        self._mmio_regions.append(region)

    # -- interception (VMM side) -------------------------------------------------

    def intercept_pio(self, ports, hook) -> None:
        """Install ``hook`` on PIO ``ports``.

        ``hook`` is called as ``yield from hook(access)`` with an
        :class:`IoAccess`; it runs in VMX root mode after the exit cost has
        been charged.
        """
        for port in ports:
            if port in self._pio_intercepts:
                raise BusError(f"port {port:#x} already intercepted")
            self._pio_intercepts[port] = hook

    def uninstall_pio_intercepts(self, ports) -> None:
        for port in ports:
            self._pio_intercepts.pop(port, None)

    def intercept_mmio(self, start: int, length: int, hook) -> None:
        self._mmio_intercepts.append((_MmioRegion(start, length, None), hook))

    def uninstall_mmio_intercepts(self, hook) -> None:
        self._mmio_intercepts = [
            (region, existing) for region, existing in self._mmio_intercepts
            if existing is not hook
        ]

    def clear_all_intercepts(self) -> None:
        """Rip out every hook (final de-virtualization step)."""
        self._pio_intercepts.clear()
        self._mmio_intercepts.clear()

    @property
    def has_intercepts(self) -> bool:
        return bool(self._pio_intercepts or self._mmio_intercepts)

    # -- access paths -------------------------------------------------------------

    def pio_read(self, port: int, cpu: Cpu | None = None):
        """Generator: read one PIO port."""
        device = self._pio_device(port)
        hook = self._pio_intercepts.get(port)
        if hook is not None and _guest_context(cpu):
            access = IoAccess("pio", False, port, None, cpu)
            yield from self._run_intercept(cpu, ExitReason.PIO, hook, access)
            if access.reply is not None:
                return access.reply
            return device.pio_read(port)
        self.direct_accesses += 1
        return device.pio_read(port)

    def pio_write(self, port: int, value: int, cpu: Cpu | None = None):
        """Generator: write one PIO port."""
        device = self._pio_device(port)
        hook = self._pio_intercepts.get(port)
        if hook is not None and _guest_context(cpu):
            access = IoAccess("pio", True, port, value, cpu)
            yield from self._run_intercept(cpu, ExitReason.PIO, hook, access)
            if not access.absorb:
                device.pio_write(port, value)
            return None
        self.direct_accesses += 1
        device.pio_write(port, value)
        return None

    def mmio_read(self, address: int, cpu: Cpu | None = None):
        """Generator: read a 32-bit MMIO register."""
        region = self._mmio_region(address)
        hook = self._mmio_intercept(address)
        if hook is not None and _guest_context(cpu):
            access = IoAccess("mmio", False, address, None, cpu)
            yield from self._run_intercept(cpu, ExitReason.MMIO, hook, access)
            if access.reply is not None:
                return access.reply
            return region.device.mmio_read(address)
        self.direct_accesses += 1
        return region.device.mmio_read(address)

    def mmio_write(self, address: int, value: int, cpu: Cpu | None = None):
        """Generator: write a 32-bit MMIO register."""
        region = self._mmio_region(address)
        hook = self._mmio_intercept(address)
        if hook is not None and _guest_context(cpu):
            access = IoAccess("mmio", True, address, value, cpu)
            yield from self._run_intercept(cpu, ExitReason.MMIO, hook, access)
            if not access.absorb:
                region.device.mmio_write(address, value)
            return None
        self.direct_accesses += 1
        region.device.mmio_write(address, value)
        return None

    # -- internals ------------------------------------------------------------------

    def _run_intercept(self, cpu: Cpu, reason: ExitReason, hook, access):
        self.intercepted_accesses += 1
        if cpu.mode is VmxMode.NON_ROOT:
            cost = cpu.vmexit(reason)
            yield self.env.timeout(cost + params.MEDIATOR_HANDLE_SECONDS)
            yield from hook(access)
            if cpu.mode is VmxMode.ROOT:
                cpu.vmresume()
        else:
            # Another guest context's exit is still being handled on
            # this CPU model (a long-running hook): account a separate
            # exit without a second mode transition.
            cpu.exit_counts[reason] += 1
            cpu.exit_seconds += params.VM_EXIT_SECONDS
            yield self.env.timeout(params.VM_EXIT_SECONDS
                                   + params.MEDIATOR_HANDLE_SECONDS)
            yield from hook(access)

    def _pio_device(self, port: int):
        device = self._pio_devices.get(port)
        if device is None:
            raise BusError(f"no device at PIO port {port:#x}")
        return device

    def _mmio_region(self, address: int) -> _MmioRegion:
        for region in self._mmio_regions:
            if region.contains(address):
                return region
        raise BusError(f"no device at MMIO address {address:#x}")

    def _mmio_intercept(self, address: int):
        for region, hook in self._mmio_intercepts:
            if region.contains(address):
                return hook
        return None


def _guest_context(cpu: Cpu | None) -> bool:
    """Is the access subject to interception?

    True whenever the CPU is under VMX at all: a guest access racing an
    in-flight exit on the same modelled CPU must still trap — bypassing
    the mediator to raw hardware would be a (serious) isolation bug.
    """
    return cpu is not None and cpu.mode is not VmxMode.OFF
