"""The physical machine: CPUs, memory, buses, firmware, devices.

A :class:`Machine` is the unit the cloud leases.  Device models (disk
controllers, NICs, the InfiniBand HCA) are built by their own subsystems
and attached here; the machine provides the shared fabric: the I/O bus,
interrupt controller, PCI bus, memory map, and the published
:class:`~repro.hw.platform.PlatformCondition` that workload models read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import params
from repro.hw.cpu import Cpu
from repro.hw.firmware import Firmware
from repro.hw.hostmem import HostMemory
from repro.hw.interrupts import InterruptController
from repro.hw.iobus import IoBus
from repro.hw.memory import PhysicalMemory
from repro.hw.pci import PciBus
from repro.hw.platform import BAREMETAL, PlatformCondition
from repro.sim import Environment


@dataclass(frozen=True)
class MachineSpec:
    """Static configuration of a machine (paper 5: PRIMERGY RX200 S6)."""

    cores: int = params.CPU_CORES
    memory_bytes: int = params.MEMORY_BYTES
    firmware_init_seconds: float = params.FIRMWARE_INIT_SECONDS
    has_preemption_timer: bool = True
    #: Disk controller flavour the scenario will attach: "ahci" or "ide".
    disk_controller: str = "ahci"
    nic_count: int = 2
    has_infiniband: bool = True


@dataclass
class _ConditionLog:
    """Time-stamped history of platform-condition changes."""

    entries: list = field(default_factory=list)

    def record(self, time: float, condition: PlatformCondition) -> None:
        self.entries.append((time, condition))

    def at(self, time: float) -> PlatformCondition:
        current = self.entries[0][1]
        for stamp, condition in self.entries:
            if stamp <= time:
                current = condition
            else:
                break
        return current


class Machine:
    """One bare-metal machine in the simulated cluster."""

    def __init__(self, env: Environment, spec: MachineSpec | None = None,
                 name: str = "node0"):
        self.env = env
        self.spec = spec or MachineSpec()
        self.name = name

        self.cpus = [
            Cpu(env, index,
                has_preemption_timer=self.spec.has_preemption_timer)
            for index in range(self.spec.cores)
        ]
        self.memory = PhysicalMemory(self.spec.memory_bytes)
        self.interrupts = InterruptController(env)
        self.bus = IoBus(env)
        self.hostmem = HostMemory()
        self.pci = PciBus()
        self.firmware = Firmware(
            env, init_seconds=self.spec.firmware_init_seconds)

        # Attached device models (populated by the scenario builder).
        self.disk_controller = None
        self.nics: list = []
        self.infiniband = None

        self._condition = BAREMETAL
        self.condition_log = _ConditionLog()
        self.condition_log.record(env.now, BAREMETAL)

    def __repr__(self):
        return f"<Machine {self.name} cores={self.spec.cores}>"

    # -- platform condition -------------------------------------------------

    @property
    def condition(self) -> PlatformCondition:
        """The overhead condition currently in force."""
        return self._condition

    def set_condition(self, condition: PlatformCondition) -> None:
        self._condition = condition
        self.condition_log.record(self.env.now, condition)

    # -- device attachment ----------------------------------------------------

    def attach_disk_controller(self, controller) -> None:
        if self.disk_controller is not None:
            raise RuntimeError("disk controller already attached")
        self.disk_controller = controller

    def attach_nic(self, nic) -> None:
        self.nics.append(nic)

    def attach_infiniband(self, hca) -> None:
        self.infiniband = hca

    # -- convenience ------------------------------------------------------------

    @property
    def boot_cpu(self) -> Cpu:
        return self.cpus[0]

    def total_vm_exits(self) -> int:
        return sum(cpu.total_exits for cpu in self.cpus)

    def power_on(self):
        """Generator: run firmware initialization."""
        yield from self.firmware.power_on()
