"""Physical memory map: E820 regions and VMM reservation.

BMcast reserves its own memory by manipulating the BIOS memory map (paper
3.4) so the guest never allocates it, and additionally protects the region
with nested paging while virtualization is on.  This module models the map
itself; enforcement lives in :mod:`repro.hw.mmu`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import params


class MemoryMapError(Exception):
    """Raised on invalid memory-map manipulation."""


@dataclass(frozen=True)
class E820Region:
    """One region of the BIOS-reported physical memory map."""

    start: int
    length: int
    kind: str  # "usable" | "reserved"

    @property
    def end(self) -> int:
        return self.start + self.length

    def overlaps(self, other: "E820Region") -> bool:
        return self.start < other.end and other.start < self.end


class PhysicalMemory:
    """Physical memory with a BIOS (E820-style) map.

    The map starts as a single usable region.  :meth:`reserve` carves a
    reserved hole out of it — this is the BIOS-map manipulation the VMM
    performs so the guest OS never touches VMM memory.
    """

    def __init__(self, size_bytes: int = params.MEMORY_BYTES):
        if size_bytes <= 0:
            raise ValueError("memory size must be positive")
        self.size_bytes = size_bytes
        self._regions: list[E820Region] = [
            E820Region(0, size_bytes, "usable")
        ]

    @property
    def regions(self) -> tuple[E820Region, ...]:
        return tuple(self._regions)

    @property
    def usable_bytes(self) -> int:
        return sum(r.length for r in self._regions if r.kind == "usable")

    @property
    def reserved_bytes(self) -> int:
        return sum(r.length for r in self._regions if r.kind == "reserved")

    def reserve(self, start: int, length: int) -> E820Region:
        """Mark ``[start, start+length)`` reserved; must lie in usable space."""
        if length <= 0:
            raise MemoryMapError("reservation length must be positive")
        if start < 0 or start + length > self.size_bytes:
            raise MemoryMapError("reservation outside physical memory")

        hole = E820Region(start, length, "reserved")
        new_regions: list[E820Region] = []
        carved = False
        for region in self._regions:
            if not region.overlaps(hole):
                new_regions.append(region)
                continue
            if region.kind != "usable":
                raise MemoryMapError(
                    f"reservation overlaps non-usable region {region}"
                )
            if not (region.start <= hole.start
                    and hole.end <= region.end):
                raise MemoryMapError(
                    "reservation spans multiple regions"
                )
            carved = True
            if region.start < hole.start:
                new_regions.append(
                    E820Region(region.start, hole.start - region.start,
                               "usable"))
            new_regions.append(hole)
            if hole.end < region.end:
                new_regions.append(
                    E820Region(hole.end, region.end - hole.end, "usable"))
        if not carved:
            raise MemoryMapError("reservation not within any usable region")
        self._regions = sorted(new_regions, key=lambda r: r.start)
        return hole

    def release(self, region: E820Region) -> None:
        """Return a previously reserved region to usable (memory hot-add).

        The paper's prototype does *not* do this (limitation in 4.3); it is
        provided for the memory-hot-plug extension and ablations.
        """
        if region not in self._regions:
            raise MemoryMapError(f"{region} is not a current map entry")
        if region.kind != "reserved":
            raise MemoryMapError(f"{region} is not reserved")
        index = self._regions.index(region)
        self._regions[index] = E820Region(region.start, region.length,
                                          "usable")
        self._coalesce()

    def kind_at(self, address: int) -> str:
        """The region kind covering ``address``."""
        for region in self._regions:
            if region.start <= address < region.end:
                return region.kind
        raise MemoryMapError(f"address {address:#x} outside physical memory")

    def _coalesce(self) -> None:
        merged: list[E820Region] = []
        for region in self._regions:
            if (merged and merged[-1].kind == region.kind
                    and merged[-1].end == region.start):
                last = merged.pop()
                merged.append(
                    E820Region(last.start, last.length + region.length,
                               region.kind))
            else:
                merged.append(region)
        self._regions = merged
