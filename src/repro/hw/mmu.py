"""Nested-paging (EPT/NPT) and TLB cost model.

While the BMcast VMM is active it runs the guest under nested paging with
an identity map, purely to (a) trap MMIO regions of mediated devices and
(b) protect the VMM's reserved memory.  The performance consequence the
paper measures (Section 5.2) is TLB pollution: up to 5x more TLB misses,
each costing about twice as much due to two-dimensional page walks.

This module provides both the functional side (identity mapping, MMIO trap
ranges, reserved-region protection, per-CPU teardown for de-virtualization)
and the cost side (a multiplicative slowdown for a workload's memory
profile).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import params


class MmuFault(Exception):
    """Guest touched memory it must not (the VMM's protected region)."""


@dataclass(frozen=True)
class MemoryProfile:
    """How sensitive a workload is to TLB behaviour.

    ``tlb_stall_fraction`` is the fraction of run time the workload spends
    servicing TLB misses *on bare metal*.  Under nested paging that time is
    scaled by miss-rate and walk-latency multipliers.
    """

    tlb_stall_fraction: float

    def slowdown(self, nested_paging: bool,
                 miss_multiplier: float = params.EPT_TLB_MISS_MULTIPLIER,
                 walk_multiplier: float = params.EPT_TLB_WALK_MULTIPLIER,
                 ) -> float:
        """Multiplicative execution-time factor (>= 1.0)."""
        if not nested_paging:
            return 1.0
        stall = self.tlb_stall_fraction
        inflated = stall * miss_multiplier * walk_multiplier
        return (1.0 - stall) + inflated


#: Profiles for the workload classes used across the evaluation, calibrated
#: so the EPT-on slowdowns land where the paper's Section 5 reports them.
PROFILE_KV_STORE = MemoryProfile(tlb_stall_fraction=0.004)
PROFILE_MEMORY_BENCH = MemoryProfile(tlb_stall_fraction=0.006)
PROFILE_COMPILE = MemoryProfile(tlb_stall_fraction=0.002)
PROFILE_THREADS = MemoryProfile(tlb_stall_fraction=0.001)


@dataclass(frozen=True)
class TrapRange:
    """A guest-physical address range whose accesses cause VM exits."""

    start: int
    length: int
    tag: str

    @property
    def end(self) -> int:
        return self.start + self.length

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end


class NestedPageTable:
    """Per-CPU nested paging state with identity mapping.

    The mapping is always identity (paper 3.4), which is what makes
    asynchronous per-CPU teardown safe: there is never a stale translation
    that differs between CPUs.
    """

    def __init__(self):
        self.enabled = False
        self._trap_ranges: list[TrapRange] = []
        self._protected: list[TrapRange] = []
        #: Count of TLB invalidations performed (for tests/metrics).
        self.tlb_flushes = 0

    # -- configuration -----------------------------------------------------

    def enable(self) -> None:
        self.enabled = True
        self.tlb_flushes += 1

    def disable(self) -> None:
        """Tear down nested paging on this CPU (de-virtualization step).

        Because the map is identity, no cross-CPU synchronization is
        needed; each CPU flushes its own TLB and switches off.
        """
        self.enabled = False
        self.tlb_flushes += 1

    def add_trap_range(self, start: int, length: int, tag: str) -> TrapRange:
        """Unmap ``[start, start+length)`` so guest access exits (MMIO trap)."""
        trap = TrapRange(start, length, tag)
        self._trap_ranges.append(trap)
        return trap

    def remove_trap_range(self, trap: TrapRange) -> None:
        self._trap_ranges.remove(trap)

    def protect(self, start: int, length: int, tag: str = "vmm") -> TrapRange:
        """Make ``[start, start+length)`` inaccessible to the guest."""
        region = TrapRange(start, length, tag)
        self._protected.append(region)
        return region

    # -- queries -----------------------------------------------------------

    def trap_for(self, address: int) -> TrapRange | None:
        """The MMIO trap covering ``address``, if nested paging is on."""
        if not self.enabled:
            return None
        for trap in self._trap_ranges:
            if trap.contains(address):
                return trap
        return None

    def check_guest_access(self, address: int) -> None:
        """Raise :class:`MmuFault` if the guest may not touch ``address``."""
        if not self.enabled:
            return
        for region in self._protected:
            if region.contains(address):
                raise MmuFault(
                    f"guest access to protected region {region.tag!r} "
                    f"at {address:#x}"
                )
