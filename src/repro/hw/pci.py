"""Minimal PCI model: enumeration, BARs, and configuration-space hiding.

Needed for two things from the paper: the guest enumerates devices at boot
(the mediated disk controller and NICs appear exactly as physical devices,
which is what makes deployment OS-transparent), and Section 4.3's option of
*hiding* the management NIC's configuration space when it must not be
exposed to the guest after de-virtualization.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Value a read of a non-existent device's vendor ID returns.
INVALID_VENDOR = 0xFFFF


@dataclass
class PciDevice:
    """One PCI function's identity and BARs."""

    vendor_id: int
    device_id: int
    class_code: int
    name: str
    #: BARs: index -> (base address, length). MMIO only.
    bars: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: The device model behind this function (controller/NIC object).
    model: object = None


class PciBus:
    """Flat single-bus PCI topology with per-slot hiding."""

    def __init__(self):
        self._slots: dict[int, PciDevice] = {}
        self._hidden: set[int] = set()

    def attach(self, slot: int, device: PciDevice) -> None:
        if slot in self._slots:
            raise ValueError(f"PCI slot {slot} already occupied")
        self._slots[slot] = device

    def hide(self, slot: int) -> None:
        """Make config reads of ``slot`` return 'no device'.

        This is the paper's mechanism for keeping a management NIC on a
        private network invisible to the guest.
        """
        if slot not in self._slots:
            raise ValueError(f"no device in PCI slot {slot}")
        self._hidden.add(slot)

    def unhide(self, slot: int) -> None:
        self._hidden.discard(slot)

    def is_hidden(self, slot: int) -> bool:
        return slot in self._hidden

    def read_vendor_id(self, slot: int) -> int:
        if slot in self._hidden or slot not in self._slots:
            return INVALID_VENDOR
        return self._slots[slot].vendor_id

    def device_at(self, slot: int) -> PciDevice | None:
        """The device visible at ``slot`` (None if hidden or empty)."""
        if slot in self._hidden:
            return None
        return self._slots.get(slot)

    def enumerate(self) -> list[tuple[int, PciDevice]]:
        """(slot, device) pairs a guest's PCI scan discovers."""
        return [(slot, device) for slot, device in sorted(self._slots.items())
                if slot not in self._hidden]

    def all_slots(self) -> list[tuple[int, PciDevice]]:
        """Every attached device, hidden or not (provider's view)."""
        return sorted(self._slots.items())
