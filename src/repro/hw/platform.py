"""Platform condition: what the running virtualization layer costs.

Whichever platform currently controls the machine (bare metal, BMcast in
some phase, or the KVM baseline) publishes a :class:`PlatformCondition`
describing the overhead mechanisms active *right now*.  Application models
read it each sampling window, which is how Figure 5's performance-over-time
traces see the de-virtualization step change.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import params


@dataclass(frozen=True)
class PlatformCondition:
    """Overhead mechanisms in force on a machine at a point in time.

    Everything defaults to the bare-metal (cost-free) setting.
    """

    #: Human-readable platform tag ("baremetal", "bmcast-deploy", ...).
    label: str = "baremetal"
    #: Nested paging (EPT) active -> TLB pollution per MemoryProfile.
    nested_paging: bool = False
    #: Multipliers applied to a workload's TLB stall time when
    #: nested_paging is set.
    tlb_miss_multiplier: float = params.EPT_TLB_MISS_MULTIPLIER
    tlb_walk_multiplier: float = params.EPT_TLB_WALK_MULTIPLIER
    #: Fraction of machine CPU consumed by VMM threads (deploy copying).
    vmm_cpu_fraction: float = 0.0
    #: How much of that VMM CPU time actually contends with the workload
    #: (< 1 when idle cores absorb the polling threads).
    vmm_cpu_contention: float = 1.0
    #: Uniform CPU-bound slowdown (conventional VMM exit/cache costs).
    cpu_overhead: float = 0.0
    #: Memory-bandwidth overhead (nested paging walks + cache pollution).
    memory_overhead: float = 0.0
    #: Lock-holder preemption active (virtual CPUs can be descheduled
    #: while holding locks).  Cost grows with thread count.
    lock_holder_preemption: bool = False
    #: Peak LHP overhead when threads = 2x physical cores.
    lhp_peak_overhead: float = params.KVM_LHP_OVERHEAD_AT_2X_THREADS
    #: Multiplicative latency factor on RDMA/InfiniBand operations.
    ib_latency_factor: float = 1.0
    #: Additive software cost per InfiniBand message (seconds): interrupt
    #: and completion-path handling a VMM adds around the HCA.
    ib_sw_overhead: float = 0.0
    #: Extra CPU fraction per network operation (virtio/emulated NIC
    #: request processing) paid by network-service workloads.
    net_op_overhead: float = 0.0
    #: Storage throughput penalties from virtual I/O devices (virtio).
    storage_read_overhead: float = 0.0
    storage_write_overhead: float = 0.0

    def with_(self, **changes) -> "PlatformCondition":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    # -- derived costs ---------------------------------------------------------

    def cpu_slowdown(self, tlb_stall_fraction: float = 0.0) -> float:
        """Execution-time factor for a CPU/memory-bound workload."""
        factor = 1.0 + self.cpu_overhead
        if self.nested_paging and tlb_stall_fraction > 0:
            stall = tlb_stall_fraction
            factor *= ((1.0 - stall)
                       + stall * self.tlb_miss_multiplier
                       * self.tlb_walk_multiplier)
        if self.vmm_cpu_fraction > 0:
            contending = self.vmm_cpu_fraction * self.vmm_cpu_contention
            factor /= (1.0 - contending)
        return factor

    def lhp_slowdown(self, threads: int, cores: int) -> float:
        """Extra factor from lock-holder preemption at ``threads``.

        Empirically (paper Fig. 8 and [47]) the cost is negligible until
        threads approach the core count, then grows roughly linearly with
        oversubscription pressure.
        """
        if not self.lock_holder_preemption or threads <= 1:
            return 1.0
        pressure = threads / cores
        if pressure <= 0.5:
            return 1.0 + 0.02 * pressure
        # Linear ramp hitting lhp_peak_overhead at pressure == 2.0.
        ramp = (pressure - 0.5) / 1.5
        return 1.0 + min(ramp, 1.0) * self.lhp_peak_overhead + 0.01

    def memory_slowdown(self, block_kb: float,
                        tlb_stall_fraction: float = 0.0) -> float:
        """Factor for a streaming memory workload at ``block_kb`` blocks.

        Larger blocks stream more data per allocation and are hit harder
        by nested-paging walks and cache pollution (paper Fig. 9 shows KVM's
        overhead peaking at 16-KB blocks).
        """
        base = self.cpu_slowdown(tlb_stall_fraction)
        if self.memory_overhead <= 0:
            return base
        # Scale the configured peak overhead by block size: 1 KB -> 40%
        # of peak, 16 KB -> 100% of peak.
        scale = min(1.0, 0.4 + 0.6 * (block_kb - 1.0) / 15.0)
        return base * (1.0 + self.memory_overhead * max(scale, 0.4))


#: The cost-free bare-metal condition.
BAREMETAL = PlatformCondition()
