"""Metric collection and plain-text reporting."""

from repro.metrics.eventlog import NULL_LOG, EventLog, TraceRecord
from repro.metrics.report import format_ratio, format_table
from repro.metrics.timeseries import TimeSeries

__all__ = ["EventLog", "NULL_LOG", "TimeSeries", "TraceRecord",
           "format_ratio", "format_table"]
