"""Structured event tracing for deployments.

Production systems ship with observability; so does this one.  An
:class:`EventLog` is a bounded, timestamped, categorized record of what
the VMM did — redirects, multiplexed writes, queue/replay activity,
phase transitions, de-virtualization steps.  It is opt-in
(``BmcastVmm(trace=True)`` or ``python -m repro deploy --trace``) and
costs nothing when disabled.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    category: str
    message: str
    fields: tuple = ()

    def render(self) -> str:
        extra = " ".join(f"{key}={value}" for key, value in self.fields)
        return f"[{self.time:12.6f}] {self.category:<12} " \
               f"{self.message}" + (f"  ({extra})" if extra else "")


class EventLog:
    """Bounded trace buffer with per-category counters."""

    def __init__(self, env, capacity: int = 10_000,
                 enabled: bool = True):
        self.env = env
        self.enabled = enabled
        self.records: deque = deque(maxlen=capacity)
        self.counts: Counter = Counter()

    def log(self, category: str, message: str, **fields) -> None:
        if not self.enabled:
            return
        self.counts[category] += 1
        self.records.append(TraceRecord(
            self.env.now, category, message,
            tuple(sorted(fields.items()))))

    # -- reading ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def tail(self, limit: int = 50) -> list:
        return list(self.records)[-limit:]

    def by_category(self, category: str) -> list:
        return [record for record in self.records
                if record.category == category]

    def dump(self, limit: int = 50) -> str:
        lines = [record.render() for record in self.tail(limit)]
        summary = ", ".join(f"{category}: {count}"
                            for category, count
                            in sorted(self.counts.items()))
        return "\n".join(lines + [f"-- totals: {summary}"])


class _FrozenCounter(Counter):
    """A Counter that refuses mutation (missing keys still read as 0)."""

    def __init__(self):
        # Counter.__init__ routes through update(), which is frozen.
        dict.__init__(self)

    def _refuse(self, *args, **kwargs):
        raise TypeError("NullEventLog.counts is immutable")

    __setitem__ = _refuse
    __delitem__ = _refuse
    update = _refuse
    subtract = _refuse
    clear = _refuse
    setdefault = _refuse
    pop = _refuse
    popitem = _refuse

    def __missing__(self, key):
        # Counter.__missing__ returns 0 without inserting; keep that,
        # but make it explicit that no state is created.
        return 0


#: Single immutable view shared by every NullEventLog: reads behave like
#: an empty Counter, writes raise instead of leaking state between
#: deployments (the old class-level mutable Counter let one user's
#: accidental mutation show up in every other NULL_LOG reader).
_EMPTY_COUNTS = _FrozenCounter()


class NullEventLog:
    """Disabled tracer: every operation is a no-op."""

    enabled = False

    @property
    def records(self) -> tuple:
        return ()

    @property
    def counts(self) -> Counter:
        return _EMPTY_COUNTS

    def log(self, category: str, message: str, **fields) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def tail(self, limit: int = 50) -> list:
        return []

    def by_category(self, category: str) -> list:
        return []

    def dump(self, limit: int = 50) -> str:
        return "(tracing disabled)"


#: Shared disabled instance.
NULL_LOG = NullEventLog()
