"""Plain-text result tables, matching how the benches print figures."""

from __future__ import annotations


def format_table(headers: list, rows: list, title: str = "") -> str:
    """Monospace table with right-aligned numeric columns."""
    columns = len(headers)
    rendered_rows = []
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
        rendered_rows.append([_render(cell) for cell in row])
    widths = [
        max(len(str(headers[index])),
            *(len(row[index]) for row in rendered_rows)) if rendered_rows
        else len(str(headers[index]))
        for index in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(
        str(header).ljust(widths[index])
        for index, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(
            cell.rjust(widths[index]) if _is_numeric(cell)
            else cell.ljust(widths[index])
            for index, cell in enumerate(row)))
    return "\n".join(lines)


def _render(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def format_ratio(value: float, baseline: float) -> str:
    """'0.948x' style ratio string."""
    if baseline == 0:
        return "n/a"
    return f"{value / baseline:.3f}x"
