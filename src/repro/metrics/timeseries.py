"""Time-series collection for the performance-over-time figures."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimeSeries:
    """Samples of one metric over simulated time."""

    name: str
    unit: str = ""
    samples: list = field(default_factory=list)  # (time, value)

    def record(self, time: float, value: float) -> None:
        self.samples.append((time, value))

    def __len__(self) -> int:
        return len(self.samples)

    def values(self) -> list:
        return [value for _, value in self.samples]

    def times(self) -> list:
        return [time for time, _ in self.samples]

    def mean(self) -> float:
        values = self.values()
        if not values:
            raise ValueError(f"no samples in series {self.name!r}")
        return sum(values) / len(values)

    def time_weighted_mean(self, until: float | None = None) -> float:
        """Mean weighted by how long each sample was in effect.

        Each sample's value is held from its timestamp until the next
        sample (or ``until``, defaulting to the last timestamp), so a
        burst of rapid samples no longer dominates long steady
        stretches the way the arithmetic :meth:`mean` lets it.
        """
        if not self.samples:
            raise ValueError(f"no samples in series {self.name!r}")
        if len(self.samples) == 1:
            return self.samples[0][1]
        end = self.samples[-1][0] if until is None else until
        weighted = 0.0
        total = 0.0
        for (time, value), (next_time, _) in zip(self.samples,
                                                 self.samples[1:]):
            span = next_time - time
            weighted += value * span
            total += span
        tail = end - self.samples[-1][0]
        if tail > 0:
            weighted += self.samples[-1][1] * tail
            total += tail
        if total <= 0:
            # All samples share one timestamp: fall back to the mean.
            return self.mean()
        return weighted / total

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]), linearly interpolated."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        values = sorted(self.values())
        if not values:
            raise ValueError(f"no samples in series {self.name!r}")
        if len(values) == 1:
            return values[0]
        position = q * (len(values) - 1)
        low = int(position)
        high = min(low + 1, len(values) - 1)
        fraction = position - low
        return values[low] + (values[high] - values[low]) * fraction

    def min(self) -> float:
        return min(self.values())

    def max(self) -> float:
        return max(self.values())

    def mean_between(self, start: float, end: float) -> float:
        window = [value for time, value in self.samples
                  if start <= time < end]
        if not window:
            raise ValueError(
                f"no samples in [{start}, {end}) of {self.name!r}")
        return sum(window) / len(window)

    def normalized_to(self, baseline: float) -> "TimeSeries":
        """A copy expressed as a ratio to ``baseline``."""
        if baseline == 0:
            raise ValueError("baseline must be non-zero")
        ratio = TimeSeries(f"{self.name} (ratio)", unit="x")
        ratio.samples = [(time, value / baseline)
                         for time, value in self.samples]
        return ratio
