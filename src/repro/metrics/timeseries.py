"""Time-series collection for the performance-over-time figures."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TimeSeries:
    """Samples of one metric over simulated time."""

    name: str
    unit: str = ""
    samples: list = field(default_factory=list)  # (time, value)

    def record(self, time: float, value: float) -> None:
        self.samples.append((time, value))

    def __len__(self) -> int:
        return len(self.samples)

    def values(self) -> list:
        return [value for _, value in self.samples]

    def times(self) -> list:
        return [time for time, _ in self.samples]

    def mean(self) -> float:
        values = self.values()
        if not values:
            raise ValueError(f"no samples in series {self.name!r}")
        return sum(values) / len(values)

    def min(self) -> float:
        return min(self.values())

    def max(self) -> float:
        return max(self.values())

    def mean_between(self, start: float, end: float) -> float:
        window = [value for time, value in self.samples
                  if start <= time < end]
        if not window:
            raise ValueError(
                f"no samples in [{start}, {end}) of {self.name!r}")
        return sum(window) / len(window)

    def normalized_to(self, baseline: float) -> "TimeSeries":
        """A copy expressed as a ratio to ``baseline``."""
        if baseline == 0:
            raise ValueError("baseline must be non-zero")
        ratio = TimeSeries(f"{self.name} (ratio)", unit="x")
        ratio.samples = [(time, value / baseline)
                         for time, value in self.samples]
        return ratio
