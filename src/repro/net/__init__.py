"""Network substrate: Ethernet switch/NICs and InfiniBand fabric."""

from repro.net.e1000 import E1000Nic
from repro.net.infiniband import IbFabric, IbHca
from repro.net.link import EthernetSwitch, LossModel
from repro.net.nic import Nic
from repro.net.packet import Frame

__all__ = [
    "E1000Nic",
    "EthernetSwitch",
    "Frame",
    "IbFabric",
    "IbHca",
    "LossModel",
    "Nic",
]
