"""Ring-buffer NIC model (Intel PRO/1000 style).

Unlike the simple :class:`~repro.net.nic.Nic` (which the VMM's dedicated
management port uses), this model exposes the descriptor-ring register
interface a real driver programs — receive/transmit ring base, head and
tail pointers, and read-to-clear interrupt cause — which is exactly the
surface the shared-NIC device mediator of paper Section 6 shadows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.link import EthernetSwitch
from repro.net.packet import Frame
from repro.sim import Environment

#: Register offsets (subset of the 8254x layout).
REG_CTRL = 0x0000
REG_ICR = 0x00C0    # interrupt cause, read-to-clear
REG_IMS = 0x00D0    # interrupt mask set
REG_RDBA = 0x2800   # receive descriptor base address
REG_RDLEN = 0x2808
REG_RDH = 0x2810    # receive head (device-owned)
REG_RDT = 0x2818    # receive tail (driver-owned)
REG_TDBA = 0x3800   # transmit descriptor base address
REG_TDLEN = 0x3808
REG_TDH = 0x3810
REG_TDT = 0x3818

#: ICR bits.
ICR_TXDW = 0x01     # transmit descriptor written back
ICR_RXT0 = 0x80     # receiver timer (frame received)

#: MMIO window size per NIC.
E1000_MMIO_SIZE = 0x4000

#: Default descriptor ring size.
RING_SIZE = 64


@dataclass
class TxDescriptor:
    """One transmit descriptor: points at an outgoing frame payload."""

    buffer_address: int = 0
    length: int = 0
    dd: bool = False  # descriptor done


@dataclass
class RxDescriptor:
    """One receive descriptor: a buffer the device may fill."""

    buffer_address: int = 0
    length: int = 0
    dd: bool = False
    frame: Frame | None = None


@dataclass
class TxPayload:
    """What a TX descriptor's buffer holds."""

    dst: str
    payload: object
    payload_bytes: int
    protocol: str = "guest"


def make_ring(kind, size: int = RING_SIZE) -> list:
    return [kind() for _ in range(size)]


class E1000Nic:
    """Descriptor-ring NIC attached to a switch port."""

    def __init__(self, env: Environment, switch: EthernetSwitch,
                 name: str, machine, mmio_base: int,
                 irq_line: int = 19):
        self.env = env
        self.switch = switch
        self.name = name
        self.machine = machine
        self.mmio_base = mmio_base
        self.irq_line = irq_line
        switch.attach(name, self)

        # Register file.
        self.ctrl = 0
        self.icr = 0
        self.ims = 0
        self.rdba = 0
        self.rdlen = 0
        self.rdh = 0
        self.rdt = 0
        self.tdba = 0
        self.tdlen = 0
        self.tdh = 0
        self.tdt = 0

        self._tx_process = None

        # Metrics.
        self.tx_frames = 0
        self.rx_frames = 0
        self.rx_dropped = 0
        self.interrupts_raised = 0

        machine.bus.register_mmio(mmio_base, E1000_MMIO_SIZE, self)

    # -- register interface ------------------------------------------------------

    def mmio_read(self, address: int) -> int:
        offset = address - self.mmio_base
        if offset == REG_ICR:
            # Read-to-clear.
            value = self.icr
            self.icr = 0
            return value
        registers = {
            REG_CTRL: self.ctrl, REG_IMS: self.ims,
            REG_RDBA: self.rdba, REG_RDLEN: self.rdlen,
            REG_RDH: self.rdh, REG_RDT: self.rdt,
            REG_TDBA: self.tdba, REG_TDLEN: self.tdlen,
            REG_TDH: self.tdh, REG_TDT: self.tdt,
        }
        if offset in registers:
            return registers[offset]
        raise ValueError(f"e1000: unknown register {offset:#x}")

    def mmio_write(self, address: int, value: int) -> None:
        offset = address - self.mmio_base
        if offset == REG_CTRL:
            self.ctrl = value
        elif offset == REG_IMS:
            self.ims = value
        elif offset == REG_ICR:
            self.icr &= ~value  # write-1-to-clear also supported
        elif offset == REG_RDBA:
            self.rdba = value
        elif offset == REG_RDLEN:
            self.rdlen = value
        elif offset == REG_RDT:
            self.rdt = value
        elif offset == REG_TDBA:
            self.tdba = value
        elif offset == REG_TDLEN:
            self.tdlen = value
        elif offset == REG_TDT:
            self.tdt = value
            self._kick_tx()
        elif offset in (REG_RDH, REG_TDH):
            raise ValueError("head registers are device-owned")
        else:
            raise ValueError(f"e1000: unknown register {offset:#x}")

    # -- transmit path ---------------------------------------------------------------

    def _ring(self, base: int) -> list:
        return self.machine.hostmem.lookup(base)

    def _kick_tx(self) -> None:
        if self._tx_process is None or not self._tx_process.is_alive:
            self._tx_process = self.env.process(self._tx_loop(),
                                                name=f"{self.name}-tx")

    def _tx_loop(self):
        ring = self._ring(self.tdba)
        size = len(ring)
        sent_any = False
        while self.tdh != self.tdt:
            descriptor = ring[self.tdh]
            payload = self.machine.hostmem.lookup(
                descriptor.buffer_address)
            frame = Frame(self.name, payload.dst, payload.payload,
                          payload.payload_bytes, payload.protocol)
            yield from self.switch.transmit(frame)
            descriptor.dd = True
            self.tdh = (self.tdh + 1) % size
            self.tx_frames += 1
            sent_any = True
        if sent_any:
            self._interrupt(ICR_TXDW)

    # -- receive path -------------------------------------------------------------------

    def deliver(self, frame: Frame) -> None:
        """Switch-side entry: fill the next receive descriptor."""
        if self.rdba == 0:
            self.rx_dropped += 1
            return
        ring = self._ring(self.rdba)
        size = len(ring)
        if self.rdh == self.rdt:
            # No descriptors available: drop (real e1000 behaviour).
            self.rx_dropped += 1
            return
        descriptor = ring[self.rdh]
        descriptor.frame = frame
        descriptor.length = frame.payload_bytes
        descriptor.dd = True
        self.rdh = (self.rdh + 1) % size
        self.rx_frames += 1
        self._interrupt(ICR_RXT0)

    # -- interrupts ------------------------------------------------------------------------

    def _interrupt(self, cause: int) -> None:
        self.icr |= cause
        if self.ims & cause:
            self.interrupts_raised += 1
            self.machine.interrupts.raise_irq(self.irq_line)
