"""Fluid-flow transfers: analytic bulk streams over the switch fabric.

Packet mode simulates every chunk of a bulk stream as discrete events;
at fleet scale the event *count* dominates wall-clock time even after
the kernel fast path made each event cheap.  When a stream is in steady
state on an uncontended-or-stably-shared path, its trajectory is fully
determined by the bandwidth shares of the links it crosses — so this
module collapses the whole stream into one :class:`Flow` whose finish
time is computed analytically from a **max-min fair** bandwidth-sharing
model and *re-priced* only when the flow set changes (arrival or
departure), the fluid-network equivalent of a SimPy interrupt.

The model: every switch port is two directed links (tx and rx) of the
switch's line rate; each flow crosses its source port's tx link and its
destination port's rx link.  Rates are solved by water-filling — find
the most-contended link, give its flows their equal share, subtract,
repeat — which reproduces exactly the throughput the packet-mode chunk
interleaving converges to (N streams through one port each progress at
1/N line rate), without the per-chunk events.

Re-pricing leans on the engine's lazy ``Environment.cancel``: each flow
holds one completion :class:`~repro.sim.events.Timeout`; a solve
cancels the stale timer in O(1) and schedules a fresh one at the new
finish time.  Timers are plain (never pooled) because they are retained
and cancelled, which the pool contract forbids.

**Accuracy envelope** (see docs/performance.md): fluid flows do not
hold port tx/rx locks, so concurrent *packet* traffic (redirected guest
reads, command frames) neither queues behind a fluid stream nor slows
one down.  Fidelity-bearing dynamics — moderation pacing, loss,
NAK/retransmission, peer bitmap gossip, sanitizers — demote the
deployment back to packet mode entirely (see :class:`FluidState`), so
the envelope only ever covers steady-state bulk streaming.
"""

from __future__ import annotations

from repro.obs.telemetry import NULL_TELEMETRY
from repro.sim import Environment, Event


class Flow:
    """One analytic transfer: remaining bytes draining at a solved rate."""

    __slots__ = ("src", "dst", "remaining_bytes", "rate_bps", "done",
                 "timer")

    def __init__(self, env: Environment, src: str, dst: str,
                 wire_bytes: float):
        self.src = src
        self.dst = dst
        self.remaining_bytes = float(wire_bytes)
        self.rate_bps = 0.0
        #: Fires when the last byte lands.
        self.done = Event(env)
        #: The currently scheduled completion Timeout (re-priced on
        #: every solve), or None between solves.
        self.timer = None


class FlowNetwork:
    """Max-min fair fluid model over one switch's ports.

    Attached lazily to an :class:`~repro.net.link.EthernetSwitch` on
    the first :meth:`transfer`; a packet-only simulation never
    constructs one, so packet mode stays byte-identical.
    """

    def __init__(self, env: Environment, rate_bps: float,
                 telemetry=NULL_TELEMETRY):
        self.env = env
        self.rate_bps = float(rate_bps)
        #: Active flows in arrival order.  Order matters: the solver
        #: iterates this list, so determinism (and therefore replay
        #: stability) follows from arrival order alone.
        self._flows: list[Flow] = []
        #: Directed-link occupancy (port -> active flow count), kept
        #: incrementally so the packet path can ask "how many fluid
        #: flows share this link?" in O(1) per frame.
        self._tx_count: dict[str, int] = {}
        self._rx_count: dict[str, int] = {}
        self._last_settle = env.now
        # Metrics.
        self.flows_started = 0
        self.flows_completed = 0
        self.bytes_transferred = 0
        self.resolves = 0
        registry = telemetry.registry
        self._m_flows = registry.counter(
            "fluid_flows_total",
            help="bulk transfers carried as analytic fluid flows")
        self._m_bytes = registry.counter(
            "fluid_bytes_total",
            help="wire bytes moved by fluid flows")
        self._m_resolves = registry.counter(
            "fluid_resolves_total",
            help="max-min rate solves (flow arrivals + departures)")
        self._m_active = registry.gauge(
            "fluid_flows_active",
            help="fluid flows currently in flight")

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def tx_flows(self, port: str) -> int:
        """Active fluid flows sourced at ``port`` (its tx link)."""
        return self._tx_count.get(port, 0)

    def rx_flows(self, port: str) -> int:
        """Active fluid flows sinking at ``port`` (its rx link)."""
        return self._rx_count.get(port, 0)

    def note_packet_bytes(self, port: str, tx: bool,
                          wire_bytes: int) -> None:
        """Bill one packet frame's wire occupancy to the link's flows.

        While the frame held the directed link, each fluid flow made no
        progress it is analytically credited with — so it regains
        ``wire_bytes * rate/link_rate`` of remaining bytes (exactly the
        progress a packet-mode stream would have lost to the frame).
        The charge is lazy: completion timers are NOT re-priced here
        (that would be O(flows) per frame); instead the completion
        callback re-schedules itself when it fires with debt left.
        """
        count = (self._tx_count if tx else self._rx_count).get(port, 0)
        if not count:
            return
        scale = wire_bytes / self.rate_bps
        for flow in self._flows:
            if (flow.src if tx else flow.dst) == port:
                flow.remaining_bytes += flow.rate_bps * scale

    def transfer(self, src: str, dst: str, wire_bytes: int):
        """Generator: move ``wire_bytes`` from port ``src`` to ``dst``.

        Blocks until the flow completes under max-min sharing with
        every other concurrent flow.  The caller owns frame delivery
        and byte accounting (see ``EthernetSwitch.fluid_transfer``).
        """
        flow = Flow(self.env, src, dst, wire_bytes)
        self.flows_started += 1
        self.bytes_transferred += wire_bytes
        self._m_flows.inc()
        self._m_bytes.inc(wire_bytes)
        self._settle()
        self._flows.append(flow)
        self._tx_count[src] = self._tx_count.get(src, 0) + 1
        self._rx_count[dst] = self._rx_count.get(dst, 0) + 1
        self._m_active.set(len(self._flows))
        self._resolve()
        yield flow.done

    # -- the solver --------------------------------------------------------

    def _settle(self) -> None:
        """Credit every active flow with progress since the last solve."""
        now = self.env.now
        elapsed = now - self._last_settle
        self._last_settle = now
        if elapsed <= 0.0:
            return
        for flow in self._flows:
            flow.remaining_bytes -= flow.rate_bps * elapsed / 8.0
            if flow.remaining_bytes < 0.0:
                flow.remaining_bytes = 0.0

    def _resolve(self) -> None:
        """Re-price every active flow and reschedule completion timers."""
        self.resolves += 1
        self._m_resolves.inc()
        env = self.env
        for flow in self._flows:
            if flow.timer is not None:
                env.cancel(flow.timer)
                flow.timer = None
        if not self._flows:
            return
        self._solve_rates()
        for flow in self._flows:
            delay = 0.0
            if flow.remaining_bytes > 0.0:
                delay = flow.remaining_bytes * 8.0 / flow.rate_bps
            timer = env.timeout(delay)
            timer.callbacks.append(self._completion_of(flow))
            flow.timer = timer

    def _solve_rates(self) -> None:
        """Water-filling: assign each flow its max-min fair rate.

        Links are built in flow-arrival order each solve, so the
        iteration (and any float-tie resolution) is deterministic.
        """
        links: dict = {}
        for flow in self._flows:
            flow.rate_bps = 0.0
            links.setdefault((flow.src, 0), []).append(flow)
            links.setdefault((flow.dst, 1), []).append(flow)
        residual = dict.fromkeys(links, self.rate_bps)
        unfixed = {id(flow) for flow in self._flows}
        while unfixed:
            # The bottleneck: the link granting its unfixed flows the
            # smallest equal share of its residual capacity.
            share = None
            for key, members in links.items():
                count = sum(1 for flow in members if id(flow) in unfixed)
                if count == 0:
                    continue
                candidate = residual[key] / count
                if share is None or candidate < share:
                    share = candidate
            # Fix every unfixed flow crossing a bottleneck link at the
            # bottleneck share; repeat with the capacity that remains.
            # The argmin link always matches its own share exactly, so
            # each pass fixes at least one flow and the loop terminates
            # within len(links) passes even under float-noise ties.
            for key, members in links.items():
                count = sum(1 for flow in members if id(flow) in unfixed)
                if count == 0 or residual[key] / count > share:
                    continue
                for flow in members:
                    if id(flow) not in unfixed:
                        continue
                    unfixed.discard(id(flow))
                    flow.rate_bps = share
                    residual[(flow.src, 0)] -= share
                    residual[(flow.dst, 1)] -= share

    def _completion_of(self, flow: Flow):
        def complete(event) -> None:
            if flow.timer is not event:
                return  # stale timer that escaped cancellation
            flow.timer = None
            self._settle()
            if flow.remaining_bytes > 0.5:
                # Packet cross-traffic charged debt since this timer
                # was priced (note_packet_bytes) — push completion out
                # by the debt instead of finishing early.
                timer = self.env.timeout(
                    flow.remaining_bytes * 8.0 / flow.rate_bps)
                timer.callbacks.append(complete)
                flow.timer = timer
                return
            flow.remaining_bytes = 0.0
            self._flows.remove(flow)
            self._tx_count[flow.src] -= 1
            self._rx_count[flow.dst] -= 1
            self.flows_completed += 1
            self._m_active.set(len(self._flows))
            flow.done.succeed()
            self._resolve()
        return complete


class FluidState:
    """Sticky per-deployment fluid-mode switch.

    ``requested`` records the operator's opt-in; :meth:`engage` arms
    fluid transfers only if nothing has demoted the deployment first;
    :meth:`demote` (at arm time for static conditions — moderation
    pacing, loss injection, peer gossip, sanitizers — or at runtime
    when a NAK/timeout/retransmission shows the path is not in steady
    state) switches back to packet mode *permanently* for this
    deployment, so fidelity-bearing dynamics always run on the exact
    per-packet path.
    """

    def __init__(self, requested: bool = False, telemetry=NULL_TELEMETRY):
        self.requested = bool(requested)
        self.active = False
        self.demotion_reason: str | None = None
        self.telemetry = telemetry

    def engage(self) -> bool:
        """Arm fluid mode; returns whether it is now active."""
        if not self.requested or self.demotion_reason is not None:
            return False
        if not self.active:
            self.active = True
            self.telemetry.registry.counter(
                "fluid_engagements_total",
                help="deployments that armed fluid transfers").inc()
            self.telemetry.causal.mark("fluid-engage")
        return True

    def demote(self, reason: str) -> None:
        """Fall back to packet mode for the rest of the deployment."""
        if self.demotion_reason is None:
            self.demotion_reason = reason
            if self.requested:
                self.telemetry.registry.counter(
                    "fluid_demotions_total", reason=reason,
                    help="fluid deployments demoted to packet mode").inc()
                self.telemetry.causal.mark("fluid-demote")
        self.active = False

    def describe(self) -> str:
        if self.active:
            return "active"
        if self.requested:
            return f"demoted({self.demotion_reason})"
        return "off"
