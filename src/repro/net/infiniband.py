"""InfiniBand fabric model (4X QDR, RDMA verbs).

The paper's cluster figures (6, 12, 13) hinge on two facts: RDMA
*throughput* saturates the link regardless of platform (hardware command
queuing hides virtualization), while RDMA *latency* is taxed by the
platform (KVM direct assignment: +23.6% from IOMMU, cache pollution,
nested paging; BMcast: <1%).  The model applies each machine's published
``ib_latency_factor`` on the send side and queues transfers at link rate.
"""

from __future__ import annotations

from repro import params
from repro.sim import Environment, Resource


class IbFabric:
    """One InfiniBand switch connecting HCAs."""

    def __init__(self, env: Environment,
                 rate_bps: float = params.IB_BITS_PER_SECOND,
                 base_latency: float = params.IB_BASE_LATENCY_SECONDS):
        self.env = env
        self.rate_bps = rate_bps
        self.base_latency = base_latency
        self._hcas: dict[str, "IbHca"] = {}

    def attach(self, hca: "IbHca") -> None:
        if hca.name in self._hcas:
            raise ValueError(f"HCA name {hca.name!r} already attached")
        self._hcas[hca.name] = hca

    def hca(self, name: str) -> "IbHca":
        return self._hcas[name]

    @property
    def names(self) -> list[str]:
        return sorted(self._hcas)


class IbHca:
    """Host channel adapter bound to one machine."""

    def __init__(self, env: Environment, fabric: IbFabric, machine,
                 name: str | None = None):
        self.env = env
        self.fabric = fabric
        self.machine = machine
        self.name = name or machine.name
        #: Send queue: transfers serialize at link rate per HCA.
        self._send_queue = Resource(env, capacity=1)
        fabric.attach(self)
        machine.attach_infiniband(self)
        # Metrics.
        self.ops = 0
        self.bytes_sent = 0

    def _latency_factor(self) -> float:
        return self.machine.condition.ib_latency_factor

    def rdma_write(self, peer: str, nbytes: int):
        """Generator: one RDMA write to ``peer``; returns elapsed seconds.

        The send queue is held only for the wire transfer; the latency
        leg happens outside it, so queued operations pipeline — this is
        precisely why Figure 12 shows no *throughput* difference between
        platforms while Figure 13 shows the latency tax.
        """
        start = self.env.now
        if peer not in self.fabric.names:
            raise ValueError(f"unknown peer {peer!r}")
        with self._send_queue.request() as grant:
            yield grant
            transfer = nbytes * 8.0 / self.fabric.rate_bps
            yield self.env.timeout(transfer)
        latency = self.fabric.base_latency * self._latency_factor()
        yield self.env.timeout(latency)
        self.ops += 1
        self.bytes_sent += nbytes
        return self.env.now - start

    def rdma_read(self, peer: str, nbytes: int):
        """Generator: one RDMA read from ``peer`` (round trip)."""
        start = self.env.now
        if peer not in self.fabric.names:
            raise ValueError(f"unknown peer {peer!r}")
        with self._send_queue.request() as grant:
            yield grant
            transfer = nbytes * 8.0 / self.fabric.rate_bps
            yield self.env.timeout(transfer)
        # Request goes out, data comes back: two latency legs.
        latency = 2.0 * self.fabric.base_latency * self._latency_factor()
        yield self.env.timeout(latency)
        self.ops += 1
        self.bytes_sent += nbytes
        return self.env.now - start

    def message_latency(self, nbytes: int) -> float:
        """Analytic one-way small-message latency (used by MPI model)."""
        return (self.fabric.base_latency * self._latency_factor()
                + nbytes * 8.0 / self.fabric.rate_bps)
