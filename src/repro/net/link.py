"""Ethernet switch and loss models.

The testbed topology is a single gigabit switch (paper 5: FUJITSU
SR-S348TC1, 9000-byte MTU).  Each attached NIC owns its transmit link;
frames serialize at line rate on the sender side, cross the switch with a
fixed forwarding latency, and are enqueued at the receiver.  Receive-side
contention is modelled by serializing delivery into each NIC at line rate
too (a switch cannot push two flows into one gigabit port faster than a
gigabit).
"""

from __future__ import annotations

from repro import params
from repro.net.packet import Frame
from repro.obs.telemetry import NULL_TELEMETRY
from repro.sim import Environment, Resource, Store
from repro.util.rng import make_rng

#: Simulation step for packet-mode bulk transfers, and therefore the
#: interleave quantum a packet frame waits behind per competing bulk
#: stream — the fluid fast path reuses it to price packet/fluid
#: cross-traffic (see ``_fluid_interleave_penalty``).
BULK_CHUNK_BYTES = 128 * 1024


class LossModel:
    """Bernoulli frame loss with a seeded RNG (reproducible)."""

    def __init__(self, loss_probability: float = 0.0, seed: int = 1):
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        self.loss_probability = loss_probability
        self._rng = make_rng(seed)
        self.dropped = 0

    def drops(self, frame: Frame) -> bool:
        if self.loss_probability == 0.0:
            return False
        if self._rng.random() < self.loss_probability:
            self.dropped += 1
            return True
        return False


class EthernetSwitch:
    """A single switch connecting named NIC ports."""

    def __init__(self, env: Environment,
                 rate_bps: float = params.GBE_BITS_PER_SECOND,
                 mtu: int = params.GBE_MTU,
                 forward_latency: float = params.SWITCH_LATENCY_SECONDS,
                 loss: LossModel | None = None,
                 telemetry=NULL_TELEMETRY):
        self.env = env
        self.rate_bps = rate_bps
        self.mtu = mtu
        self.forward_latency = forward_latency
        self.loss = loss or LossModel(0.0)
        self._ports: dict[str, object] = {}     # name -> NIC
        self._tx_locks: dict[str, Resource] = {}
        self._rx_locks: dict[str, Resource] = {}
        self._telemetry = telemetry
        self._flow_network = None
        # Metrics.
        self.frames_forwarded = 0
        self.bytes_forwarded = 0
        #: Wire bytes by frame protocol tag ("aoe", "aoe-peer", ...) —
        #: how the scale-out benches attribute origin vs peer traffic.
        self.bytes_by_protocol: dict[str, int] = {}
        registry = telemetry.registry
        self._m_frames = registry.counter("switch_frames_forwarded_total")
        self._m_bytes = registry.counter("switch_bytes_forwarded_total")
        self._m_dropped = registry.counter(
            "switch_frames_dropped_total",
            help="frames lost by the switch's loss model")

    def attach(self, name: str, nic) -> None:
        if name in self._ports:
            raise ValueError(f"port name {name!r} already attached")
        self._ports[name] = nic
        self._tx_locks[name] = Resource(self.env, capacity=1)
        self._rx_locks[name] = Resource(self.env, capacity=1)

    def serialization_time(self, frame: Frame) -> float:
        return frame.wire_bytes * 8.0 / self.rate_bps

    def transmit(self, frame: Frame):
        """Generator: carry ``frame`` from its source port to destination.

        The caller is blocked only for sender-side serialization; the
        switch-to-receiver leg runs asynchronously so back-to-back frames
        pipeline (store-and-forward, not stop-and-wait).  Returns True if
        the frame will be delivered, False if the switch dropped it.
        """
        if frame.payload_bytes > self.mtu:
            raise ValueError(
                f"frame payload {frame.payload_bytes} exceeds MTU {self.mtu}")
        if frame.src not in self._ports:
            raise ValueError(f"unknown source port {frame.src!r}")
        destination = self._ports.get(frame.dst)
        if destination is None:
            raise ValueError(f"unknown destination port {frame.dst!r}")

        # Sender-side serialization: one frame at a time per port.
        # Hot path — pooled timeouts (yield-only) and hoisted lookups.
        env = self.env
        with self._tx_locks[frame.src].request() as grant:
            yield grant
            yield env.pooled_timeout(
                self.serialization_time(frame)
                + self._fluid_interleave_penalty(frame.src, tx=True))
        if self._flow_network is not None:
            self._charge_fluid(frame.src, True, frame.wire_bytes)

        if self.loss.drops(frame):
            self._m_dropped.inc()
            return False

        env.process(self._forward(frame, destination),
                    name="switch-forward")
        return True

    def bulk_transfer(self, src: str, dst: str, payload,
                      payload_bytes: int, per_frame_payload: int,
                      chunk_bytes: int = BULK_CHUNK_BYTES,
                      protocol: str = "aoe"):
        """Generator: carry a large payload as one logical transfer.

        Equivalent on the wire to the fragment train the payload would
        have been split into (same serialization time, including
        per-frame overhead), but simulated in ``chunk_bytes`` steps
        instead of per frame — the fidelity knob for multi-gigabyte
        streams.  Port contention is preserved on BOTH sides: the
        sender's port and the receiver's port are each held chunk by
        chunk (pipelined one chunk apart), so concurrent flows — and a
        guest sharing the receiving NIC — interleave and queue
        realistically.
        """
        if src not in self._ports:
            raise ValueError(f"unknown source port {src!r}")
        destination = self._ports.get(dst)
        if destination is None:
            raise ValueError(f"unknown destination port {dst!r}")
        frames = max(1, -(-payload_bytes // per_frame_payload))
        wire_bytes = payload_bytes + frames * params.ETH_FRAME_OVERHEAD
        total_time = wire_bytes * 8.0 / self.rate_bps
        chunks = max(1, -(-payload_bytes // chunk_bytes))
        per_chunk = total_time / chunks

        sent_chunks = Store(self.env)
        rx_done = self.env.event()

        def rx_side():
            env = self.env
            rx_lock = self._rx_locks[dst]
            for _ in range(chunks):
                yield sent_chunks.get()
                with rx_lock.request() as grant:
                    yield grant
                    yield env.pooled_timeout(
                        per_chunk
                        + self._fluid_interleave_penalty(dst, tx=False))
            self.frames_forwarded += frames
            self.bytes_forwarded += wire_bytes
            self._account_protocol(protocol, wire_bytes)
            self._m_frames.inc(frames)
            self._m_bytes.inc(wire_bytes)
            destination.deliver(Frame(src, dst, payload,
                                      per_frame_payload,
                                      protocol=protocol))
            rx_done.succeed()

        env = self.env
        tx_lock = self._tx_locks[src]
        env.process(rx_side(), name="bulk-rx")
        for _ in range(chunks):
            with tx_lock.request() as grant:
                yield grant
                yield env.pooled_timeout(
                    per_chunk
                    + self._fluid_interleave_penalty(src, tx=True))
            yield sent_chunks.put(env.now)
        yield env.pooled_timeout(self.forward_latency)
        yield rx_done

    def _fluid_interleave_penalty(self, port: str, tx: bool) -> float:
        """Extra seconds a packet frame waits on a fluid-occupied link.

        Had the link's N fluid flows stayed in packet mode, their bulk
        chunks would interleave with this frame through the port lock's
        FIFO — one ``BULK_CHUNK_BYTES`` chunk per stream ahead of each
        frame.  Charging that wait here keeps packet cross-traffic
        (redirected boot reads, command frames) as slow as it would be
        in packet mode.  Zero — past one None check — while no
        deployment has ever gone fluid, so the packet-only timeline is
        untouched.
        """
        network = self._flow_network
        if network is None:
            return 0.0
        count = network.tx_flows(port) if tx else network.rx_flows(port)
        if not count:
            return 0.0
        return count * (BULK_CHUNK_BYTES * 8.0 / self.rate_bps)

    def _charge_fluid(self, port: str, tx: bool, wire_bytes: int) -> None:
        """Bill a packet frame's wire time to the link's fluid flows.

        The reverse coupling: while this frame held the link, a packet-
        mode bulk stream would have made no progress, so the analytic
        flows lose the equivalent bytes (pro-rated by their solved
        rate; see ``FlowNetwork.note_packet_bytes``).
        """
        network = self._flow_network
        if network is not None:
            network.note_packet_bytes(port, tx, wire_bytes)

    @property
    def flow_network(self):
        """The fluid-flow solver for this switch, created on first use.

        Lazy so a packet-only simulation never constructs one — fluid
        metrics stay absent and the event stream is untouched unless a
        deployment actually opts in.
        """
        if self._flow_network is None:
            from repro.net.flow import FlowNetwork
            self._flow_network = FlowNetwork(self.env, self.rate_bps,
                                             telemetry=self._telemetry)
        return self._flow_network

    def fluid_transfer(self, src: str, dst: str, payload,
                       payload_bytes: int, per_frame_payload: int,
                       protocol: str = "aoe"):
        """Generator: carry a large payload as one analytic fluid flow.

        Wire math is identical to :meth:`bulk_transfer` (same frame
        count, same per-frame overhead, same byte accounting), but the
        transfer is priced by the max-min fair :class:`FlowNetwork`
        instead of chunk-by-chunk port locks: concurrent fluid flows
        through a shared port split its rate equally, re-solved only on
        flow arrival/departure.  Fluid flows do not contend with packet
        traffic — callers must demote to packet mode whenever that
        interaction matters (see ``repro.net.flow.FluidState``).
        """
        if src not in self._ports:
            raise ValueError(f"unknown source port {src!r}")
        destination = self._ports.get(dst)
        if destination is None:
            raise ValueError(f"unknown destination port {dst!r}")
        frames = max(1, -(-payload_bytes // per_frame_payload))
        wire_bytes = payload_bytes + frames * params.ETH_FRAME_OVERHEAD
        yield from self.flow_network.transfer(src, dst, wire_bytes)
        yield self.env.pooled_timeout(self.forward_latency)
        self.frames_forwarded += frames
        self.bytes_forwarded += wire_bytes
        self._account_protocol(protocol, wire_bytes)
        self._m_frames.inc(frames)
        self._m_bytes.inc(wire_bytes)
        self._ports[src].note_fluid_tx(frames, wire_bytes)
        destination.deliver(Frame(src, dst, payload, per_frame_payload,
                                  protocol=protocol))

    def _forward(self, frame: Frame, destination):
        env = self.env
        yield env.pooled_timeout(self.forward_latency)
        # Receiver-side port capacity: one frame at a time into the port.
        with self._rx_locks[frame.dst].request() as grant:
            yield grant
            yield env.pooled_timeout(
                self.serialization_time(frame)
                + self._fluid_interleave_penalty(frame.dst, tx=False))
        if self._flow_network is not None:
            self._charge_fluid(frame.dst, False, frame.wire_bytes)
        wire_bytes = frame.wire_bytes
        self.frames_forwarded += 1
        self.bytes_forwarded += wire_bytes
        self._account_protocol(frame.protocol, wire_bytes)
        self._m_frames.inc()
        self._m_bytes.inc(wire_bytes)
        destination.deliver(frame)

    def _account_protocol(self, protocol: str, wire_bytes: int) -> None:
        self.bytes_by_protocol[protocol] = \
            self.bytes_by_protocol.get(protocol, 0) + wire_bytes
