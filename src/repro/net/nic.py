"""NIC model with e1000-style receive ring.

The BMcast VMM drives its dedicated NIC with a tiny polling driver (paper
4.3: the PRO/1000 driver is 718 LOC).  The model keeps the properties that
matter: a bounded receive ring that drops on overflow, per-NIC transmit
serialization (via the switch), and both blocking and polling receive
paths.
"""

from __future__ import annotations

from repro.net.link import EthernetSwitch
from repro.net.packet import Frame
from repro.obs.telemetry import NULL_TELEMETRY
from repro.sim import Environment, Store


class Nic:
    """One network interface attached to a switch port."""

    def __init__(self, env: Environment, switch: EthernetSwitch, name: str,
                 rx_ring_size: int = 256, model: str = "intel-pro1000",
                 telemetry=NULL_TELEMETRY):
        self.env = env
        self.switch = switch
        self.name = name
        self.model = model
        self.rx_ring: Store = Store(env, capacity=rx_ring_size)
        self.telemetry = telemetry
        switch.attach(name, self)
        # Metrics.
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self.rx_dropped = 0
        self.fluid_tx_frames = 0
        self.fluid_tx_bytes = 0
        self._m_fluid_tx_bytes = None
        registry = telemetry.registry
        self._m_tx_bytes = registry.counter("net_tx_bytes_total",
                                            nic=name)
        self._m_rx_bytes = registry.counter("net_rx_bytes_total",
                                            nic=name)
        self._m_rx_dropped = registry.counter(
            "net_rx_dropped_total", nic=name,
            help="frames dropped on RX ring overflow")
        self._m_queue_depth = registry.gauge(
            "net_rx_queue_depth", nic=name,
            help="RX ring occupancy sampled at every delivery")

    def __repr__(self):
        return f"<Nic {self.name} ({self.model})>"

    # -- transmit ---------------------------------------------------------------

    def send(self, dst: str, payload, payload_bytes: int,
             protocol: str = "aoe"):
        """Generator: transmit one frame; returns True if delivered."""
        # Hot path: hoist attribute lookups; a deploy pushes millions of
        # frames through here.
        frame = Frame(self.name, dst, payload, payload_bytes, protocol)
        switch = self.switch
        with self.telemetry.profiler.track("nic", "tx"):
            delivered = yield from switch.transmit(frame)
        wire_bytes = frame.wire_bytes
        self.tx_frames += 1
        self.tx_bytes += wire_bytes
        self._m_tx_bytes.inc(wire_bytes)
        return delivered

    def note_fluid_tx(self, frames: int, wire_bytes: int) -> None:
        """Account a fluid flow sourced from this NIC's port.

        The metric counter is created on first use so a packet-only run
        exposes exactly the pre-fluid metric set.
        """
        self.fluid_tx_frames += frames
        self.fluid_tx_bytes += wire_bytes
        if self._m_fluid_tx_bytes is None:
            self._m_fluid_tx_bytes = self.telemetry.registry.counter(
                "net_fluid_tx_bytes_total", nic=self.name,
                help="wire bytes sent from this port as fluid flows")
        self._m_fluid_tx_bytes.inc(wire_bytes)

    # -- receive ----------------------------------------------------------------

    def deliver(self, frame: Frame) -> None:
        """Switch-side entry: enqueue into the RX ring, drop on overflow."""
        ring = self.rx_ring
        if ring.is_full:
            self.rx_dropped += 1
            self._m_rx_dropped.inc()
            return
        wire_bytes = frame.wire_bytes
        self.rx_frames += 1
        self.rx_bytes += wire_bytes
        self._m_rx_bytes.inc(wire_bytes)
        # Non-blocking: ring has space, the put succeeds immediately.
        ring.put(frame)
        self._m_queue_depth.set(len(ring))

    def recv(self):
        """Generator: block until a frame arrives; returns it."""
        frame = yield self.rx_ring.get()
        return frame

    def poll(self) -> Frame | None:
        """Non-blocking receive (the VMM's polling driver path)."""
        return self.rx_ring.try_get()

    @property
    def rx_pending(self) -> int:
        return len(self.rx_ring)
