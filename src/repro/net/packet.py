"""Ethernet frame model."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro import params

_frame_ids = count()


@dataclass(slots=True)
class Frame:
    """One Ethernet frame.

    ``payload`` is an arbitrary protocol object; ``payload_bytes`` is what
    counts for wire timing.  Total wire size adds header and framing
    overhead.
    """

    src: str
    dst: str
    payload: object
    payload_bytes: int
    protocol: str = "aoe"
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @property
    def wire_bytes(self) -> int:
        return self.payload_bytes + params.ETH_FRAME_OVERHEAD

    def __repr__(self):
        return (f"<Frame #{self.frame_id} {self.src}->{self.dst} "
                f"{self.protocol} {self.payload_bytes}B>")
