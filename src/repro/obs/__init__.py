"""Deployment telemetry: labeled metrics, phase spans, exporters.

Usage::

    env = Environment()
    telemetry = Telemetry(env)
    testbed = build_testbed(env=env, telemetry=telemetry)
    ...
    telemetry.write("metrics.json")     # or .prom
    print(telemetry.summary())

Everything defaults to :data:`NULL_TELEMETRY` (zero-cost no-ops), so
simulations that don't ask for telemetry are unchanged.
"""

from repro.obs.export import (
    telemetry_summary,
    telemetry_to_dict,
    telemetry_to_prometheus,
    write_json,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Series,
)
from repro.obs.spans import (
    AMBIENT,
    NULL_TRACER,
    NullSpanTracer,
    Span,
    SpanTracer,
)
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry

__all__ = [
    "AMBIENT", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NullRegistry", "NullSpanTracer", "NullTelemetry", "NULL_REGISTRY",
    "NULL_TELEMETRY", "NULL_TRACER", "Series", "Span", "SpanTracer",
    "Telemetry", "telemetry_summary", "telemetry_to_dict",
    "telemetry_to_prometheus", "write_json",
]
