"""Deployment telemetry: labeled metrics, phase spans, exporters.

Usage::

    env = Environment()
    telemetry = Telemetry(env)
    testbed = build_testbed(env=env, telemetry=telemetry)
    ...
    telemetry.write("metrics.json")     # or .prom
    print(telemetry.summary())

Everything defaults to :data:`NULL_TELEMETRY` (zero-cost no-ops), so
simulations that don't ask for telemetry are unchanged.
"""

from repro.obs.causal import (
    NULL_CAUSAL,
    CausalTracer,
    NullCausalTracer,
    classify_actor,
)
from repro.obs.export import (
    telemetry_summary,
    telemetry_to_dict,
    telemetry_to_prometheus,
    write_json,
)
from repro.obs.profile import NULL_PROFILER, NullSimProfiler, SimProfiler
from repro.obs.provenance import (
    NULL_PROVENANCE,
    BlockProvenance,
    NullBlockProvenance,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Series,
)
from repro.obs.spans import (
    AMBIENT,
    NULL_TRACER,
    NullSpanTracer,
    Span,
    SpanTracer,
)
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.obs.trace_export import (
    chrome_trace_document,
    folded_stacks,
    format_profile,
    profile_report,
    write_chrome_trace,
)

__all__ = [
    "AMBIENT", "BlockProvenance", "CausalTracer", "Counter", "Gauge",
    "Histogram", "MetricsRegistry", "NullBlockProvenance",
    "NullCausalTracer", "NullRegistry", "NullSimProfiler",
    "NullSpanTracer", "NullTelemetry", "NULL_CAUSAL", "NULL_PROFILER",
    "NULL_PROVENANCE", "NULL_REGISTRY", "NULL_TELEMETRY", "NULL_TRACER",
    "Series", "SimProfiler", "Span", "SpanTracer", "Telemetry",
    "chrome_trace_document", "classify_actor", "folded_stacks",
    "format_profile", "profile_report", "telemetry_summary",
    "telemetry_to_dict", "telemetry_to_prometheus", "write_chrome_trace",
    "write_json",
]
