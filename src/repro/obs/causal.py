"""Causal event tracing and critical-path extraction.

Every event the engine schedules is recorded together with the event
during whose callbacks it was scheduled — its *cause*.  The resulting
causal DAG answers the question the span tree cannot: not "how long did
deploy/fill take" but *which chain of waits* made it that long.

The tracer hangs off :attr:`Environment.schedule_hook` (a second hook,
so it composes with the replay-divergence checker on ``trace_hook``)
and is strictly observational: it reads the clock and the queue
metadata, never schedules or mutates, so the simulated timeline is
identical with tracing on or off.

Nodes are stored in parallel lists (one append per scheduled event on
the hot path) rather than per-node objects.
"""

from __future__ import annotations


#: ``(prefix, component)`` classification for process names.  Ordered;
#: first match wins.  Mirrors the process names used across the tree —
#: unknown actors fall through to ``"other"``.
ACTOR_COMPONENTS = (
    ("copier-", "copier"),
    ("imagecopy-", "copier"),
    ("os-streaming-copier", "copier"),
    ("aoe-dispatch", "aoe-client"),
    ("aoe-serve", "aoe-server"),
    ("bulk-rx", "nic"),
    ("switch-forward", "switch"),
    ("nic-mediator-poll", "mediator"),
    ("megaraid-", "disk"),
    ("ide-", "disk"),
    ("ahci-", "disk"),
    ("cpu", "cpu"),
    ("mpi-", "app"),
    ("bmcast-devirt-watcher", "vmm"),
    ("deploy-", "provisioner"),
)


def classify_actor(name: str) -> str:
    """Map a process name to a coarse component label."""
    for prefix, component in ACTOR_COMPONENTS:
        if name.startswith(prefix):
            return component
    if name.endswith("-tx"):
        return "nic"
    return "other"


class CausalTracer:
    """Records the causal DAG of scheduled events for one environment.

    One node per :meth:`Environment.schedule` call, appended at schedule
    time.  ``cause[i]`` is the node index of the event whose callbacks
    scheduled node ``i`` (``-1`` at the top level).  ``fire_at[i]`` is
    the time the node was scheduled *for*; since the queue pops in
    ``(time, priority, insertion order)`` order, sorting nodes by
    ``(fire_at, index)`` reproduces the pop order up to priority ties at
    identical timestamps — which contribute zero-width intervals and so
    never perturb time attribution.
    """

    enabled = True

    def __init__(self, env, profiler=None, capacity: int = 2_000_000):
        self.env = env
        self.profiler = profiler
        self.capacity = capacity
        self.dropped = 0
        # Parallel node arrays.
        self.kinds: list[str] = []        # event class name
        self.actors: list[str] = []       # scheduling process name
        self.components: list[str] = []   # coarse component attribution
        self.fire_at: list[float] = []    # time the event fires
        self.cause: list[int] = []        # node index of the cause, or -1
        #: Named anchors: ``name -> (node index, time)`` recorded by
        #: :meth:`mark` (e.g. ``"devirtualize"``, ``"deploy-complete"``).
        self.marks: dict[str, tuple[int, float]] = {}
        # Live event -> node index.  Entries are only consulted while
        # the event object is alive (its id is the key), and the newest
        # schedule wins, so id reuse after GC cannot corrupt a lookup.
        self._ids: dict[int, int] = {}

    def attach(self) -> "CausalTracer":
        if self.env.schedule_hook is not None:
            raise RuntimeError(
                "environment already has a schedule_hook; only one "
                "causal tracer may attach per environment")
        self.env.schedule_hook = self._on_schedule
        return self

    def detach(self) -> None:
        if self.env.schedule_hook is self._on_schedule:
            self.env.schedule_hook = None

    # -- hot path ---------------------------------------------------------

    def _on_schedule(self, event, cause_event, fire_at: float) -> None:
        if len(self.kinds) >= self.capacity:
            self.dropped += 1
            return
        process = self.env.active_process
        actor = process.name if process is not None else "kernel"
        component = None
        if self.profiler is not None:
            component = self.profiler.current_component()
        if component is None:
            component = classify_actor(actor)
        cause = -1
        if cause_event is not None:
            cause = self._ids.get(id(cause_event), -1)
        index = len(self.kinds)
        self.kinds.append(type(event).__name__)
        self.actors.append(actor)
        self.components.append(component)
        self.fire_at.append(fire_at)
        self.cause.append(cause)
        self._ids[id(event)] = index

    # -- anchors ----------------------------------------------------------

    def mark(self, name: str) -> None:
        """Anchor ``name`` at the event currently being processed.

        Called from component code at milestones (devirtualization,
        copier completion); the critical path is later walked backwards
        from the anchor's node.
        """
        current = getattr(self.env, "current_event", None)
        index = -1
        if current is not None:
            index = self._ids.get(id(current), -1)
        self.marks[name] = (index, self.env.now)

    # -- analysis ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.kinds)

    def chain_from(self, index: int) -> list[int]:
        """Node indices from the root cause down to ``index`` (inclusive)."""
        chain: list[int] = []
        cursor = index
        seen = 0
        while cursor >= 0 and seen <= len(self.kinds):
            chain.append(cursor)
            cursor = self.cause[cursor]
            seen += 1
        chain.reverse()
        return chain

    def critical_path(self, anchor: str | None = None) -> list[dict]:
        """The causal chain ending at ``anchor`` as step dicts.

        Each step carries the wait it contributed: the gap between its
        cause firing (when it *could* have been scheduled) and the step
        itself firing.  The waits partition the interval from the root
        event to the anchor, so they sum to the anchor time exactly.
        """
        index, at = self._resolve_anchor(anchor)
        if index < 0:
            return []
        steps = []
        for node in self.chain_from(index):
            cause = self.cause[node]
            since = self.fire_at[cause] if cause >= 0 else 0.0
            steps.append({
                "node": node,
                "kind": self.kinds[node],
                "actor": self.actors[node],
                "component": self.components[node],
                "fired_at": self.fire_at[node],
                "wait": max(0.0, self.fire_at[node] - since),
            })
        return steps

    def latency_budget(self, anchor: str | None = None) -> dict:
        """Ranked per-component share of the anchor's critical path."""
        steps = self.critical_path(anchor)
        _, at = self._resolve_anchor(anchor)
        shares: dict[str, float] = {}
        for step in steps:
            shares[step["component"]] = \
                shares.get(step["component"], 0.0) + step["wait"]
        ranked = sorted(shares.items(), key=lambda kv: (-kv[1], kv[0]))
        return {
            "anchor": anchor or self._default_anchor(),
            "anchor_seconds": at,
            "steps": len(steps),
            "budget": [
                {"component": component, "seconds": seconds,
                 "share": (seconds / at) if at > 0 else 0.0}
                for component, seconds in ranked
            ],
        }

    def component_times(self, until: float | None = None) -> dict:
        """Partition of simulated time by component.

        The gap before each popped event is attributed to the component
        that scheduled it (that gap is time spent waiting for it); the
        tail after the last event is ``idle``.  The values sum to
        ``until`` (default: the current clock) by construction.
        """
        end = self.env.now if until is None else until
        order = sorted(range(len(self.kinds)),
                       key=lambda i: (self.fire_at[i], i))
        shares: dict[str, float] = {}
        prev = 0.0
        for node in order:
            at = self.fire_at[node]
            if at > end:
                break
            if at > prev:
                shares[self.components[node]] = \
                    shares.get(self.components[node], 0.0) + (at - prev)
                prev = at
        if end > prev:
            shares["idle"] = shares.get("idle", 0.0) + (end - prev)
        return shares

    def to_dict(self) -> dict:
        return {
            "nodes": len(self.kinds),
            "dropped": self.dropped,
            "marks": {name: {"node": node, "seconds": at}
                      for name, (node, at) in self.marks.items()},
        }

    # -- helpers ----------------------------------------------------------

    def _default_anchor(self) -> str | None:
        for name in ("devirtualize", "deploy-complete"):
            if name in self.marks:
                return name
        if self.marks:
            return sorted(self.marks)[0]
        return None

    def _resolve_anchor(self, anchor: str | None) -> tuple[int, float]:
        name = anchor or self._default_anchor()
        if name is None or name not in self.marks:
            return -1, 0.0
        return self.marks[name]


class NullCausalTracer:
    """Disabled causal tracer; shared and stateless."""

    enabled = False
    env = None
    dropped = 0
    marks: dict = {}

    def attach(self):
        return self

    def detach(self) -> None:
        pass

    def mark(self, name: str) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def chain_from(self, index: int) -> list:
        return []

    def critical_path(self, anchor=None) -> list:
        return []

    def latency_budget(self, anchor=None) -> dict:
        return {"anchor": None, "anchor_seconds": 0.0, "steps": 0,
                "budget": []}

    def component_times(self, until=None) -> dict:
        return {}

    def to_dict(self) -> dict:
        return {"nodes": 0, "dropped": 0, "marks": {}}


#: Shared disabled instance.
NULL_CAUSAL = NullCausalTracer()
