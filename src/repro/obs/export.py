"""Exporters: JSON dump, Prometheus text exposition, and a CLI summary.

The JSON document is the machine-readable record a bench or CI run
archives; the Prometheus format is what a scrape endpoint would serve;
the summary is what ``python -m repro metrics`` prints for humans.
"""

from __future__ import annotations

import json

from repro.metrics.report import format_table


def telemetry_to_dict(telemetry) -> dict:
    """The full JSON-serializable telemetry document."""
    env = telemetry.env
    registry = telemetry.registry
    document = {
        "sim": {
            "now": env.now,
            "events_processed": getattr(env, "events_processed", 0),
            "processes_spawned": getattr(env, "processes_spawned", 0),
        },
        "counters": [
            {"name": counter.name, "labels": dict(counter.labels),
             "value": counter.value}
            for counter in registry.collect("counter")
        ],
        "gauges": [
            {"name": gauge.name, "labels": dict(gauge.labels),
             "value": gauge.value, "min": gauge.min, "max": gauge.max}
            for gauge in registry.collect("gauge")
        ],
        "histograms": [
            {"name": histogram.name, "labels": dict(histogram.labels),
             "unit": histogram.unit,
             **histogram.summary(),
             "buckets": [[bound, count] for bound, count
                         in histogram.bucket_bounds()]}
            for histogram in registry.collect("histogram")
        ],
        "series": [_series_to_dict(series)
                   for series in registry.collect("series")],
    }
    document.update(telemetry.tracer.to_dict())
    return document


def _series_to_dict(series) -> dict:
    entry = {"name": series.name, "labels": dict(series.labels),
             "unit": series.unit, "samples": len(series)}
    if len(series):
        ts = series.series
        entry.update({
            "mean": ts.mean(),
            "time_weighted_mean": ts.time_weighted_mean(),
            "min": ts.min(),
            "max": ts.max(),
            "p50": ts.percentile(0.50),
            "p95": ts.percentile(0.95),
            "p99": ts.percentile(0.99),
        })
    return entry


def write_json(telemetry, path) -> None:
    with open(path, "w") as handle:
        json.dump(telemetry_to_dict(telemetry), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


# -- Prometheus text exposition ------------------------------------------------------


def _label_string(labels, extra: dict | None = None) -> str:
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    rendered = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in pairs)
    return "{" + rendered + "}"


def _escape(value: str) -> str:
    # Label values: backslash first, then quote and newline — the
    # exposition-format escaping rules.
    return value.replace("\\", r"\\").replace('"', r'\"') \
                .replace("\n", r"\n")


def _escape_help(value: str) -> str:
    # HELP text escapes backslash and newline only (quotes are legal).
    return value.replace("\\", r"\\").replace("\n", r"\n")


def telemetry_to_prometheus(telemetry) -> str:
    """Prometheus text-format exposition of the registry."""
    lines: list[str] = []
    seen_types: set = set()
    registry = telemetry.registry

    def declare(name: str, kind: str, help: str) -> None:
        if name in seen_types:
            return
        seen_types.add(name)
        if help:
            lines.append(f"# HELP {name} {_escape_help(help)}")
        lines.append(f"# TYPE {name} {kind}")

    for counter in registry.collect("counter"):
        declare(counter.name, "counter", counter.help)
        lines.append(f"{counter.name}{_label_string(counter.labels)} "
                     f"{_number(counter.value)}")

    for gauge in registry.collect("gauge"):
        declare(gauge.name, "gauge", gauge.help)
        lines.append(f"{gauge.name}{_label_string(gauge.labels)} "
                     f"{_number(gauge.value)}")

    for histogram in registry.collect("histogram"):
        declare(histogram.name, "histogram", histogram.help)
        cumulative = 0
        for bound, count in histogram.bucket_bounds():
            cumulative += count
            lines.append(
                f"{histogram.name}_bucket"
                f"{_label_string(histogram.labels, {'le': _number(bound)})}"
                f" {cumulative}")
        lines.append(
            f"{histogram.name}_bucket"
            f"{_label_string(histogram.labels, {'le': '+Inf'})}"
            f" {histogram.count}")
        lines.append(f"{histogram.name}_sum"
                     f"{_label_string(histogram.labels)} "
                     f"{_number(histogram.sum)}")
        lines.append(f"{histogram.name}_count"
                     f"{_label_string(histogram.labels)} "
                     f"{histogram.count}")

    for series in registry.collect("series"):
        name = series.name
        declare(name, "gauge", series.help)
        if len(series):
            ts = series.series
            last_time, last_value = ts.samples[-1]
            lines.append(f"{name}{_label_string(series.labels)} "
                         f"{_number(last_value)}")

    return "\n".join(lines) + "\n"


def _number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# -- human summary -------------------------------------------------------------------


def telemetry_summary(telemetry, span_limit: int = 40) -> str:
    """The ``repro metrics`` report: phases, counters, percentiles."""
    sections: list[str] = []
    now = telemetry.env.now

    span_rows = []
    for span in telemetry.tracer.walk():
        if len(span_rows) >= span_limit:
            break
        depth = 0
        parent = span.parent
        while parent is not None:
            depth += 1
            parent = parent.parent
        end = span.end if span.end is not None else now
        span_rows.append(["  " * depth + span.name,
                          round(span.start, 3), round(end, 3),
                          round(end - span.start, 3)])
    if span_rows:
        sections.append(format_table(
            ["span", "start (s)", "end (s)", "duration (s)"], span_rows,
            title="Deployment span tree"))

    counter_rows = [
        [counter.name, _label_suffix(counter.labels),
         _number(counter.value)]
        for counter in telemetry.registry.collect("counter")
        if counter.value]
    if counter_rows:
        sections.append(format_table(["counter", "labels", "value"],
                                     counter_rows, title="Counters"))

    gauge_rows = [
        [gauge.name, _label_suffix(gauge.labels), _number(gauge.value),
         _number(gauge.max if gauge.max is not None else 0.0)]
        for gauge in telemetry.registry.collect("gauge")]
    if gauge_rows:
        sections.append(format_table(["gauge", "labels", "last", "max"],
                                     gauge_rows, title="Gauges"))

    histogram_rows = []
    for histogram in telemetry.registry.collect("histogram"):
        if not histogram.count:
            continue
        summary = histogram.summary()
        histogram_rows.append([
            histogram.name, _label_suffix(histogram.labels),
            summary["count"],
            _round_sig(summary["mean"]), _round_sig(summary["p50"]),
            _round_sig(summary["p95"]), _round_sig(summary["p99"]),
        ])
    if histogram_rows:
        sections.append(format_table(
            ["histogram", "labels", "n", "mean", "p50", "p95", "p99"],
            histogram_rows, title="Latency histograms (seconds)"))

    if not sections:
        return "(no telemetry recorded)"
    return "\n\n".join(sections)


def _label_suffix(labels) -> str:
    return ",".join(f"{key}={value}" for key, value in labels) or "-"


def _round_sig(value: float, digits: int = 4) -> float:
    if value == 0:
        return 0.0
    from math import floor, log10
    return round(value, digits - 1 - floor(log10(abs(value))))
