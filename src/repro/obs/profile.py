"""Sim-time profiler: attribute simulated time to components.

Components bracket their interesting work with::

    with telemetry.profiler.track("disk", "execute"):
        ...  # yield-free bookkeeping, or code that spawns processes

``track`` is an enter/exit hook pair on the *simulated* clock: the
frame's span is however much simulated time elapsed between enter and
exit.  Frames nest per simulation process (each generator gets its own
stack, keyed on the active process), producing flamegraph-style stacks:
self-time is the frame's span minus its children's spans.

Everything is observational — the profiler reads ``env.now`` and the
active process, never schedules — so timelines are unchanged when
profiling is on.  Exporters (folded stacks, Chrome trace) live in
:mod:`repro.obs.trace_export`.
"""

from __future__ import annotations

from contextlib import contextmanager


class _Frame:
    """One live ``track`` interval on some process's stack."""

    __slots__ = ("component", "name", "start", "child_time", "depth")

    def __init__(self, component, name, start, depth):
        self.component = component
        self.name = name
        self.start = start
        self.child_time = 0.0
        self.depth = depth


class SimProfiler:
    """Per-component simulated-time attribution for one environment."""

    enabled = True

    def __init__(self, env, capacity: int = 200_000):
        self.env = env
        self.capacity = capacity
        self.dropped = 0
        #: Completed frames as ``(process, component, name, start, end,
        #: depth, self_time)`` — the raw material for the exporters.
        self.frames: list[tuple] = []
        #: ``component -> total self seconds`` across all frames.
        self.component_self: dict[str, float] = {}
        #: ``"comp:name;comp:name" -> self seconds`` folded stacks.
        self.folded: dict[str, float] = {}
        # Live stacks keyed on the owning process (top-level code uses
        # the None key).  Enter and exit both run while that process is
        # active, so stacks never interleave across processes.
        self._stacks: dict[object, list[_Frame]] = {}

    # -- hot path ---------------------------------------------------------

    def _stack(self) -> list:
        process = self.env.active_process
        key = None if process is None else id(process)
        stack = self._stacks.get(key)
        if stack is None:
            stack = self._stacks[key] = []
        return stack

    @contextmanager
    def track(self, component: str, name: str | None = None):
        """Attribute the simulated time spent inside to ``component``."""
        stack = self._stack()
        frame = _Frame(component, name or component, self.env.now,
                       len(stack))
        stack.append(frame)
        try:
            yield frame
        finally:
            # Normally ``frame`` is on top; a generator torn down out of
            # band (GeneratorExit) may close frames out of order.
            if stack and stack[-1] is frame:
                stack.pop()
            elif frame in stack:
                stack.remove(frame)
            self._finish(stack, frame)

    def _finish(self, stack: list, frame: _Frame) -> None:
        end = self.env.now
        span = end - frame.start
        self_time = max(0.0, span - frame.child_time)
        if stack:
            stack[-1].child_time += span
        self.component_self[frame.component] = \
            self.component_self.get(frame.component, 0.0) + self_time
        if self_time > 0.0:
            key = frame.component + ":" + frame.name
            if stack:
                key = ";".join(parent.component + ":" + parent.name
                               for parent in stack) + ";" + key
            self.folded[key] = self.folded.get(key, 0.0) + self_time
        if len(self.frames) >= self.capacity:
            self.dropped += 1
            return
        self.frames.append((self._process_label(), frame.component,
                            frame.name, frame.start, end, frame.depth,
                            self_time))

    def _process_label(self) -> str:
        process = self.env.active_process
        return process.name if process is not None else "kernel"

    def current_component(self) -> str | None:
        """Component of the innermost live frame, if any (consumed by
        the causal tracer to attribute scheduled events)."""
        stack = self._stacks.get(
            None if self.env.active_process is None
            else id(self.env.active_process))
        if stack:
            return stack[-1].component
        return None

    # -- reporting --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "frames": len(self.frames),
            "dropped": self.dropped,
            "components": {component: seconds for component, seconds
                           in sorted(self.component_self.items())},
        }


class _NullSpan:
    """Shared no-op context manager.

    ``NullSimProfiler.track`` sits on the NIC/serve hot paths; a
    ``@contextmanager`` generator there would be one allocation per
    tracked call, so the disabled path returns this singleton instead.
    """

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc_value, traceback):
        return False


_NULL_SPAN = _NullSpan()


class NullSimProfiler:
    """Disabled profiler; shared, stateless, and allocation-free."""

    enabled = False
    env = None
    dropped = 0
    frames: list = []
    component_self: dict = {}
    folded: dict = {}

    def track(self, component: str, name: str | None = None):
        return _NULL_SPAN

    def current_component(self):
        return None

    def to_dict(self) -> dict:
        return {"frames": 0, "dropped": 0, "components": {}}


#: Shared disabled instance.
NULL_PROFILER = NullSimProfiler()
