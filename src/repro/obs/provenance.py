"""Per-block provenance timelines.

For a sampled set of copy blocks, record the full claim → fetch → fill
→ commit lifecycle and *which source* served the data: an origin
replica, a peer chunk service, or the guest's own write.  This is the
forensic view of the PR 2 distribution fabric — it shows the replica
selector and the p2p directory actually doing their jobs.

The recorder subscribes to hooks the data path already exposes
(:attr:`BlockBitmap.transition_listeners` and the fetch router's
success paths); it never schedules, so timelines are unchanged.
"""

from __future__ import annotations


class BlockProvenance:
    """Sampled block-lifecycle recorder for one environment.

    ``stride`` picks the sample: block indices divisible by it are
    tracked (stride 1 tracks everything).  One recorder can watch many
    nodes — :meth:`attach` is called once per deployed VMM and labels
    its events with that node's name.
    """

    enabled = True

    def __init__(self, env, stride: int = 16, capacity: int = 100_000):
        self.env = env
        self.stride = max(1, int(stride))
        self.capacity = capacity
        self.dropped = 0
        #: ``(node, block) -> [(seconds, event, detail), ...]``
        self.timelines: dict[tuple[str, int], list[tuple]] = {}
        self._node_count = 0

    # -- wiring -----------------------------------------------------------

    def attach(self, vmm, node: str | None = None) -> str:
        """Subscribe to ``vmm``'s bitmap transitions under label ``node``.

        Duck-typed: needs only ``vmm.bitmap.transition_listeners``.
        Returns the label used.
        """
        label = node or "node" + str(self._node_count)
        self._node_count += 1
        bitmap = getattr(vmm, "bitmap", None)
        if bitmap is not None:
            bitmap.transition_listeners.append(
                self._bitmap_listener(label))
        return label

    def _bitmap_listener(self, node: str):
        def on_transition(event, block, **details):
            if event == "claim" and not details.get("granted", True):
                return
            name = "guest-fill" if event == "guest-fill" else event
            self.record(node, block, name, details.get("state"))
        return on_transition

    # -- recording --------------------------------------------------------

    def sampled(self, block: int) -> bool:
        return block % self.stride == 0

    def record(self, node: str, block: int, event: str,
               detail=None) -> None:
        if not self.sampled(block):
            return
        key = (node, block)
        timeline = self.timelines.get(key)
        if timeline is None:
            if len(self.timelines) >= self.capacity:
                self.dropped += 1
                return
            timeline = self.timelines[key] = []
        timeline.append((self.env.now, event, detail))

    def note_fetch(self, node: str, lba: int, sector_count: int,
                   source: str, kind: str, started: float,
                   block_sectors: int = 2048) -> None:
        """A fetch for ``[lba, lba+n)`` completed from ``source``.

        ``kind`` is ``"origin"``, ``"peer"`` etc.; ``source`` names the
        serving endpoint (replica tag / peer node).  The range is
        folded onto the blocks it overlaps.
        """
        first = lba // block_sectors
        last = (lba + max(1, sector_count) - 1) // block_sectors
        for block in range(first, last + 1):
            self.record(node, block, "fetch",
                        {"source": source, "kind": kind,
                         "seconds": self.env.now - started})

    # -- reporting --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timelines)

    def sources(self) -> dict:
        """``kind -> fetch count`` across all sampled blocks."""
        counts: dict[str, int] = {}
        for timeline in self.timelines.values():
            for _, event, detail in timeline:
                if event == "fetch" and isinstance(detail, dict):
                    kind = detail.get("kind", "?")
                    counts[kind] = counts.get(kind, 0) + 1
        return counts

    def to_dict(self) -> dict:
        blocks = []
        for (node, block) in sorted(self.timelines):
            timeline = self.timelines[(node, block)]
            blocks.append({
                "node": node,
                "block": block,
                "events": [
                    {"seconds": at, "event": event, "detail": detail}
                    for at, event, detail in timeline
                ],
            })
        return {
            "stride": self.stride,
            "sampled_blocks": len(self.timelines),
            "dropped": self.dropped,
            "sources": self.sources(),
            "blocks": blocks,
        }


class NullBlockProvenance:
    """Disabled provenance recorder; shared and stateless."""

    enabled = False
    env = None
    stride = 0
    dropped = 0
    timelines: dict = {}

    def attach(self, vmm, node=None) -> str:
        return node or "node"

    def sampled(self, block: int) -> bool:
        return False

    def record(self, node, block, event, detail=None) -> None:
        pass

    def note_fetch(self, node, lba, sector_count, source, kind,
                   started, block_sectors: int = 2048) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def sources(self) -> dict:
        return {}

    def to_dict(self) -> dict:
        return {"stride": 0, "sampled_blocks": 0, "dropped": 0,
                "sources": {}, "blocks": []}


#: Shared disabled instance.
NULL_PROVENANCE = NullBlockProvenance()
