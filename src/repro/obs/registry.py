"""Labeled metric instruments and the registry that owns them.

Production bare-metal managers (Ironic, MAAS) treat provisioning
telemetry as a first-class subsystem; so does this reproduction.  A
:class:`MetricsRegistry` hands out *instruments* — counters, gauges,
log-bucketed histograms, and time series — keyed on ``(name, labels)``,
so two call sites asking for the same metric share one instrument.

Everything here is purely observational: instruments never touch the
simulation clock or event queue, so enabling telemetry cannot perturb a
deployment timeline.  When telemetry is disabled, :data:`NULL_REGISTRY`
hands out shared no-op instruments and the hot paths pay one attribute
call per event.
"""

from __future__ import annotations

import math

from repro.metrics.timeseries import TimeSeries


class Counter:
    """Monotonically increasing count (events, bytes, retries)."""

    __slots__ = ("name", "help", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: tuple = (), help: str = ""):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self):
        return f"<Counter {self.name}{dict(self.labels)} = {self.value}>"


class Gauge:
    """Last-written value with min/max tracking (queue depth, progress)."""

    __slots__ = ("name", "help", "labels", "unit", "value", "min", "max")

    kind = "gauge"

    def __init__(self, name: str, labels: tuple = (), help: str = "",
                 unit: str = ""):
        self.name = name
        self.help = help
        self.labels = labels
        self.unit = unit
        self.value = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def set(self, value: float) -> None:
        self.value = value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def __repr__(self):
        return f"<Gauge {self.name}{dict(self.labels)} = {self.value}>"


class Histogram:
    """Log-bucketed latency/size distribution with percentile summaries.

    Buckets grow geometrically from ``min_bound`` by ``growth`` per
    bucket, so six decades of latency (microseconds to minutes) fit in a
    few dozen integer counters.  Percentiles are answered from the
    bucket boundaries (upper bound of the covering bucket, clamped to
    the observed min/max), which is the usual Prometheus-style
    approximation: within one ``growth`` factor of exact.
    """

    __slots__ = ("name", "help", "labels", "unit", "min_bound", "growth",
                 "_log_growth", "buckets", "count", "sum", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, labels: tuple = (), help: str = "",
                 unit: str = "seconds", min_bound: float = 1e-6,
                 growth: float = 2.0):
        if min_bound <= 0:
            raise ValueError("min_bound must be positive")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.name = name
        self.help = help
        self.labels = labels
        self.unit = unit
        self.min_bound = min_bound
        self.growth = growth
        self._log_growth = math.log(growth)
        self.buckets: dict[int, int] = {}  # index -> count
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = self._bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def _bucket_index(self, value: float) -> int:
        if value <= self.min_bound:
            return 0
        # Bucket i covers (min_bound * growth**(i-1), min_bound * growth**i].
        return max(0, math.ceil(
            math.log(value / self.min_bound) / self._log_growth - 1e-9))

    def bucket_upper_bound(self, index: int) -> float:
        return self.min_bound * self.growth ** index

    def bucket_bounds(self) -> list:
        """Sorted ``(upper_bound, count)`` pairs for populated buckets."""
        return [(self.bucket_upper_bound(index), self.buckets[index])
                for index in sorted(self.buckets)]

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.sum / self.count

    def percentile(self, q: float) -> float:
        """Approximate the ``q``-quantile (``q`` in [0, 1]).

        An empty histogram answers 0.0 for every quantile — exporters
        and reports run before any observation lands (a deploy that
        never retransmits, say) and must not have to special-case it.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                bound = self.bucket_upper_bound(index)
                return min(max(bound, self.min), self.max)
        return self.max

    def summary(self) -> dict:
        """The p50/p95/p99 bundle the reports print.

        Always the full key set: an empty histogram reports zeros
        rather than a truncated dict, so JSON consumers can index
        ``summary()["p99"]`` unconditionally.
        """
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def __repr__(self):
        return f"<Histogram {self.name}{dict(self.labels)} " \
               f"n={self.count}>"


class Series:
    """A labeled :class:`TimeSeries` registered like any instrument."""

    __slots__ = ("name", "help", "labels", "series")

    kind = "series"

    def __init__(self, name: str, labels: tuple = (), help: str = "",
                 unit: str = ""):
        self.name = name
        self.help = help
        self.labels = labels
        self.series = TimeSeries(name, unit=unit)

    @property
    def unit(self) -> str:
        return self.series.unit

    def record(self, time: float, value: float) -> None:
        self.series.record(time, value)

    def __len__(self) -> int:
        return len(self.series)


class MetricsRegistry:
    """Owns every instrument; the exporters walk it."""

    enabled = True

    _KINDS = {"counter": Counter, "gauge": Gauge,
              "histogram": Histogram, "series": Series}

    def __init__(self):
        self._instruments: dict[tuple, object] = {}

    def _get_or_create(self, cls, name: str, labels: dict, **kwargs):
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, labels=key[1], **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, labels, help=help)

    def gauge(self, name: str, help: str = "", unit: str = "",
              **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help=help,
                                   unit=unit)

    def histogram(self, name: str, help: str = "", unit: str = "seconds",
                  min_bound: float = 1e-6, growth: float = 2.0,
                  **labels) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help=help,
                                   unit=unit, min_bound=min_bound,
                                   growth=growth)

    def series(self, name: str, help: str = "", unit: str = "",
               **labels) -> Series:
        return self._get_or_create(Series, name, labels, help=help,
                                   unit=unit)

    def collect(self, kind: str | None = None) -> list:
        """Every instrument (optionally of one kind), in name order."""
        instruments = sorted(self._instruments.items())
        return [instrument for (_, _), instrument in instruments
                if kind is None or instrument.kind == kind]

    def get(self, name: str, **labels):
        """Look up one instrument, or ``None``."""
        return self._instruments.get(
            (name, tuple(sorted(labels.items()))))

    def __len__(self) -> int:
        return len(self._instruments)


class _NullInstrument:
    """Shared do-nothing instrument; safe to hand to every call site."""

    __slots__ = ()

    name = "null"
    help = ""
    labels: tuple = ()
    unit = ""
    kind = "null"
    value = 0.0
    count = 0
    sum = 0.0
    min = None
    max = None

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def record(self, time: float, value: float) -> None:
        pass

    def __len__(self) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled registry: every request returns the shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "", **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", unit: str = "", **labels):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", unit: str = "seconds",
                  min_bound: float = 1e-6, growth: float = 2.0,
                  **labels):
        return _NULL_INSTRUMENT

    def series(self, name: str, help: str = "", unit: str = "", **labels):
        return _NULL_INSTRUMENT

    def collect(self, kind: str | None = None) -> list:
        return []

    def get(self, name: str, **labels):
        return None

    def __len__(self) -> int:
        return 0


#: Shared disabled registry.
NULL_REGISTRY = NullRegistry()
