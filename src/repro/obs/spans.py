"""Hierarchical span tracing keyed on simulated time.

A :class:`Span` is one timed operation — a deployment phase, an AoE
round-trip, a mediated command.  Spans form a tree: the provisioner
opens a ``deploy:<method>`` root, the VMM's phase machine keeps one
phase span open at a time, and short-lived operations attach to
whichever span is *ambient* when they start.

The ambient pointer (rather than a call stack) is deliberate: the
simulation interleaves many generator processes, so "the enclosing
call" is meaningless — but "the deployment phase in effect right now"
is exactly the parent an AoE round-trip belongs under.

Like every part of the telemetry subsystem, tracing is purely
observational (it reads ``env.now``, never schedules), so spans cannot
perturb the simulated timeline.
"""

from __future__ import annotations

from contextlib import contextmanager


class Span:
    """One timed node in the trace tree."""

    __slots__ = ("name", "start", "end", "parent", "children", "attrs")

    def __init__(self, name: str, start: float, parent=None,
                 attrs: dict | None = None):
        self.name = name
        self.start = start
        self.end: float | None = None
        self.parent = parent
        self.children: list = []
        self.attrs = attrs or {}

    @property
    def finished(self) -> bool:
        return self.end is not None

    def duration(self, now: float | None = None) -> float:
        end = self.end if self.end is not None else now
        if end is None:
            raise ValueError(f"span {self.name!r} still open")
        return end - self.start

    def to_dict(self, now: float | None = None) -> dict:
        node = {"name": self.name, "start": self.start, "end": self.end}
        if self.end is None and now is not None:
            node["end"] = now
            node["open"] = True
        if node["end"] is not None:
            node["duration"] = node["end"] - self.start
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.children:
            node["children"] = [child.to_dict(now)
                                for child in self.children]
        return node

    def __repr__(self):
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return f"<Span {self.name} [{self.start:.6f}, {end}]>"


#: Sentinel: "attach to whatever span is ambient right now".
AMBIENT = object()


class SpanTracer:
    """Records the span tree against the simulation clock.

    ``capacity`` bounds the total recorded span count (a multi-gigabyte
    background copy makes hundreds of thousands of AoE round-trips);
    once full, new spans become invisible placeholders and
    ``dropped_spans`` counts them — totals live in the metrics
    registry, which never drops.  Structural spans — roots and their
    direct children, i.e. the deployment phases — are exempt, so a
    late phase transition (de-virtualization) is never evicted by a
    flood of earlier leaf spans.
    """

    enabled = True

    def __init__(self, env, capacity: int = 10_000):
        self.env = env
        self.capacity = capacity
        self.roots: list[Span] = []
        self.dropped_spans = 0
        self._recorded = 0
        #: The span new work should attach to by default (the current
        #: deployment phase); maintained by the phase machine.
        self.ambient: Span | None = None

    # -- recording ---------------------------------------------------------------

    def start(self, name: str, parent=AMBIENT, **attrs) -> Span:
        """Open a span now; attach to ``parent`` (default: ambient)."""
        if parent is AMBIENT:
            parent = self.ambient
        structural = parent is None or parent.parent is None
        if self._recorded >= self.capacity and not structural:
            self.dropped_spans += 1
            return Span(name, self.env.now, parent=None, attrs=attrs)
        self._recorded += 1
        span = Span(name, self.env.now, parent=parent, attrs=attrs)
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)
        return span

    def end(self, span: Span, **attrs) -> Span:
        """Close a span now (idempotent; late attrs are merged in)."""
        if span.end is None:
            span.end = self.env.now
        if attrs:
            span.attrs.update(attrs)
        return span

    @contextmanager
    def span(self, name: str, parent=AMBIENT, **attrs):
        """``with tracer.span("os-boot"):`` convenience wrapper."""
        span = self.start(name, parent=parent, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    # -- reading -----------------------------------------------------------------

    def __len__(self) -> int:
        return self._recorded

    def walk(self):
        """Depth-first iteration over every recorded span."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> list:
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> dict:
        return {
            "spans": [root.to_dict(self.env.now) for root in self.roots],
            "recorded": self._recorded,
            "dropped": self.dropped_spans,
        }


class NullSpanTracer:
    """Disabled tracer: no-ops and a write-proof ambient pointer."""

    enabled = False
    capacity = 0
    roots: tuple = ()
    dropped_spans = 0

    _NULL_SPAN = Span("null", 0.0)

    @property
    def ambient(self):
        return None

    @ambient.setter
    def ambient(self, value):
        # Silently ignored: the shared NULL_TRACER must stay stateless.
        pass

    def start(self, name: str, parent=AMBIENT, **attrs) -> Span:
        return self._NULL_SPAN

    def end(self, span: Span, **attrs) -> Span:
        return span

    @contextmanager
    def span(self, name: str, parent=AMBIENT, **attrs):
        yield self._NULL_SPAN

    def __len__(self) -> int:
        return 0

    def walk(self):
        return iter(())

    def find(self, name: str) -> list:
        return []

    def to_dict(self) -> dict:
        return {"spans": [], "recorded": 0, "dropped": 0}


#: Shared disabled tracer.
NULL_TRACER = NullSpanTracer()
