"""The telemetry bundle every layer receives: registry + span tracer.

One :class:`Telemetry` instance is created per simulation (by the CLI
or a bench) and threaded through the testbed into NICs, the AoE
endpoints, the mediators, and the copier.  Every constructor defaults
to the shared :data:`NULL_TELEMETRY`, which makes all recording a no-op
— the deployment timeline is byte-for-byte identical with telemetry on,
off, or absent, because instruments only *read* the clock.
"""

from __future__ import annotations

from repro.obs.causal import NULL_CAUSAL, CausalTracer
from repro.obs.export import (
    telemetry_summary,
    telemetry_to_dict,
    telemetry_to_prometheus,
    write_json,
)
from repro.obs.profile import NULL_PROFILER, SimProfiler
from repro.obs.provenance import NULL_PROVENANCE, BlockProvenance
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import NULL_TRACER, SpanTracer


class Telemetry:
    """Live telemetry for one simulation environment.

    ``forensics=True`` additionally arms the deployment-forensics
    layer: the causal event tracer (attached to the environment's
    ``schedule_hook``), the sim-time profiler, and the per-block
    provenance recorder.  All three stay at their shared Null
    stand-ins otherwise, so plain metric/span collection pays nothing
    for them.
    """

    enabled = True

    def __init__(self, env, span_capacity: int = 10_000,
                 forensics: bool = False,
                 provenance_stride: int = 16):
        self.env = env
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(env, capacity=span_capacity)
        self.forensics = forensics
        if forensics:
            self.profiler = SimProfiler(env)
            self.causal = CausalTracer(env,
                                       profiler=self.profiler).attach()
            self.provenance = BlockProvenance(env,
                                              stride=provenance_stride)
        else:
            self.profiler = NULL_PROFILER
            self.causal = NULL_CAUSAL
            self.provenance = NULL_PROVENANCE

    def to_dict(self) -> dict:
        return telemetry_to_dict(self)

    def to_prometheus(self) -> str:
        return telemetry_to_prometheus(self)

    def summary(self) -> str:
        return telemetry_summary(self)

    def write(self, path) -> None:
        """Dump to ``path``: Prometheus text for ``.prom``, else JSON."""
        if str(path).endswith(".prom"):
            with open(path, "w") as handle:
                handle.write(self.to_prometheus())
        else:
            write_json(self, path)


class NullTelemetry:
    """Disabled bundle; shared, stateless, and write-proof."""

    enabled = False
    forensics = False
    env = None
    registry = NULL_REGISTRY
    tracer = NULL_TRACER
    profiler = NULL_PROFILER
    causal = NULL_CAUSAL
    provenance = NULL_PROVENANCE

    def to_dict(self) -> dict:
        return {"sim": {}, "counters": [], "gauges": [],
                "histograms": [], "series": [], "spans": [],
                "recorded": 0, "dropped": 0}

    def to_prometheus(self) -> str:
        return ""

    def summary(self) -> str:
        return "(telemetry disabled)"

    def write(self, path) -> None:
        raise RuntimeError(
            "telemetry is disabled; build a Telemetry(env) and pass it "
            "through build_testbed(telemetry=...) to record metrics")


#: Shared disabled instance — the default everywhere.
NULL_TELEMETRY = NullTelemetry()
