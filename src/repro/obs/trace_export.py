"""Exporters for the forensics layer.

Three output shapes:

* **Chrome trace** — the ``{"traceEvents": [...]}`` JSON that
  ``chrome://tracing`` / Perfetto open directly.  Span-tree spans
  become one lane per deployment; profiler frames become one lane per
  simulation process.  Timestamps are microseconds of *simulated* time.
* **Folded stacks** — ``comp:name;comp:name self_us`` lines, the input
  format of ``flamegraph.pl`` and speedscope.
* **Profile report** — the machine-readable dict behind
  ``repro profile``: total time, per-component wall partition (sums to
  the total by construction), critical-path latency budget, provenance
  source counts.
"""

from __future__ import annotations

import json


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def chrome_trace_document(telemetry, pid: int = 1,
                          process_name: str = "repro") -> dict:
    """Build a Chrome-trace JSON document from one telemetry bundle.

    Works with spans alone; profiler/causal lanes appear when the
    bundle was built with ``forensics=True``.
    """
    events: list[dict] = []
    tids: dict[str, int] = {}

    def tid_for(label: str) -> int:
        tid = tids.get(label)
        if tid is None:
            tid = tids[label] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": label},
            })
        return tid

    events.append({
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
        "args": {"name": process_name},
    })

    now = telemetry.env.now if telemetry.env is not None else 0.0

    # One lane per span-tree root (the deployments).
    for index, root in enumerate(telemetry.tracer.roots):
        tid = tid_for(f"spans:{root.name}#{index}")
        stack = [root]
        while stack:
            span = stack.pop()
            end = span.end if span.end is not None else now
            event = {
                "ph": "X", "pid": pid, "tid": tid,
                "name": span.name,
                "ts": _us(span.start),
                "dur": _us(max(0.0, end - span.start)),
                "cat": "span",
            }
            if span.attrs:
                event["args"] = {key: value for key, value
                                 in span.attrs.items()
                                 if isinstance(value, (str, int, float,
                                                       bool))}
            events.append(event)
            stack.extend(reversed(span.children))

    # One lane per simulation process, from the profiler's frames.
    profiler = getattr(telemetry, "profiler", None)
    if profiler is not None:
        for (process, component, name, start, end, depth,
             _self_time) in profiler.frames:
            events.append({
                "ph": "X", "pid": pid, "tid": tid_for(f"proc:{process}"),
                "name": f"{component}:{name}",
                "ts": _us(start),
                "dur": _us(max(0.0, end - start)),
                "cat": component,
            })

    # Critical-path marks as instant events on their own lane.
    causal = getattr(telemetry, "causal", None)
    if causal is not None and causal.marks:
        tid = tid_for("marks")
        for name, (_node, at) in sorted(causal.marks.items(),
                                        key=lambda kv: kv[1][1]):
            events.append({
                "ph": "i", "pid": pid, "tid": tid, "name": name,
                "ts": _us(at), "s": "g", "cat": "mark",
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated-seconds",
                      "total_sim_seconds": now},
    }


def write_chrome_trace(telemetry, path, pid: int = 1,
                       process_name: str = "repro") -> dict:
    document = chrome_trace_document(telemetry, pid=pid,
                                     process_name=process_name)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=None,
                  separators=(",", ":"), sort_keys=False)
        handle.write("\n")
    return document


def folded_stacks(telemetry) -> str:
    """Profiler stacks in ``flamegraph.pl`` folded format (µs weights)."""
    profiler = getattr(telemetry, "profiler", None)
    if profiler is None:
        return ""
    lines = [
        f"{stack} {max(1, round(seconds * 1e6))}"
        for stack, seconds in sorted(profiler.folded.items())
        if seconds > 0.0
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def profile_report(telemetry, anchor: str | None = None) -> dict:
    """The dict behind ``repro profile``.

    ``components`` partitions total simulated time (the values sum to
    ``total_sim_seconds`` exactly); ``critical_path`` is the per-
    component latency budget of the causal chain ending at ``anchor``
    (default: devirtualize / deploy-complete).
    """
    env = telemetry.env
    total = env.now if env is not None else 0.0
    causal = getattr(telemetry, "causal", None)
    profiler = getattr(telemetry, "profiler", None)
    provenance = getattr(telemetry, "provenance", None)
    report = {
        "total_sim_seconds": total,
        "components": {},
        "critical_path": {"anchor": None, "anchor_seconds": 0.0,
                          "steps": 0, "budget": []},
        "tracked": {},
        "provenance_sources": {},
        "causal": {"nodes": 0, "dropped": 0, "marks": {}},
    }
    if causal is not None:
        shares = causal.component_times(until=total)
        report["components"] = {component: seconds for component, seconds
                                in sorted(shares.items(),
                                          key=lambda kv: (-kv[1], kv[0]))}
        report["critical_path"] = causal.latency_budget(anchor)
        report["causal"] = causal.to_dict()
    if profiler is not None:
        report["tracked"] = dict(sorted(
            profiler.component_self.items(),
            key=lambda kv: (-kv[1], kv[0])))
    if provenance is not None:
        report["provenance_sources"] = provenance.sources()
    return report


def format_profile(report: dict) -> str:
    """Human-readable rendering of :func:`profile_report`."""
    lines = []
    total = report["total_sim_seconds"]
    lines.append(f"Total simulated time: {total:.3f} s")

    components = report.get("components") or {}
    if components:
        lines.append("")
        lines.append("Component wall partition (sums to total):")
        for component, seconds in components.items():
            share = seconds / total if total > 0 else 0.0
            lines.append(f"  {component:<12} {seconds:>10.3f} s"
                         f"  {share:>6.1%}")

    path = report.get("critical_path") or {}
    budget = path.get("budget") or []
    if budget:
        lines.append("")
        anchor = path.get("anchor")
        anchor_at = path.get("anchor_seconds", 0.0)
        lines.append(f"Critical path to {anchor!r} "
                     f"({anchor_at:.3f} s, {path.get('steps', 0)} hops):")
        for entry in budget:
            lines.append(f"  {entry['component']:<12} "
                         f"{entry['seconds']:>10.3f} s"
                         f"  {entry['share']:>6.1%}")
        covered = sum(entry["share"] for entry in budget)
        lines.append(f"  {'(covered)':<12} {'':>10}   {covered:>6.1%}")

    tracked = report.get("tracked") or {}
    if tracked:
        lines.append("")
        lines.append("Tracked self-time by component:")
        for component, seconds in tracked.items():
            lines.append(f"  {component:<12} {seconds:>10.3f} s")

    sources = report.get("provenance_sources") or {}
    if sources:
        lines.append("")
        lines.append("Sampled block fetch sources:")
        for kind, count in sorted(sources.items(),
                                  key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {kind:<12} {count:>6} fetches")

    return "\n".join(lines)
