"""Central calibration constants for the simulated testbed.

Values are taken from the paper's own description of its environment
(Section 5: FUJITSU PRIMERGY RX200 S6, Xeon X5680, Seagate Constellation.2,
gigabit Ethernet with 9000-byte MTU, Mellanox 4X QDR InfiniBand) or, where
the paper gives a measured number, back-derived from that number.  Each
constant notes its provenance.  Benchmarks may override any of these, but
defaults reproduce the paper's setting.
"""

# --------------------------------------------------------------------------
# Machine (FUJITSU PRIMERGY RX200 S6)
# --------------------------------------------------------------------------

#: Number of CPU cores (2 sockets x 6 cores, hyper-threading disabled).
CPU_CORES = 12

#: CPU clock (Xeon X5680).
CPU_HZ = 3.33e9

#: Physical memory in bytes (96 GB).
MEMORY_BYTES = 96 * 2**30

#: Memory reserved by the BMcast VMM (paper 4.3: 128 MB, not released).
VMM_RESERVED_BYTES = 128 * 2**20

#: Firmware (BIOS) initialization time; paper 5.1 measured 133 s on the
#: server-class board.
FIRMWARE_INIT_SECONDS = 133.0

#: OS boot time on bare metal once firmware is done (paper 5.1: 29 s).
OS_BOOT_SECONDS = 29.0

# --------------------------------------------------------------------------
# Local disk (Seagate Constellation.2 ST9500620NS, 500 GB, 7200 rpm SATA)
# --------------------------------------------------------------------------

#: Sector size in bytes.
SECTOR_BYTES = 512

#: Disk capacity in bytes.
DISK_BYTES = 500 * 10**9

#: Sequential read bandwidth; paper Fig. 10 measured 116.6 MB/s bare metal.
DISK_READ_BW = 116.6e6

#: Sequential write bandwidth; paper Fig. 10 measured 111.9 MB/s.
DISK_WRITE_BW = 111.9e6

#: Average seek time for a random seek (7200 rpm nearline drive).
DISK_SEEK_AVG_SECONDS = 8.5e-3

#: Full-stroke seek time.
DISK_SEEK_MAX_SECONDS = 16.0e-3

#: Rotational period (7200 rpm -> 8.33 ms; average latency is half).
DISK_ROTATION_SECONDS = 60.0 / 7200

#: Command processing overhead per request at the drive.
DISK_COMMAND_OVERHEAD_SECONDS = 50e-6

#: Size of the drive's track/read cache (used by the dummy-sector restart
#: trick: re-reading a just-read sector hits this cache).
DISK_CACHE_BYTES = 64 * 2**20

#: Service time of a read that hits the drive cache.
DISK_CACHE_HIT_SECONDS = 120e-6

# --------------------------------------------------------------------------
# Network (gigabit Ethernet, FUJITSU SR-S348TC1 switch, 9000-byte MTU)
# --------------------------------------------------------------------------

#: Link rate in bits/second.
GBE_BITS_PER_SECOND = 1e9

#: Jumbo-frame MTU used in the paper's testbed.
GBE_MTU = 9000

#: Standard Ethernet MTU (for the non-jumbo ablation).
ETH_MTU_STANDARD = 1500

#: One-way propagation + switch forwarding latency per hop.
SWITCH_LATENCY_SECONDS = 20e-6

#: Ethernet per-frame overhead (preamble + header + FCS + IFG), bytes.
ETH_FRAME_OVERHEAD = 38

#: AoE header size in bytes (Ethernet header + AoE common + ATA header).
AOE_HEADER_BYTES = 36

# --------------------------------------------------------------------------
# InfiniBand (Mellanox MT26428 4X QDR via Grid Director 4036E)
# --------------------------------------------------------------------------

#: 4X QDR data rate after 8b/10b encoding = 32 Gbit/s.
IB_BITS_PER_SECOND = 32e9

#: Base RDMA one-way latency on bare metal.
IB_BASE_LATENCY_SECONDS = 1.9e-6

#: Extra RDMA latency under KVM direct device assignment
#: (IOMMU + cache pollution + nested paging; paper Fig. 13: +23.6%).
KVM_IB_LATENCY_FACTOR = 1.236

#: Extra RDMA latency under BMcast during deployment (paper: <1%).
BMCAST_IB_LATENCY_FACTOR = 1.008

# --------------------------------------------------------------------------
# Virtualization cost model
# --------------------------------------------------------------------------

#: Time for one VM exit + entry round trip (hardware VMX transition plus
#: minimal VMM dispatch), seconds.
VM_EXIT_SECONDS = 1.2e-6

#: Extra handling time for an exit that the mediator must interpret
#: (register decode, bookkeeping).
MEDIATOR_HANDLE_SECONDS = 0.8e-6

#: Default BMcast preemption-timer polling interval during deployment.
POLL_INTERVAL_SECONDS = 100e-6

#: Polling interval granularity when falling back to soft timers
#: (no preemption timer): coarser and jittery.
SOFT_TIMER_INTERVAL_SECONDS = 1e-3

#: Fraction of one core consumed by the BMcast deployment threads
#: (paper 5.2: 5% of total CPU time for threads + 1% VMM core = 6%).
BMCAST_DEPLOY_CPU_FRACTION = 0.06

#: TLB miss rate multiplier while nested paging is enabled
#: (paper 5.2: TLB misses increased up to 5x).
EPT_TLB_MISS_MULTIPLIER = 5.0

#: TLB miss service latency multiplier under two-dimensional page walks
#: (paper 5.2: latency on TLB misses doubled).
EPT_TLB_WALK_MULTIPLIER = 2.0

# --------------------------------------------------------------------------
# KVM (+ELI) baseline overhead model
# --------------------------------------------------------------------------

#: KVM hypervisor + host boot time (paper 5.1: 30 s).
KVM_BOOT_SECONDS = 30.0

#: BMcast VMM boot time (paper 5.1: 5 s, network-booted, parallel init).
BMCAST_VMM_BOOT_SECONDS = 5.0

#: Guest OS boot time on KVM with NFS-backed image (paper 5.1: 42 s).
KVM_GUEST_BOOT_NFS_SECONDS = 42.0

#: Guest OS boot time on KVM with iSCSI-backed image (paper 5.1: 55 s).
KVM_GUEST_BOOT_ISCSI_SECONDS = 55.0

#: KVM CPU-bound slowdown (kernbench +3%, paper Fig. 7).
KVM_CPU_OVERHEAD = 0.03

#: KVM memory-bandwidth overhead at large block sizes (paper Fig. 9: 35%).
KVM_MEMORY_OVERHEAD = 0.35

#: KVM lock-holder preemption: added per-thread contention cost slope;
#: produces ~68% overhead at 24 threads on 12 cores (paper Fig. 8).
KVM_LHP_OVERHEAD_AT_2X_THREADS = 0.68

#: KVM virtio storage throughput penalties (paper Fig. 10).
KVM_STORAGE_READ_OVERHEAD_LOCAL = 0.105
KVM_STORAGE_WRITE_OVERHEAD_LOCAL = 0.136
KVM_STORAGE_READ_OVERHEAD_NFS = 0.123
KVM_STORAGE_WRITE_OVERHEAD_NFS = 0.153

# --------------------------------------------------------------------------
# OS image / deployment workload
# --------------------------------------------------------------------------

#: OS image size used in all deployment experiments (32 GB).
OS_IMAGE_BYTES = 32 * 2**30

#: Bytes the guest actually reads from disk while booting (paper 5.1:
#: BMcast transferred 72 MB during the 58 s boot).
OS_BOOT_READ_BYTES = 72 * 2**20

#: Installer OS network-boot time in the image-copy baseline (paper: 50 s).
IMAGE_COPY_INSTALLER_BOOT_SECONDS = 50.0

#: Reboot time after image copy, excluding the initial firmware pass
#: (paper: 145 s restart, which includes a second firmware init).
IMAGE_COPY_RESTART_SECONDS = 145.0

#: Background copy block size (paper 5.6: 1024 KB).
COPY_BLOCK_BYTES = 1024 * 2**10

# --------------------------------------------------------------------------
# Background-copy moderation defaults (Section 3.3's three parameters)
# --------------------------------------------------------------------------

#: Guest I/O frequency threshold (requests/second) above which the copier
#: suspends itself.  Calibrated between ioping's ~50 req/s (the paper
#: measures +4.3 ms guest latency *with* background copy active, so
#: moderate I/O must coexist with the copier) and the OS boot burst of
#: ~165 req/s (paper 3.3: "the VMM will not perform excessive background
#: copy operations during OS startup").
MODERATION_GUEST_IO_THRESHOLD = 100.0

#: Interval between VMM block writes when the guest is quiet.
MODERATION_WRITE_INTERVAL_SECONDS = 10e-3

#: How long the copier suspends when the guest is busy.  Under sustained
#: heavy guest I/O the copier concedes one write per suspend interval,
#: producing the small residual interference Figure 10 measures (-4.1%
#: sequential read) instead of stalling deployment entirely.
MODERATION_SUSPEND_INTERVAL_SECONDS = 1.0
