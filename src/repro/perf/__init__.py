"""Parallel sweep runner: fan scenario grids across worker processes.

``repro sweep`` expands a parameter grid (autoscaler policy x demand
model x node count, or moderation write-interval), runs every point in
a ``multiprocessing`` pool, and merges the per-run figures into one
deterministic document — byte-identical regardless of ``--jobs``.
See ``docs/performance.md``.
"""

from repro.perf.sweep import (
    SweepSpec,
    derive_seed,
    expand_grid,
    param_key,
    run_sweep,
    sweep_to_json,
)

__all__ = [
    "SweepSpec",
    "derive_seed",
    "expand_grid",
    "param_key",
    "run_sweep",
    "sweep_to_json",
]
