"""Deterministic parallel parameter sweeps.

A sweep expands a small axes grid into points, runs each point's
scenario in its own worker process, and merges the per-point figures
into one document.  Three properties make the output trustworthy:

* **Per-point seeding is positional-independent.**  Every point's RNG
  seed derives from ``blake2b(parent_seed ":" param_key)`` via
  :func:`derive_seed`, then passes through the sanctioned
  :func:`repro.util.rng.make_rng` choke point.  Adding or removing a
  grid axis value never changes any *other* point's seed.
* **The merge is keyed, not ordered.**  Results are collected with
  ``Pool.map`` (which preserves submission order) and then re-sorted
  by parameter key, so ``--jobs 1`` and ``--jobs N`` produce
  byte-identical JSON.
* **Workers share nothing.**  Each point builds a fresh
  :class:`~repro.sim.Environment` inside its worker; figures are pure
  simulated-time metrics, never wall-clock.

The pool is used even for ``jobs=1`` so the single-job and multi-job
code paths cannot drift apart.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from itertools import product
# The sweep runner is host-side orchestration: it spawns whole
# simulations into worker processes and never runs inside an
# Environment itself, so the blocking-primitives ban does not apply.
from multiprocessing import get_context  # simlint: ignore[SIM006]

from repro.util.rng import make_rng

MB = 2**20

#: Registered sweep kinds -> the worker that runs one grid point.
#: Each worker takes ``(params, fixed, seed)`` and returns a flat
#: ``{figure_name: number}`` dict of simulated-time metrics.
KINDS = ("ctl", "moderation")


def derive_seed(parent_seed: int, key: str) -> int:
    """A stable per-point seed from the parent seed and parameter key.

    Hash-based (not ``parent_seed + index``) so a point's seed never
    depends on its position in the grid — growing an axis leaves every
    existing point's run bit-identical.
    """
    digest = hashlib.blake2b(f"{parent_seed}:{key}".encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


def param_key(params: dict) -> str:
    """Canonical string key for one grid point (sorted by name)."""
    return ",".join(f"{name}={params[name]}" for name in sorted(params))


def expand_grid(axes: dict) -> list:
    """All axis combinations as dicts, in sorted-key lexical order."""
    names = sorted(axes)
    return [dict(zip(names, values))
            for values in product(*(axes[name] for name in names))]


@dataclass(frozen=True)
class SweepSpec:
    """One sweep: a kind, its axes grid, and fixed parameters."""

    kind: str
    axes: dict
    parent_seed: int = 20150314
    fixed: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown sweep kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")


# -- per-kind point runners (top level: workers must pickle them) ------------

def _run_ctl_point(params: dict, fixed: dict, seed: int) -> dict:
    """One elastic-control-plane run; returns the numeric report."""
    from repro.cloud import build_testbed
    from repro.ctl import (DEMANDS, PLACEMENTS, POLICIES,
                           ElasticController, NodePool)
    from repro.guest.osimage import OsImage

    image_mb = int(fixed.get("image_mb", 64))
    image = OsImage(size_bytes=image_mb * MB,
                    boot_read_bytes=min(16 * MB, image_mb * MB // 4),
                    boot_think_seconds=3.0)
    testbed = build_testbed(node_count=int(params["nodes"]),
                            server_count=1, p2p=True, image=image)
    pool = NodePool(testbed, vmxoff_mode=fixed.get("vmxoff_mode",
                                                   "resident"))
    demand = DEMANDS[params["demand"]](seed=seed)
    controller = ElasticController(
        pool, demand, POLICIES[params["policy"]](),
        PLACEMENTS[fixed.get("placement", "cache-aware")](),
        tick=float(fixed.get("tick", 15.0)))
    env = testbed.env
    env.run(until=env.process(
        controller.run(float(fixed.get("duration", 900.0))),
        name="ctl-loop"))
    report = controller.report()
    report.pop("fleet", None)
    return {name: value for name, value in sorted(report.items())
            if isinstance(value, (int, float))}


def _run_moderation_point(params: dict, fixed: dict, seed: int) -> dict:
    """One moderated deploy + fio read; returns MB/s figures.

    The scenario is fully deterministic (no stochastic models), so
    ``seed`` is unused — it is accepted so every kind has the same
    worker signature and seed bookkeeping.
    """
    from repro.apps.fio import FioBenchmark
    from repro.cloud.provisioner import Provisioner
    from repro.cloud.scenario import build_testbed
    from repro.guest.osimage import OsImage
    from repro.vmm.moderation import interval_sweep_policy

    image_mb = int(fixed.get("image_mb", 2048))
    image = OsImage(size_bytes=image_mb * MB,
                    boot_read_bytes=min(16 * MB, image_mb * MB // 4))
    testbed = build_testbed(image=image)
    provisioner = Provisioner(testbed)
    env = testbed.env
    interval = float(params["write_interval"])
    instance = env.run(until=env.process(provisioner.deploy(
        "bmcast", skip_firmware=True,
        policy=interval_sweep_policy(interval))))
    vmm = instance.platform
    fio = FioBenchmark(instance)
    fio.TOTAL_BYTES = int(fixed.get("fio_mb", 128)) * MB
    figures = {}

    def measure():
        yield from fio.layout()
        before = vmm.copier.bytes_written + vmm.copier.writeback_bytes
        start = env.now
        guest = yield from fio.read_throughput()
        vmm_bytes = (vmm.copier.bytes_written
                     + vmm.copier.writeback_bytes - before)
        figures["guest_read_mbps"] = round(guest / 1e6, 3)
        figures["vmm_write_mbps"] = round(
            vmm_bytes / (env.now - start) / 1e6, 3)

    env.run(until=env.process(measure()))
    return figures


_POINT_RUNNERS = {
    "ctl": _run_ctl_point,
    "moderation": _run_moderation_point,
}


def _run_point(task: tuple) -> dict:
    """Pool worker: run one grid point and wrap it with its identity."""
    kind, params, fixed, seed = task
    figures = _POINT_RUNNERS[kind](params, fixed, seed)
    return {"key": param_key(params), "params": params, "seed": seed,
            "figures": figures}


# -- the runner --------------------------------------------------------------

def _tasks_for(spec: SweepSpec) -> list:
    tasks = []
    for params in expand_grid(spec.axes):
        key = param_key(params)
        # make_rng is the sanctioned randomness door; routing the
        # derived seed through it keeps sweeps under the same SIM003
        # discipline as the models they drive.
        seed = make_rng(derive_seed(spec.parent_seed, key)) \
            .getrandbits(32)
        tasks.append((spec.kind, params, spec.fixed, seed))
    return tasks


def run_sweep(spec: SweepSpec, jobs: int = 1) -> dict:
    """Run every grid point and merge the figures deterministically.

    ``jobs`` sizes the worker pool; it never affects the output.  The
    merged document lists runs sorted by parameter key and carries the
    spec so a result file is self-describing.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    tasks = _tasks_for(spec)
    context = get_context()
    with context.Pool(processes=min(jobs, len(tasks))) as pool:
        results = pool.map(_run_point, tasks)
    results.sort(key=lambda run: run["key"])
    return {
        "kind": spec.kind,
        "parent_seed": spec.parent_seed,
        "axes": {name: list(values)
                 for name, values in sorted(spec.axes.items())},
        "fixed": dict(sorted(spec.fixed.items())),
        "runs": results,
    }


def sweep_to_json(result: dict) -> str:
    """Canonical serialization — the byte-identity comparison target."""
    return json.dumps(result, indent=2, sort_keys=True) + "\n"
