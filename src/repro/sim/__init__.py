"""Discrete-event simulation engine underlying the BMcast reproduction.

Public surface::

    from repro.sim import Environment, Interrupt, Store

    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return "done"

    p = env.process(proc(env))
    env.run(until=p)   # -> "done"
"""

from repro.sim.engine import Environment, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)
from repro.sim.process import Process
from repro.sim.resources import PriorityStore, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Request",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
]
