"""The simulation environment: clock, event queue, and run loop.

Scheduling is split between two structures (the "fast path"):

* a binary heap for events scheduled with a non-zero delay, and
* two FIFO *fast lanes* (one per priority) for zero-delay events — the
  dominant case in callback chains (``succeed``/``fail``, process
  kick-starts, store hand-offs, interrupts).

Zero-delay entries are appended with a monotonically increasing
``(time, priority, eid)`` key, so each lane is sorted by construction
and ``step`` only has to compare the three heads.  The observable event
order — and therefore the replay digest folded over ``trace_hook`` — is
identical to a single global heap, because every entry carries the same
total-order key either way.  ``Environment(fast_lane=False)`` forces the
pure-heap reference scheduler; the replay-equality tests compare the two
digests byte for byte.

Cancellation is lazy: ``cancel(event)`` marks the event and the run loop
discards it when it surfaces, so cancelling costs O(1) instead of a heap
re-build.  ``peek`` prunes cancelled heads so ``run(until=time)`` never
overshoots on a dead head.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from collections import deque

from repro.sim.events import (
    _PENDING,
    AllOf,
    AnyOf,
    Event,
    SimulationError,
    Timeout,
)
from repro.sim.process import Process

#: Sources for queue entries, used by the head-selection helpers.
_SRC_HEAP = 0
_SRC_URGENT = 1
_SRC_NORMAL = 2

#: Upper bound on recycled Timeout objects retained per environment.
_TIMEOUT_POOL_LIMIT = 256


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class StopSimulation(Exception):
    """Raised to abort :meth:`Environment.run` from within the simulation."""


class Environment:
    """Discrete-event simulation environment.

    Time is a float in **seconds**.  Events are processed in (time,
    priority, insertion-order) order, so simultaneous events retain FIFO
    semantics unless explicitly prioritized.

    ``fast_lane=False`` selects the pure-heap reference scheduler (and
    disables :meth:`pooled_timeout` recycling); it exists so the replay
    checker can prove the optimized scheduler pops the exact same event
    stream.
    """

    #: Priority for urgent events (interrupts) processed before normal ones.
    PRIORITY_URGENT = 0
    #: Default priority.
    PRIORITY_NORMAL = 1

    def __init__(self, initial_time: float = 0.0, fast_lane: bool = True):
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = count()
        self.fast_lane = bool(fast_lane)
        #: Zero-delay FIFO lanes; each holds (time, priority, eid, event)
        #: entries that are sorted by construction (time and eid are both
        #: monotone within a run).
        self._lane_urgent: deque = deque()
        self._lane_normal: deque = deque()
        #: Events lazily cancelled via :meth:`cancel`; discarded (no
        #: trace, no callbacks) when they surface.
        self._cancelled: set = set()
        self._timeout_pool: list = []
        self._active_process: Process | None = None
        # Engine throughput counters (always on: two integer increments
        # per event are cheaper than routing telemetry through here, and
        # they let any report answer "how much work did this sim do").
        self.events_processed = 0
        self.processes_spawned = 0
        #: Optional callable ``(now, event)`` invoked for every event the
        #: run loop pops, *before* its callbacks run.  The replay-divergence
        #: checker (repro.analysis.replay) folds this stream into a rolling
        #: hash; the hook must never mutate simulation state.
        self.trace_hook = None
        #: Optional callable ``(event, cause, fire_at)`` invoked whenever
        #: an event is scheduled.  ``cause`` is the event whose callbacks
        #: are currently running (None at the top level), which is exactly
        #: the causal edge the forensics layer (repro.obs.causal) records.
        #: Kept separate from ``trace_hook`` so causal tracing composes
        #: with the replay checker; the hook must never mutate state.
        self.schedule_hook = None
        self._current_event: Event | None = None

    # -- clock and introspection ------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def current_event(self) -> Event | None:
        """The event whose callbacks are currently running, if any."""
        return self._current_event

    @property
    def queued(self) -> int:
        """Number of scheduled entries (heap plus both fast lanes)."""
        return (len(self._queue) + len(self._lane_urgent)
                + len(self._lane_normal))

    def __repr__(self):
        return f"<Environment t={self._now:.6f} queued={self.queued}>"

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value=None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def pooled_timeout(self, delay: float, value=None) -> Timeout:
        """A :class:`Timeout` recycled through a per-environment pool.

        Hot paths (NIC serialization, link chunks, server think time)
        allocate millions of short-lived timeouts; pooling removes the
        allocation without changing the popped-event stream, because the
        recycled object is a real ``Timeout`` instance.

        **Contract**: the caller must only ``yield`` the returned event
        and must not retain a reference past the yield — the object is
        reset and reissued after its callbacks run.  Events held in
        conditions (``any_of``/``all_of``) or stored for later inspection
        must use :meth:`timeout` instead.
        """
        if not self.fast_lane:
            return Timeout(self, delay, value)
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            timeout = pool.pop()
            timeout._delay = delay
            timeout._ok = True
            timeout._value = value
            if delay == 0.0:
                # Inlined zero-delay schedule (the overwhelmingly common
                # case for pooled timeouts): one lane append instead of a
                # schedule() call.
                self._lane_normal.append(
                    (self._now, 1, next(self._eid), timeout))
                if self.schedule_hook is not None:
                    self.schedule_hook(timeout, self._current_event,
                                       self._now)
            else:
                self.schedule(timeout, delay=delay)
            return timeout
        timeout = Timeout(self, delay, value)
        timeout._pooled = True
        return timeout

    def process(self, generator, name: str | None = None) -> Process:
        """Start ``generator`` as a new simulation process."""
        self.processes_spawned += 1
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling and the run loop ----------------------------------------

    def schedule(self, event: Event, priority: int = PRIORITY_NORMAL,
                 delay: float = 0.0) -> None:
        """Put a triggered event onto the queue ``delay`` seconds from now."""
        at = self._now + delay
        entry = (at, priority, next(self._eid), event)
        if delay == 0.0 and self.fast_lane:
            if priority == 1:
                self._lane_normal.append(entry)
            elif priority == 0:
                self._lane_urgent.append(entry)
            else:
                heappush(self._queue, entry)
        else:
            heappush(self._queue, entry)
        if self.schedule_hook is not None:
            self.schedule_hook(event, self._current_event, at)

    def cancel(self, event: Event) -> None:
        """Lazily cancel a scheduled occurrence of ``event``.

        The entry stays queued but is discarded — no trace, no callbacks,
        no ``events_processed`` tick — when the run loop reaches it.
        Cancelling an event that is not scheduled marks its *next*
        scheduled occurrence; callers own that bookkeeping.
        """
        self._cancelled.add(event)

    def _next_entry(self):
        """(source, entry) of the globally next live queue entry.

        Prunes lazily-cancelled heads on the way; returns ``(None, None)``
        when the schedule is empty.
        """
        queue = self._queue
        urgent = self._lane_urgent
        normal = self._lane_normal
        cancelled = self._cancelled
        while True:
            entry = queue[0] if queue else None
            source = _SRC_HEAP
            if urgent:
                head = urgent[0]
                if entry is None or head < entry:
                    entry = head
                    source = _SRC_URGENT
            if normal:
                head = normal[0]
                if entry is None or head < entry:
                    entry = head
                    source = _SRC_NORMAL
            if entry is None:
                return None, None
            if cancelled and entry[3] in cancelled:
                cancelled.discard(entry[3])
                if source == _SRC_HEAP:
                    heappop(queue)
                elif source == _SRC_URGENT:
                    urgent.popleft()
                else:
                    normal.popleft()
                continue
            return source, entry

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        _, entry = self._next_entry()
        return entry[0] if entry is not None else float("inf")

    def step(self, _Timeout=Timeout) -> None:
        """Process the single next event."""
        # Head selection is inlined (rather than calling _next_entry)
        # because this is the single hottest loop in the simulator: the
        # function call plus the peek-then-pop double indexing cost more
        # than the selection itself.
        queue = self._queue
        urgent = self._lane_urgent
        normal = self._lane_normal
        cancelled = self._cancelled
        while True:
            entry = queue[0] if queue else None
            source = _SRC_HEAP
            if urgent:
                head = urgent[0]
                if entry is None or head < entry:
                    entry = head
                    source = _SRC_URGENT
            if normal:
                head = normal[0]
                if entry is None or head < entry:
                    entry = head
                    source = _SRC_NORMAL
            if entry is None:
                raise EmptySchedule()
            if source == _SRC_HEAP:
                heappop(queue)
            elif source == _SRC_URGENT:
                urgent.popleft()
            else:
                normal.popleft()
            if cancelled and entry[3] in cancelled:
                cancelled.discard(entry[3])
                continue
            break
        event = entry[3]

        callbacks = event.callbacks
        if callbacks is None:
            raise SimulationError(
                f"{event!r} surfaced with no callbacks: it was scheduled "
                f"twice or already processed (cancel duplicate schedules "
                f"with Environment.cancel)"
            )
        self._now = entry[0]
        self.events_processed += 1
        if self.trace_hook is not None:
            self.trace_hook(self._now, event)

        event.callbacks = None
        self._current_event = event
        try:
            for callback in callbacks:
                callback(event)
        finally:
            self._current_event = None

        if not event._ok and not event.defused:
            # An unhandled failure: surface it rather than losing it.
            raise event._value
        if type(event) is _Timeout and event._pooled:
            pool = self._timeout_pool
            if len(pool) < _TIMEOUT_POOL_LIMIT:
                event.callbacks = []
                event._value = _PENDING
                event._ok = None
                event.defused = False
                pool.append(event)

    def run(self, until=None):
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        fires, returning its value).
        """
        stop_at = None
        stop_event = None

        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed: nothing to run.
                    return stop_event.value if stop_event.ok else None
                stop_event.callbacks.append(_stop_callback)
            else:
                stop_at = float(until)
                if stop_at <= self._now:
                    raise ValueError(
                        f"until ({stop_at}) must be greater than "
                        f"current time ({self._now})"
                    )

        try:
            # Bound-method hoist: the loop body is one call per event, so
            # the attribute lookup is a measurable fraction of it.
            step = self.step
            if stop_at is None:
                while True:
                    step()
            peek = self.peek
            while True:
                if peek() > stop_at:
                    self._now = stop_at
                    return None
                step()
        except EmptySchedule:
            if stop_event is not None and not stop_event.triggered:
                raise SimulationError(
                    "simulation ended before the awaited event fired"
                ) from None
            if stop_at is not None:
                self._now = stop_at
            return None
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None

    def run_until_idle(self) -> None:
        """Drain every queued event (alias for ``run(None)``)."""
        self.run(None)


def _stop_callback(event: Event) -> None:
    if event.ok:
        raise StopSimulation(event.value)
    raise event.value
