"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    SimulationError,
    Timeout,
)
from repro.sim.process import Process


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class StopSimulation(Exception):
    """Raised to abort :meth:`Environment.run` from within the simulation."""


class Environment:
    """Discrete-event simulation environment.

    Time is a float in **seconds**.  Events are processed in (time,
    priority, insertion-order) order, so simultaneous events retain FIFO
    semantics unless explicitly prioritized.
    """

    #: Priority for urgent events (interrupts) processed before normal ones.
    PRIORITY_URGENT = 0
    #: Default priority.
    PRIORITY_NORMAL = 1

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = count()
        self._active_process: Process | None = None
        # Engine throughput counters (always on: two integer increments
        # per event are cheaper than routing telemetry through here, and
        # they let any report answer "how much work did this sim do").
        self.events_processed = 0
        self.processes_spawned = 0
        #: Optional callable ``(now, event)`` invoked for every event the
        #: run loop pops, *before* its callbacks run.  The replay-divergence
        #: checker (repro.analysis.replay) folds this stream into a rolling
        #: hash; the hook must never mutate simulation state.
        self.trace_hook = None
        #: Optional callable ``(event, cause, fire_at)`` invoked whenever
        #: an event is scheduled.  ``cause`` is the event whose callbacks
        #: are currently running (None at the top level), which is exactly
        #: the causal edge the forensics layer (repro.obs.causal) records.
        #: Kept separate from ``trace_hook`` so causal tracing composes
        #: with the replay checker; the hook must never mutate state.
        self.schedule_hook = None
        self._current_event: Event | None = None

    # -- clock and introspection ------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def current_event(self) -> Event | None:
        """The event whose callbacks are currently running, if any."""
        return self._current_event

    def __repr__(self):
        return f"<Environment t={self._now:.6f} queued={len(self._queue)}>"

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value=None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name: str | None = None) -> Process:
        """Start ``generator`` as a new simulation process."""
        self.processes_spawned += 1
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling and the run loop ----------------------------------------

    def schedule(self, event: Event, priority: int = PRIORITY_NORMAL,
                 delay: float = 0.0) -> None:
        """Put a triggered event onto the queue ``delay`` seconds from now."""
        heappush(self._queue,
                 (self._now + delay, priority, next(self._eid), event))
        if self.schedule_hook is not None:
            self.schedule_hook(event, self._current_event,
                               self._now + delay)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self.events_processed += 1
        if self.trace_hook is not None:
            self.trace_hook(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        self._current_event = event
        try:
            for callback in callbacks:
                callback(event)
        finally:
            self._current_event = None

        if not event._ok and not event.defused:
            # An unhandled failure: surface it rather than losing it.
            raise event._value

    def run(self, until=None):
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        fires, returning its value).
        """
        stop_at = None
        stop_event = None

        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed: nothing to run.
                    return stop_event.value if stop_event.ok else None
                stop_event.callbacks.append(_stop_callback)
            else:
                stop_at = float(until)
                if stop_at <= self._now:
                    raise ValueError(
                        f"until ({stop_at}) must be greater than "
                        f"current time ({self._now})"
                    )

        try:
            while True:
                if stop_at is not None and self.peek() > stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except EmptySchedule:
            if stop_event is not None and not stop_event.triggered:
                raise SimulationError(
                    "simulation ended before the awaited event fired"
                ) from None
            if stop_at is not None:
                self._now = stop_at
            return None
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None

    def run_until_idle(self) -> None:
        """Drain every queued event (alias for ``run(None)``)."""
        self.run(None)


def _stop_callback(event: Event) -> None:
    if event.ok:
        raise StopSimulation(event.value)
    raise event.value
