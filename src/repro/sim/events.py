"""Core event primitives for the discrete-event simulation engine.

The engine is generator-based in the style of SimPy: simulation *processes*
are Python generators that ``yield`` events; the environment resumes a
process when the event it is waiting on fires.  Events carry a value (made
available as the result of the ``yield``) or a failure (raised inside the
waiting process).
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:
    from repro.sim.engine import Environment

# Sentinel distinguishing "no value set yet" from "value is None".
_PENDING = object()


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine itself."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupting party supplies a ``cause`` object, available via
    :attr:`cause`, that tells the interrupted process why it was woken.
    """

    @property
    def cause(self):
        return self.args[0] if self.args else None


class Event:
    """A happening inside the simulation that processes can wait on.

    An event goes through three states: *pending* (created, not scheduled),
    *triggered* (scheduled onto the event queue with a value), and
    *processed* (its callbacks have run).  Processes wait on an event by
    yielding it; when it is processed, each waiting process resumes with
    the event's value (or the failure is raised inside it).

    Events are slotted: they are the highest-volume allocation in the
    simulator, and ``__slots__`` removes the per-instance ``__dict__``.
    Subclasses must declare their own ``__slots__`` (possibly empty).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list | None = []
        self._value = _PENDING
        self._ok: bool | None = None
        #: Whether a failure has been handled (yielded on or defused).
        self.defused = False

    def __repr__(self):
        status = "pending"
        if self.triggered:
            status = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {status} at {hex(id(self))}>"

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value and scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self):
        """The event's value (or failure exception) once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value=None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the outcome of another (triggered) event onto this one."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- combinators ------------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_done, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_done, [self, other])


class Timeout(Event):
    """An event that fires after ``delay`` units of simulated time."""

    __slots__ = ("_delay", "_pooled")

    def __init__(self, env: "Environment", delay: float, value=None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        #: True for instances recycled by ``Environment.pooled_timeout``.
        self._pooled = False
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self):
        return f"<Timeout delay={self._delay} at {hex(id(self))}>"


class ConditionValue:
    """Ordered mapping of the events a condition completed with."""

    __slots__ = ("events",)

    def __init__(self):
        self.events: list[Event] = []

    def __getitem__(self, key: Event):
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        return self.todict() == other

    def __repr__(self):
        return f"<ConditionValue {self.todict()!r}>"

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return iter(self.events)

    def values(self):
        return (event._value for event in self.events)

    def items(self):
        return ((event, event._value) for event in self.events)

    def todict(self) -> dict:
        return {event: event._value for event in self.events}


class Condition(Event):
    """Waits for a combination of events (``AllOf``/``AnyOf``)."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env, evaluate, events):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        if not self._events:
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.env is not env:
                raise ValueError("events from different environments")

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self.triggered:
            self.callbacks.append(self._collect_values)

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None:
                value.events.append(event)

    def _collect_values(self, _event: Event) -> None:
        if self._ok:
            value = ConditionValue()
            self._populate_value(value)
            self._value = value

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            # Populate with what has completed so far; if the condition
            # fires through the normal callback path, the registered
            # _collect_values callback refreshes this at processing time
            # (this immediate population covers members that were already
            # processed when the condition was constructed).
            value = ConditionValue()
            self._populate_value(value)
            self.succeed(value)

    @staticmethod
    def all_done(events: list, count: int) -> bool:
        return count == len(events)

    @staticmethod
    def any_done(events: list, count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition that fires when every given event has fired."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, Condition.all_done, events)


class AnyOf(Condition):
    """Condition that fires as soon as any given event fires."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, Condition.any_done, events)
