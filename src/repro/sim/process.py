"""Simulation processes: generators driven by the event loop."""

from __future__ import annotations

from repro.sim.events import Event, Interrupt, SimulationError


class Process(Event):
    """A running simulation process.

    Wraps a generator.  Each value the generator yields must be an
    :class:`~repro.sim.events.Event`; the process sleeps until that event
    fires and then resumes with the event's value.  The :class:`Process`
    itself is an event that fires when the generator finishes, carrying the
    generator's return value — so processes can wait on each other simply
    by yielding them.
    """

    __slots__ = ("_generator", "name", "target", "_initialized")

    def __init__(self, env, generator, name: str | None = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if not
        #: started or already finished).
        self.target: Event | None = None
        # Kick-start: resume the generator at time `now`.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init)
        self._initialized = False

    def __repr__(self):
        return f"<Process {self.name} at {hex(id(self))}>"

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause=None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a process that has already terminated, or a process
        interrupting itself, is an error.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever the process was waiting on so the stale
        # event cannot resume it a second time when it eventually fires.
        if self.target is not None and self.target.callbacks is not None:
            try:
                self.target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self.target = None
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=self.env.PRIORITY_URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self

        while True:
            if event._ok:
                advance = self._generator.send
                payload = event._value
            else:
                event.defused = True
                advance = self._generator.throw
                payload = event._value

            try:
                target = advance(payload)
            except StopIteration as stop:
                self.target = None
                env._active_process = None
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                return
            except BaseException as error:
                self.target = None
                env._active_process = None
                self._ok = False
                self._value = error
                env.schedule(self)
                return

            if not isinstance(target, Event):
                env._active_process = None
                raise SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )

            if target.callbacks is not None:
                # Target not yet processed: register and go to sleep.
                target.callbacks.append(self._resume)
                self.target = target
                env._active_process = None
                return

            # Target already processed: loop and resume immediately with it.
            event = target
