"""Shared-resource primitives built on the event engine.

These follow SimPy's request/release model but are intentionally small:
only what the hardware and protocol models need.

* :class:`Resource` — a counted semaphore (disk arms, CPU slots, server
  worker threads).
* :class:`Store` — an unbounded-or-bounded FIFO of objects (request
  queues, NIC rings, the background-copy FIFO between retriever and
  writer threads).
* :class:`PriorityStore` — a store that yields the lowest-priority item
  first.
"""

from __future__ import annotations

import heapq
from itertools import count

from repro.sim.events import Event


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager so that ``with resource.request() as req:``
    always releases.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.resource.release(self)
        return False


class Resource:
    """A resource with ``capacity`` identical slots."""

    def __init__(self, env, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Request a slot; the returned event fires once granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Release a previously granted slot (no-op if not held)."""
        if request in self.users:
            self.users.remove(request)
            self._grant_waiters()
        elif request in self.queue and not request.triggered:
            # Cancelled before being granted.
            self.queue.remove(request)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _grant_waiters(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            waiter = self.queue.pop(0)
            self.users.append(waiter)
            waiter.succeed()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item):
        super().__init__(store.env)
        self.item = item
        store._do_put(self)


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._do_get(self)


class Store:
    """FIFO store of items with optional capacity bound.

    ``put(item)`` returns an event that fires once the item is accepted
    (immediately unless the store is full).  ``get()`` returns an event
    that fires with the oldest item once one is available.
    """

    def __init__(self, env, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list = []
        self._putters: list[StorePut] = []
        self._getters: list[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_empty(self) -> bool:
        return not self.items

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def try_get(self):
        """Non-blocking pop: the oldest item or ``None`` if empty."""
        if self.items:
            item = self.items.pop(0)
            self._admit_putters()
            return item
        return None

    def peek(self):
        """The oldest item without removing it, or ``None``."""
        return self.items[0] if self.items else None

    def _do_put(self, event: StorePut) -> None:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append(event)

    def _do_get(self, event: StoreGet) -> None:
        if self.items:
            event.succeed(self.items.pop(0))
            self._admit_putters()
        else:
            self._getters.append(event)

    def _serve_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.pop(0)
            getter.succeed(self.items.pop(0))
        self._admit_putters()

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.pop(0)
            self.items.append(putter.item)
            putter.succeed()
            # A newly admitted item may satisfy a waiting getter.
            while self._getters and self.items:
                getter = self._getters.pop(0)
                getter.succeed(self.items.pop(0))


class PriorityStore(Store):
    """A store yielding items in priority order (lowest first).

    Items are compared by the ``(priority, insertion index)`` pair, so
    equal priorities remain FIFO and items never need to be comparable.
    """

    def __init__(self, env, capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._counter = count()
        self._heap: list = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_empty(self) -> bool:
        return not self._heap

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.capacity

    def put_with_priority(self, priority, item) -> StorePut:
        event = StorePut.__new__(StorePut)
        Event.__init__(event, self.env)
        event.item = (priority, item)
        self._do_put(event)
        return event

    def put(self, item) -> StorePut:
        """Put with default priority 0."""
        return self.put_with_priority(0, item)

    def try_get(self):
        if self._heap:
            _, _, item = heapq.heappop(self._heap)
            self._admit_putters()
            return item
        return None

    def peek(self):
        return self._heap[0][2] if self._heap else None

    def _do_put(self, event: StorePut) -> None:
        priority, item = event.item
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, (priority, next(self._counter), item))
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append(event)

    def _do_get(self, event: StoreGet) -> None:
        if self._heap:
            _, _, item = heapq.heappop(self._heap)
            event.succeed(item)
            self._admit_putters()
        else:
            self._getters.append(event)

    def _serve_getters(self) -> None:
        while self._getters and self._heap:
            getter = self._getters.pop(0)
            _, _, item = heapq.heappop(self._heap)
            getter.succeed(item)
        self._admit_putters()

    def _admit_putters(self) -> None:
        while self._putters and len(self._heap) < self.capacity:
            putter = self._putters.pop(0)
            priority, item = putter.item
            heapq.heappush(self._heap, (priority, next(self._counter), item))
            putter.succeed()
            while self._getters and self._heap:
                getter = self._getters.pop(0)
                _, _, item = heapq.heappop(self._heap)
                getter.succeed(item)
