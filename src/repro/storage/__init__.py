"""Storage substrate: disks and host controller models."""

from repro.storage.ahci import AhciController
from repro.storage.blockdev import BlockOp, BlockRequest, SectorBuffer
from repro.storage.disk import Disk
from repro.storage.ide import IdeController, Taskfile, decode_request

__all__ = [
    "AhciController",
    "BlockOp",
    "BlockRequest",
    "Disk",
    "IdeController",
    "SectorBuffer",
    "Taskfile",
    "decode_request",
]
