"""AHCI host bus adapter model (single-port, 32 command slots).

The register interface follows the real AHCI layout closely enough that
the AHCI device mediator does what the paper's 2,285-LOC one does: watch
MMIO writes to ``PxCI``, follow the command-list/command-table pointers
through memory, decode the command FIS, and track completion through
``PxCI``/``PxIS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim import Environment
from repro.storage.blockdev import BlockOp, BlockRequest, SectorBuffer
from repro.storage.disk import Disk
from repro.storage.ide import (
    CMD_FLUSH_CACHE,
    CMD_READ_DMA_EXT,
    CMD_WRITE_DMA_EXT,
)

#: Default ABAR (MMIO BAR 5) base and size.
ABAR_BASE = 0xFEB0_0000
ABAR_SIZE = 0x200

# Generic host control registers (offsets from ABAR).
REG_CAP = 0x00
REG_GHC = 0x04
REG_IS = 0x08
REG_PI = 0x0C

# Port 0 registers.
PORT_BASE = 0x100
REG_PXCLB = PORT_BASE + 0x00   # command list base address
REG_PXIS = PORT_BASE + 0x10    # port interrupt status
REG_PXIE = PORT_BASE + 0x14    # port interrupt enable
REG_PXCMD = PORT_BASE + 0x18   # port command and status
REG_PXTFD = PORT_BASE + 0x20   # task file data (status | error)
REG_PXSACT = PORT_BASE + 0x34
REG_PXCI = PORT_BASE + 0x38    # command issue (one bit per slot)

#: PxIS bit: device-to-host register FIS received (command completion).
PXIS_DHRS = 0x1
#: PxTFD status bits mirror ATA status.
TFD_BSY = 0x80
TFD_DRQ = 0x08

#: PxCMD start bit (DMA engine running).
PXCMD_ST = 0x1

COMMAND_SLOTS = 32

#: Default interrupt line for the AHCI HBA.
AHCI_IRQ = 11


@dataclass
class CommandFis:
    """Host-to-device register FIS (the command itself)."""

    command: int
    lba: int
    sector_count: int


@dataclass
class CommandTable:
    """Command table: FIS + physical-region descriptor table."""

    cfis: CommandFis
    #: PRDT: physical addresses of the data buffers (we model one entry).
    prdt: list[int] = field(default_factory=list)


@dataclass
class CommandHeader:
    """One command-list slot: points at its command table."""

    ctba: int  # command table base address


def decode_fis(cfis: CommandFis) -> BlockRequest | None:
    """I/O interpretation for AHCI: command FIS -> block request."""
    if cfis.command == CMD_READ_DMA_EXT:
        op = BlockOp.READ
    elif cfis.command == CMD_WRITE_DMA_EXT:
        op = BlockOp.WRITE
    else:
        return None
    return BlockRequest(op=op, lba=cfis.lba, sector_count=cfis.sector_count)


class AhciController:
    """Single-port AHCI HBA attached to one disk."""

    def __init__(self, env: Environment, disk: Disk, machine,
                 abar: int = ABAR_BASE, irq_line: int = AHCI_IRQ):
        self.env = env
        self.disk = disk
        self.machine = machine
        self.abar = abar
        self.irq_line = irq_line

        # Register file.
        self.pxclb = 0
        self.pxis = 0
        self.pxie = 0
        self.pxcmd = 0
        self.pxtfd = 0x50  # DRDY, not busy
        self.pxsact = 0
        self.pxci = 0
        self.ghc = 0

        self._active_slots: set[int] = set()
        #: Origin stamped onto decoded requests.  The controller cannot
        #: tell who programmed it; the device mediator sets this to
        #: "vmm" for the duration of its own raw commands so disk-level
        #: observers (moderation accounting, sanitizers) see true
        #: provenance.
        self.request_origin = "guest"

        # Metrics.
        self.commands_executed = 0
        self.interrupts_raised = 0

        machine.bus.register_mmio(abar, ABAR_SIZE, self)
        machine.attach_disk_controller(self)

    # -- register interface ------------------------------------------------------

    def mmio_read(self, address: int) -> int:
        offset = address - self.abar
        if offset == REG_CAP:
            return COMMAND_SLOTS - 1 << 8  # number of command slots
        if offset == REG_GHC:
            return self.ghc
        if offset == REG_IS:
            return 0x1 if self.pxis else 0x0
        if offset == REG_PI:
            return 0x1  # one implemented port
        if offset == REG_PXCLB:
            return self.pxclb
        if offset == REG_PXIS:
            return self.pxis
        if offset == REG_PXIE:
            return self.pxie
        if offset == REG_PXCMD:
            return self.pxcmd
        if offset == REG_PXTFD:
            return self.pxtfd
        if offset == REG_PXSACT:
            return self.pxsact
        if offset == REG_PXCI:
            return self.pxci
        raise ValueError(f"AHCI: unknown register offset {offset:#x}")

    def mmio_write(self, address: int, value: int) -> None:
        offset = address - self.abar
        if offset == REG_GHC:
            self.ghc = value
        elif offset == REG_PXCLB:
            self.pxclb = value
        elif offset == REG_PXIS:
            # Write-1-to-clear.
            self.pxis &= ~value
        elif offset == REG_PXIE:
            self.pxie = value
        elif offset == REG_PXCMD:
            self.pxcmd = value
        elif offset == REG_PXCI:
            self._issue(value)
        elif offset == REG_PXSACT:
            self.pxsact |= value
        else:
            raise ValueError(f"AHCI: unknown register offset {offset:#x}")

    # -- properties the mediator polls ---------------------------------------------

    @property
    def busy(self) -> bool:
        return bool(self._active_slots)

    def free_slot(self) -> int | None:
        """Lowest command slot not currently issued (mediator uses this)."""
        for slot in range(COMMAND_SLOTS):
            if not self.pxci & (1 << slot) and slot not in self._active_slots:
                return slot
        return None

    # -- command execution --------------------------------------------------------------

    def _issue(self, value: int) -> None:
        if not self.pxcmd & PXCMD_ST:
            # DMA engine not started: issuing is a driver bug.
            raise RuntimeError("AHCI: PxCI write with PxCMD.ST clear")
        new_slots = value & ~self.pxci
        self.pxci |= value
        for slot in range(COMMAND_SLOTS):
            if new_slots & (1 << slot):
                self._active_slots.add(slot)
                self.pxtfd |= TFD_BSY
                self.env.process(self._run_slot(slot),
                                 name=f"ahci-slot{slot}")

    def _run_slot(self, slot: int):
        header = self._command_header(slot)
        table = self.machine.hostmem.lookup(header.ctba)
        request = decode_fis(table.cfis)
        if request is None:
            if table.cfis.command == CMD_FLUSH_CACHE:
                yield self.env.timeout(2e-3)
            else:
                yield self.env.timeout(100e-6)
            self._complete_slot(slot)
            return
        buffer = self.machine.hostmem.lookup(table.prdt[0])
        if not isinstance(buffer, SectorBuffer):
            raise TypeError("AHCI PRDT entry is not a DMA buffer")
        if buffer.sector_count < request.sector_count:
            raise ValueError("AHCI DMA buffer too small")
        request.buffer = buffer
        request.origin = self.request_origin
        buffer.lba = request.lba
        buffer.sector_count = request.sector_count
        yield from self.disk.execute(request)
        self._complete_slot(slot)

    def _command_header(self, slot: int) -> CommandHeader:
        command_list = self.machine.hostmem.lookup(self.pxclb)
        header = command_list[slot]
        if header is None:
            raise ValueError(f"AHCI: slot {slot} issued with empty header")
        return header

    def _complete_slot(self, slot: int) -> None:
        self.commands_executed += 1
        self._active_slots.discard(slot)
        self.pxci &= ~(1 << slot)
        if not self._active_slots:
            self.pxtfd &= ~TFD_BSY
        self.pxis |= PXIS_DHRS
        if self.pxie & PXIS_DHRS:
            self.interrupts_raised += 1
            self.machine.interrupts.raise_irq(self.irq_line)

    kind = "ahci"
