"""Common block-layer types shared by disks, controllers, and drivers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count

from repro import params
from repro.util.intervalmap import IntervalMap


class BlockOp(enum.Enum):
    READ = "read"
    WRITE = "write"


_request_ids = count()


def coalesce_runs(runs: list) -> list:
    """Merge adjacent runs with equal tokens (split-transfer reassembly)."""
    merged: list = []
    for start, end, token in runs:
        if merged and merged[-1][1] == start and merged[-1][2] == token:
            merged[-1] = (merged[-1][0], end, token)
        else:
            merged.append((start, end, token))
    return merged


@dataclass
class SectorBuffer:
    """Symbolic contents of a DMA transfer: token runs over sector indexes.

    ``runs`` is a list of ``(lba_start, lba_end, token)`` aligned to the
    request's LBA range; ``token`` ``None`` means unwritten/garbage.
    """

    lba: int
    sector_count: int
    runs: list = field(default_factory=list)

    @property
    def byte_count(self) -> int:
        return self.sector_count * params.SECTOR_BYTES

    def fill_from(self, contents: IntervalMap) -> None:
        """Populate from a content map (a disk read into this buffer)."""
        self.runs = list(contents.runs_in(self.lba, self.sector_count))

    def fill_constant(self, token) -> None:
        """Set the whole buffer to one token."""
        self.runs = [(self.lba, self.lba + self.sector_count, token)]

    def store_to(self, contents: IntervalMap) -> None:
        """Write the buffer's runs into a content map (a disk write)."""
        for start, end, token in self.runs:
            if token is None:
                contents.clear_range(start, end - start)
            else:
                contents.set_range(start, end - start, token)


@dataclass
class BlockRequest:
    """One I/O request at the block layer."""

    op: BlockOp
    lba: int
    sector_count: int
    buffer: SectorBuffer | None = None
    #: Who issued it: "guest" or "vmm" (used by moderation accounting).
    origin: str = "guest"
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __post_init__(self):
        if self.lba < 0:
            raise ValueError("lba must be non-negative")
        if self.sector_count <= 0:
            raise ValueError("sector_count must be positive")
        if self.buffer is None:
            self.buffer = SectorBuffer(self.lba, self.sector_count)

    @property
    def byte_count(self) -> int:
        return self.sector_count * params.SECTOR_BYTES

    @property
    def end_lba(self) -> int:
        return self.lba + self.sector_count

    def __repr__(self):
        return (f"<BlockRequest #{self.request_id} {self.op.value} "
                f"lba={self.lba} n={self.sector_count} {self.origin}>")
