"""Mechanical disk model (SATA nearline drive).

Service time = command overhead + seek + rotational latency + media
transfer, with a track/read cache in front.  The seek component is what
makes background-copy interference visible (paper 5.6: guest and VMM
writing different regions adds seek overhead, so the two throughputs do
not sum to the bare-metal rate).
"""

from __future__ import annotations

import hashlib
import math

from repro import params
from repro.obs.telemetry import NULL_TELEMETRY
from repro.sim import Environment, Resource
from repro.storage.blockdev import BlockOp, BlockRequest
from repro.util.intervalmap import IntervalMap


class Disk:
    """One rotational disk with a single actuator and a read cache."""

    def __init__(self, env: Environment,
                 capacity_bytes: int = params.DISK_BYTES,
                 read_bw: float = params.DISK_READ_BW,
                 write_bw: float = params.DISK_WRITE_BW,
                 seek_avg: float = params.DISK_SEEK_AVG_SECONDS,
                 seek_max: float = params.DISK_SEEK_MAX_SECONDS,
                 rotation: float = params.DISK_ROTATION_SECONDS,
                 cache_bytes: int = params.DISK_CACHE_BYTES,
                 telemetry=NULL_TELEMETRY):
        self.env = env
        self.telemetry = telemetry
        self.capacity_bytes = capacity_bytes
        self.total_sectors = capacity_bytes // params.SECTOR_BYTES
        self.read_bw = read_bw
        self.write_bw = write_bw
        self.seek_avg = seek_avg
        self.seek_max = seek_max
        self.rotation = rotation
        self.cache_sectors = cache_bytes // params.SECTOR_BYTES

        #: Sector tokens currently on the platters.
        self.contents = IntervalMap()
        #: Called with each completed WRITE request — the peer chunk
        #: service subscribes to learn when guest writes taint blocks
        #: it advertised as pristine image data.
        self.write_observers: list = []
        #: The single actuator: requests serialize here.
        self.arm = Resource(env, capacity=1)
        self._head_lba = 0
        # Read cache: remember the most recent read window (track cache
        # behaviour is approximated by a single recency window, which is
        # all the dummy-sector restart trick needs).
        self._cache_start = 0
        self._cache_end = 0

        # Metrics.
        self.requests_served = 0
        self.sectors_read = 0
        self.sectors_written = 0
        self.busy_seconds = 0.0
        self.seek_seconds = 0.0

    # -- timing model --------------------------------------------------------

    def seek_time(self, from_lba: int, to_lba: int) -> float:
        """Seek between two LBAs: sqrt law over stroke distance."""
        if from_lba == to_lba:
            return 0.0
        distance = abs(to_lba - from_lba) / self.total_sectors
        # Short seeks are cheap; sqrt law calibrated so distance=1/3
        # (the random average) gives seek_avg.
        return min(self.seek_max,
                   self.seek_avg * math.sqrt(distance * 3.0))

    def service_time(self, request: BlockRequest) -> float:
        """Full mechanical service time for ``request`` from current head."""
        if self._cache_hit(request):
            return params.DISK_CACHE_HIT_SECONDS
        seek = self.seek_time(self._head_lba, request.lba)
        # Sequential continuation skips rotational latency.
        rotational = 0.0 if request.lba == self._head_lba \
            else self.rotation / 2.0
        bandwidth = (self.read_bw if request.op is BlockOp.READ
                     else self.write_bw)
        transfer = request.byte_count / bandwidth
        return (params.DISK_COMMAND_OVERHEAD_SECONDS
                + seek + rotational + transfer)

    def _cache_hit(self, request: BlockRequest) -> bool:
        return (request.op is BlockOp.READ
                and request.lba >= self._cache_start
                and request.end_lba <= self._cache_end)

    # -- execution --------------------------------------------------------------

    def execute(self, request: BlockRequest):
        """Generator: perform ``request``, filling/consuming its buffer.

        Acquires the actuator, waits the mechanical time, then applies the
        content transfer.  Reads fill ``request.buffer`` from the platter
        contents; writes store the buffer's runs.
        """
        if request.end_lba > self.total_sectors:
            raise ValueError(
                f"request beyond end of disk: lba={request.lba} "
                f"n={request.sector_count}")
        with self.arm.request() as grant, \
                self.telemetry.profiler.track("disk", request.op.value):
            yield grant
            duration = self.service_time(request)
            cache_hit = self._cache_hit(request)
            if not cache_hit:
                self.seek_seconds += self.seek_time(self._head_lba,
                                                    request.lba)
            yield self.env.timeout(duration)
            self._apply(request, cache_hit)
            self.busy_seconds += duration
        return request

    def _apply(self, request: BlockRequest, cache_hit: bool) -> None:
        if request.op is BlockOp.READ:
            request.buffer.fill_from(self.contents)
            self.sectors_read += request.sector_count
            if not cache_hit:
                # Update the read-cache window; a hit is served from the
                # cache and moves neither the window nor the head.
                self._cache_start = request.lba
                self._cache_end = request.end_lba
                self._head_lba = request.end_lba
        else:
            request.buffer.store_to(self.contents)
            self.sectors_written += request.sector_count
            self._head_lba = request.end_lba
            for observer in self.write_observers:
                observer(request)
        self.requests_served += 1

    # -- convenience -----------------------------------------------------------

    def content_hash(self, lba: int, sector_count: int) -> str:
        """Stable digest of the symbolic content runs in a sector range.

        Two ranges hash equal iff their (clipped) token runs are equal —
        what the bitmap↔disk consistency checker compares against the
        image store, and what its violation reports print instead of
        full run lists.
        """
        runs = list(self.contents.runs_in(lba, sector_count))
        return content_digest(runs)

    @property
    def head_lba(self) -> int:
        return self._head_lba

    def utilization(self, elapsed: float) -> float:
        return self.busy_seconds / elapsed if elapsed > 0 else 0.0


def content_digest(runs) -> str:
    """Digest of ``(start, end, token)`` content runs (see above)."""
    data = repr(list(runs)).encode("utf-8")
    return hashlib.blake2b(data, digest_size=8).hexdigest()
