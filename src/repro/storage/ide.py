"""IDE (parallel ATA) host controller model with bus-master DMA.

Registers follow the real primary-channel layout (taskfile at 0x1F0-0x1F7,
bus-master registers in I/O space) so that the IDE device mediator can
perform genuine device-interface-level interpretation: it decodes command,
LBA, and sector count from the same register writes a real driver emits,
and distinguishes command / status / data phases exactly as the paper's
1,472-LOC mediator does.
"""

from __future__ import annotations

from repro import params
from repro.sim import Environment
from repro.storage.blockdev import BlockOp, BlockRequest, SectorBuffer
from repro.storage.disk import Disk

# -- port layout (primary channel) -------------------------------------------

IDE_BASE = 0x1F0
REG_DATA = IDE_BASE + 0          # PIO data window
REG_FEATURES = IDE_BASE + 1      # write: features / read: error
REG_SECTOR_COUNT = IDE_BASE + 2
REG_LBA_LOW = IDE_BASE + 3
REG_LBA_MID = IDE_BASE + 4
REG_LBA_HIGH = IDE_BASE + 5
REG_DEVICE = IDE_BASE + 6        # drive select + LBA bits 24-27
REG_COMMAND = IDE_BASE + 7       # write: command / read: status

TASKFILE_PORTS = tuple(range(IDE_BASE, IDE_BASE + 8))

#: Bus-master (BMIDE) register block base.
BM_BASE = 0xC000
BM_COMMAND = BM_BASE + 0         # bit 0: start, bit 3: write-to-memory
BM_STATUS = BM_BASE + 2          # bit 0: active, bit 2: interrupt
BM_PRDT = BM_BASE + 4            # PRD table physical address

BUSMASTER_PORTS = (BM_COMMAND, BM_STATUS, BM_PRDT)

ALL_PORTS = TASKFILE_PORTS + BUSMASTER_PORTS

# -- status bits ----------------------------------------------------------------

STATUS_ERR = 0x01
STATUS_DRQ = 0x08
STATUS_DRDY = 0x40
STATUS_BSY = 0x80

BM_CMD_START = 0x01
BM_CMD_WRITE_TO_MEMORY = 0x08
BM_STATUS_ACTIVE = 0x01
BM_STATUS_IRQ = 0x04

# -- ATA commands -----------------------------------------------------------------

CMD_READ_DMA = 0xC8
CMD_WRITE_DMA = 0xCA
CMD_READ_DMA_EXT = 0x25
CMD_WRITE_DMA_EXT = 0x35
CMD_IDENTIFY = 0xEC
CMD_FLUSH_CACHE = 0xE7

DMA_READ_COMMANDS = (CMD_READ_DMA, CMD_READ_DMA_EXT)
DMA_WRITE_COMMANDS = (CMD_WRITE_DMA, CMD_WRITE_DMA_EXT)
DMA_COMMANDS = DMA_READ_COMMANDS + DMA_WRITE_COMMANDS
EXT_COMMANDS = (CMD_READ_DMA_EXT, CMD_WRITE_DMA_EXT)

#: Default interrupt line of the primary IDE channel.
IDE_IRQ = 14


class Taskfile:
    """Shadowable taskfile register state with LBA48 hop ("hob") values.

    Writing a taskfile register pushes the previous value into the "hob"
    slot, which is how LBA48 commands carry 48-bit addresses and 16-bit
    sector counts through 8-bit registers.  Both the controller and the
    device mediator (its shadow copy) use this class, so interpretation
    and hardware decode identical state.
    """

    _SHIFTING = (REG_SECTOR_COUNT, REG_LBA_LOW, REG_LBA_MID, REG_LBA_HIGH)

    def __init__(self):
        self.current: dict[int, int] = {port: 0 for port in TASKFILE_PORTS}
        self.hob: dict[int, int] = {port: 0 for port in self._SHIFTING}

    def write(self, port: int, value: int) -> None:
        if port in self._SHIFTING:
            self.hob[port] = self.current[port]
        self.current[port] = value & 0xFF

    def read(self, port: int) -> int:
        return self.current[port]

    def decode_lba(self, ext: bool) -> int:
        low = self.current[REG_LBA_LOW]
        mid = self.current[REG_LBA_MID]
        high = self.current[REG_LBA_HIGH]
        if ext:
            return (self.hob[REG_LBA_HIGH] << 40
                    | self.hob[REG_LBA_MID] << 32
                    | self.hob[REG_LBA_LOW] << 24
                    | high << 16 | mid << 8 | low)
        device_bits = self.current[REG_DEVICE] & 0x0F
        return device_bits << 24 | high << 16 | mid << 8 | low

    def decode_sector_count(self, ext: bool) -> int:
        count = self.current[REG_SECTOR_COUNT]
        if ext:
            count16 = self.hob[REG_SECTOR_COUNT] << 8 | count
            return count16 if count16 != 0 else 65536
        return count if count != 0 else 256

    def load(self, lba: int, sector_count: int, ext: bool) -> None:
        """Program this taskfile for a DMA command (driver/mediator side)."""
        if ext:
            if not 1 <= sector_count <= 65536:
                raise ValueError("LBA48 sector count out of range")
            count = sector_count if sector_count < 65536 else 0
            self.write(REG_SECTOR_COUNT, (count >> 8) & 0xFF)
            self.write(REG_SECTOR_COUNT, count & 0xFF)
            self.write(REG_LBA_LOW, (lba >> 24) & 0xFF)
            self.write(REG_LBA_LOW, lba & 0xFF)
            self.write(REG_LBA_MID, (lba >> 32) & 0xFF)
            self.write(REG_LBA_MID, (lba >> 8) & 0xFF)
            self.write(REG_LBA_HIGH, (lba >> 40) & 0xFF)
            self.write(REG_LBA_HIGH, (lba >> 16) & 0xFF)
            self.write(REG_DEVICE, 0x40)  # LBA mode
        else:
            if not 1 <= sector_count <= 256:
                raise ValueError("LBA28 sector count out of range")
            if lba >= 1 << 28:
                raise ValueError("LBA28 address out of range")
            self.write(REG_SECTOR_COUNT, sector_count & 0xFF)
            self.write(REG_LBA_LOW, lba & 0xFF)
            self.write(REG_LBA_MID, (lba >> 8) & 0xFF)
            self.write(REG_LBA_HIGH, (lba >> 16) & 0xFF)
            self.write(REG_DEVICE, 0xE0 | ((lba >> 24) & 0x0F))


def decode_request(taskfile: Taskfile, command: int) -> BlockRequest | None:
    """Decode a DMA command + taskfile into a block request.

    This is the heart of *I/O interpretation*: given only register state,
    recover (operation, LBA, sector count).  Returns ``None`` for
    non-data-transfer commands.
    """
    if command not in DMA_COMMANDS:
        return None
    ext = command in EXT_COMMANDS
    op = BlockOp.READ if command in DMA_READ_COMMANDS else BlockOp.WRITE
    lba = taskfile.decode_lba(ext)
    count = taskfile.decode_sector_count(ext)
    return BlockRequest(op=op, lba=lba, sector_count=count)


class IdeController:
    """The IDE host controller + attached disk, as one device model."""

    def __init__(self, env: Environment, disk: Disk, machine,
                 irq_line: int = IDE_IRQ):
        self.env = env
        self.disk = disk
        self.machine = machine
        self.irq_line = irq_line

        self.taskfile = Taskfile()
        #: Origin stamped onto decoded requests.  The controller cannot
        #: tell who programmed it; the device mediator sets this to
        #: "vmm" for the duration of its own raw commands so disk-level
        #: observers see true provenance.
        self.request_origin = "guest"
        self.status = STATUS_DRDY
        self.error = 0
        self.bm_command = 0
        self.bm_status = 0
        self.bm_prdt = 0

        self._pending_command: int | None = None
        self._active_process = None

        # Metrics.
        self.commands_executed = 0
        self.interrupts_raised = 0

        machine.bus.register_pio(ALL_PORTS, self)
        machine.attach_disk_controller(self)

    # -- register interface (device side; instantaneous) ------------------------

    def pio_read(self, port: int) -> int:
        if port == REG_COMMAND:
            return self.status
        if port == REG_FEATURES:
            return self.error
        if port == BM_STATUS:
            return self.bm_status
        if port == BM_COMMAND:
            return self.bm_command
        if port == BM_PRDT:
            return self.bm_prdt
        if port in TASKFILE_PORTS:
            return self.taskfile.read(port)
        raise ValueError(f"IDE: unknown port {port:#x}")

    def pio_write(self, port: int, value: int) -> None:
        if port == REG_COMMAND:
            self._start_command(value)
        elif port == BM_COMMAND:
            was_started = self.bm_command & BM_CMD_START
            self.bm_command = value
            if value & BM_CMD_START and not was_started:
                self.bm_status |= BM_STATUS_ACTIVE
                self._maybe_execute()
            if not value & BM_CMD_START:
                self.bm_status &= ~BM_STATUS_ACTIVE
        elif port == BM_STATUS:
            # Writing 1 to the IRQ bit clears it (write-1-to-clear).
            if value & BM_STATUS_IRQ:
                self.bm_status &= ~BM_STATUS_IRQ
        elif port == BM_PRDT:
            self.bm_prdt = value
        elif port in TASKFILE_PORTS:
            self.taskfile.write(port, value)
        else:
            raise ValueError(f"IDE: unknown port {port:#x}")

    # -- properties the mediator polls -------------------------------------------

    @property
    def busy(self) -> bool:
        return bool(self.status & STATUS_BSY)

    # -- command execution -----------------------------------------------------------

    def _start_command(self, command: int) -> None:
        if self.busy:
            # Real drives ignore commands while BSY; drivers never do this.
            return
        if command in DMA_COMMANDS:
            self.status = STATUS_BSY | STATUS_DRDY
            self._pending_command = command
            self._maybe_execute()
        elif command == CMD_IDENTIFY:
            self.status = STATUS_BSY | STATUS_DRDY
            self._active_process = self.env.process(
                self._run_identify(), name="ide-identify")
        elif command == CMD_FLUSH_CACHE:
            self.status = STATUS_BSY | STATUS_DRDY
            self._active_process = self.env.process(
                self._run_flush(), name="ide-flush")
        else:
            # Unsupported command: error out immediately.
            self.error = 0x04  # ABRT
            self.status = STATUS_DRDY | STATUS_ERR
            self._raise_irq()

    def _maybe_execute(self) -> None:
        if (self._pending_command is not None
                and self.bm_command & BM_CMD_START):
            command = self._pending_command
            self._pending_command = None
            self._active_process = self.env.process(
                self._run_dma(command), name="ide-dma")

    def _run_dma(self, command: int):
        request = decode_request(self.taskfile, command)
        buffer = self.machine.hostmem.lookup(self.bm_prdt)
        if not isinstance(buffer, SectorBuffer):
            raise TypeError("PRDT does not point at a DMA buffer")
        if buffer.sector_count < request.sector_count:
            raise ValueError(
                f"DMA buffer too small: {buffer.sector_count} < "
                f"{request.sector_count}")
        request.buffer = buffer
        request.origin = self.request_origin
        buffer.lba = request.lba
        buffer.sector_count = request.sector_count
        yield from self.disk.execute(request)
        self.commands_executed += 1
        self.status = STATUS_DRDY
        self.bm_status &= ~BM_STATUS_ACTIVE
        self.bm_status |= BM_STATUS_IRQ
        self._raise_irq()

    def _run_identify(self):
        yield self.env.timeout(200e-6)
        self.commands_executed += 1
        self.status = STATUS_DRDY | STATUS_DRQ
        self._raise_irq()

    def _run_flush(self):
        yield self.env.timeout(2e-3)
        self.commands_executed += 1
        self.status = STATUS_DRDY
        self._raise_irq()

    def _raise_irq(self) -> None:
        self.interrupts_raised += 1
        self.machine.interrupts.raise_irq(self.irq_line)

    # -- identification for scenario plumbing --------------------------------------

    kind = "ide"

    @property
    def sector_bytes(self) -> int:
        return params.SECTOR_BYTES
