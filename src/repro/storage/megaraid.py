"""MegaRAID-SAS-style message-passing host controller model.

The paper (Section 1) notes that "MegaRAID SAS and Revo Drive PCIe SSD
devices have similar straightforward interfaces" to IDE/AHCI and could
be mediated the same way.  This model implements that third interface
family: instead of taskfile registers or command slots, the driver
builds an *MFI frame* in memory describing the I/O and posts its address
to an inbound-queue doorbell; the firmware executes it and reports the
frame's context through an outbound reply register, raising an
interrupt.  Its mediator (``repro.vmm.mediator_megaraid``) plugs into
the unmodified VMM core via the mediator registry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.sim import Environment
from repro.storage.blockdev import BlockOp, BlockRequest, SectorBuffer
from repro.storage.disk import Disk

#: MMIO register block.
MFI_BASE = 0xFD00_0000
MFI_SIZE = 0x100

REG_STATUS = 0x30           # bit0: firmware busy, bit1: reply pending
REG_INBOUND_QUEUE = 0x40    # write a frame's physical address to post it
REG_OUTBOUND_REPLY = 0x44   # read: completed context, or REPLY_NONE
REG_DOORBELL_CLEAR = 0x4C   # write-1 to acknowledge the interrupt

STATUS_BUSY = 0x1
STATUS_REPLY_PENDING = 0x2

#: Value REG_OUTBOUND_REPLY returns when no completion is pending.
REPLY_NONE = 0xFFFF_FFFF

#: Default interrupt line.
MEGARAID_IRQ = 10


@dataclass
class MfiFrame:
    """One firmware command frame, built by the driver in host memory."""

    command: str             # "read" | "write" | "flush"
    lba: int
    sector_count: int
    buffer_address: int      # scatter-gather list (single entry modelled)
    context: int             # completion cookie


def decode_frame(frame: MfiFrame) -> BlockRequest | None:
    """I/O interpretation for MFI: frame -> block request."""
    if frame.command == "read":
        op = BlockOp.READ
    elif frame.command == "write":
        op = BlockOp.WRITE
    else:
        return None
    return BlockRequest(op=op, lba=frame.lba,
                        sector_count=frame.sector_count)


class MegaRaidController:
    """Single-LD MegaRAID-style HBA attached to one disk."""

    def __init__(self, env: Environment, disk: Disk, machine,
                 mmio_base: int = MFI_BASE,
                 irq_line: int = MEGARAID_IRQ):
        self.env = env
        self.disk = disk
        self.machine = machine
        self.mmio_base = mmio_base
        self.irq_line = irq_line

        self.outstanding: set[int] = set()
        self._completions: deque[int] = deque()
        self._doorbell = False
        #: Origin stamped onto decoded requests.  The controller cannot
        #: tell who programmed it; the device mediator sets this to
        #: "vmm" for the duration of its own raw commands so disk-level
        #: observers see true provenance.
        self.request_origin = "guest"

        # Metrics.
        self.commands_executed = 0
        self.interrupts_raised = 0

        machine.bus.register_mmio(mmio_base, MFI_SIZE, self)
        machine.attach_disk_controller(self)

    # -- register interface ----------------------------------------------------

    def mmio_read(self, address: int) -> int:
        offset = address - self.mmio_base
        if offset == REG_STATUS:
            status = 0
            if self.outstanding:
                status |= STATUS_BUSY
            if self._completions:
                status |= STATUS_REPLY_PENDING
            return status
        if offset == REG_OUTBOUND_REPLY:
            if self._completions:
                return self._completions.popleft()
            return REPLY_NONE
        raise ValueError(f"megaraid: unknown register {offset:#x}")

    def mmio_write(self, address: int, value: int) -> None:
        offset = address - self.mmio_base
        if offset == REG_INBOUND_QUEUE:
            self._post(value)
        elif offset == REG_DOORBELL_CLEAR:
            self._doorbell = False
        else:
            raise ValueError(f"megaraid: unknown register {offset:#x}")

    # -- properties the mediator polls ----------------------------------------------

    @property
    def busy(self) -> bool:
        return bool(self.outstanding)

    def peek_completions(self) -> tuple:
        return tuple(self._completions)

    def take_completion(self, context: int) -> bool:
        """Remove a specific completion (the mediator reaps its own)."""
        if context in self._completions:
            self._completions.remove(context)
            return True
        return False

    # -- firmware execution ----------------------------------------------------------

    def _post(self, frame_address: int) -> None:
        frame = self.machine.hostmem.lookup(frame_address)
        if not isinstance(frame, MfiFrame):
            raise TypeError("inbound queue entry is not an MFI frame")
        if frame.context in self.outstanding:
            raise ValueError(f"context {frame.context} already in flight")
        self.outstanding.add(frame.context)
        self.env.process(self._run_frame(frame),
                         name=f"megaraid-ctx{frame.context}")

    def _run_frame(self, frame: MfiFrame):
        request = decode_frame(frame)
        if request is None:
            yield self.env.timeout(2e-3)  # flush & friends
        else:
            buffer = self.machine.hostmem.lookup(frame.buffer_address)
            if not isinstance(buffer, SectorBuffer):
                raise TypeError("MFI SGL does not point at a DMA buffer")
            if buffer.sector_count < request.sector_count:
                raise ValueError("MFI DMA buffer too small")
            request.buffer = buffer
            request.origin = self.request_origin
            buffer.lba = request.lba
            buffer.sector_count = request.sector_count
            yield from self.disk.execute(request)
        self.commands_executed += 1
        self.outstanding.discard(frame.context)
        self._completions.append(frame.context)
        self._doorbell = True
        self.interrupts_raised += 1
        self.machine.interrupts.raise_irq(self.irq_line)

    kind = "megaraid"
