"""Shared utility data structures."""

from repro.util.intervalmap import IntervalMap

__all__ = ["IntervalMap"]
