"""A sorted interval map for sparse block-device contents.

Disk and image contents are modelled symbolically: each sector carries a
*token* identifying what was last written there (an image chunk id, a guest
write id, ...).  Tokens are stored as maximal runs ``(start, end, value)``
so a 32-GB image is a handful of entries, not 64 million.

Used for: the OS image on the server, the local disk's contents, DMA
buffer payloads, and the consistency verification at the end of
deployment.
"""

from __future__ import annotations

from bisect import bisect_right


class IntervalMap:
    """Maps non-negative integer keys to values, stored as runs.

    ``set_range(start, length, value)`` overwrites; ``get(key)`` returns
    the value or ``None``; iteration yields maximal ``(start, end, value)``
    runs in order (``end`` exclusive).
    """

    def __init__(self):
        # Parallel arrays of run starts/ends/values, sorted by start,
        # non-overlapping.
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._values: list = []

    def __len__(self) -> int:
        """Number of runs (not keys)."""
        return len(self._starts)

    def __iter__(self):
        return iter(self.runs())

    def __eq__(self, other) -> bool:
        if not isinstance(other, IntervalMap):
            return NotImplemented
        return self.runs() == other.runs()

    def __repr__(self):
        preview = ", ".join(
            f"[{s},{e})={v!r}" for s, e, v in self.runs()[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return f"<IntervalMap {preview}{suffix}>"

    # -- mutation ---------------------------------------------------------

    def set_range(self, start: int, length: int, value) -> None:
        """Set ``[start, start+length)`` to ``value`` (overwrites)."""
        if length <= 0:
            raise ValueError("length must be positive")
        if start < 0:
            raise ValueError("start must be non-negative")
        end = start + length
        self.clear_range(start, length)
        index = bisect_right(self._starts, start)
        self._starts.insert(index, start)
        self._ends.insert(index, end)
        self._values.insert(index, value)
        self._merge_around(index)

    def clear_range(self, start: int, length: int) -> None:
        """Remove any values in ``[start, start+length)``."""
        if length <= 0:
            raise ValueError("length must be positive")
        end = start + length
        # Find first run that could overlap.
        index = bisect_right(self._starts, start) - 1
        if index < 0:
            index = 0
        new_starts: list[int] = []
        new_ends: list[int] = []
        new_values: list = []
        while index < len(self._starts):
            run_start = self._starts[index]
            run_end = self._ends[index]
            if run_start >= end:
                break
            if run_end <= start:
                index += 1
                continue
            value = self._values[index]
            # Remove this run; keep non-overlapping pieces.
            del self._starts[index]
            del self._ends[index]
            del self._values[index]
            if run_start < start:
                new_starts.append(run_start)
                new_ends.append(start)
                new_values.append(value)
            if run_end > end:
                new_starts.append(end)
                new_ends.append(run_end)
                new_values.append(value)
        for run_start, run_end, value in zip(new_starts, new_ends,
                                             new_values):
            insert_at = bisect_right(self._starts, run_start)
            self._starts.insert(insert_at, run_start)
            self._ends.insert(insert_at, run_end)
            self._values.insert(insert_at, value)

    def _merge_around(self, index: int) -> None:
        """Coalesce the run at ``index`` with equal-valued neighbours."""
        # Merge with previous.
        if (index > 0
                and self._ends[index - 1] == self._starts[index]
                and self._values[index - 1] == self._values[index]):
            self._ends[index - 1] = self._ends[index]
            del self._starts[index]
            del self._ends[index]
            del self._values[index]
            index -= 1
        # Merge with next.
        if (index + 1 < len(self._starts)
                and self._ends[index] == self._starts[index + 1]
                and self._values[index] == self._values[index + 1]):
            self._ends[index] = self._ends[index + 1]
            del self._starts[index + 1]
            del self._ends[index + 1]
            del self._values[index + 1]

    # -- queries -----------------------------------------------------------

    def get(self, key: int):
        """Value at ``key``, or ``None`` if unset."""
        index = bisect_right(self._starts, key) - 1
        if index >= 0 and self._starts[index] <= key < self._ends[index]:
            return self._values[index]
        return None

    def runs(self) -> list[tuple[int, int, object]]:
        """All runs as ``(start, end, value)``, ``end`` exclusive."""
        return list(zip(self._starts, self._ends, self._values))

    def runs_in(self, start: int, length: int):
        """Runs overlapping ``[start, start+length)``, clipped to it.

        Yields ``(start, end, value)`` including synthetic ``value=None``
        gap runs, so the output tiles the whole query range.
        """
        if length <= 0:
            raise ValueError("length must be positive")
        end = start + length
        cursor = start
        index = bisect_right(self._starts, start) - 1
        if index < 0:
            index = 0
        while cursor < end:
            if index >= len(self._starts):
                yield (cursor, end, None)
                return
            run_start = self._starts[index]
            run_end = self._ends[index]
            if run_end <= cursor:
                index += 1
                continue
            if run_start >= end:
                yield (cursor, end, None)
                return
            if run_start > cursor:
                yield (cursor, run_start, None)
                cursor = run_start
            clipped_end = min(run_end, end)
            yield (cursor, clipped_end, self._values[index])
            cursor = clipped_end
            index += 1

    def covered_length(self, start: int, length: int) -> int:
        """How many keys in ``[start, start+length)`` have a value."""
        return sum(run_end - run_start
                   for run_start, run_end, value
                   in self.runs_in(start, length)
                   if value is not None)

    def is_fully_covered(self, start: int, length: int) -> bool:
        return self.covered_length(start, length) == length

    def first_gap(self, start: int, end: int) -> tuple[int, int] | None:
        """The first uncovered ``(gap_start, gap_end)`` in ``[start, end)``."""
        for run_start, run_end, value in self.runs_in(start, end - start):
            if value is None:
                return (run_start, run_end)
        return None

    def total_covered(self) -> int:
        """Total number of keys with a value."""
        return sum(end - start for start, end, _ in self.runs())
