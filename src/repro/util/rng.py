"""The one sanctioned door to pseudo-randomness in simulation code.

Every stochastic model in the simulator (frame loss, boot traces,
workload generators) must draw from an explicitly seeded generator so
that a run is a pure function of its inputs — same seeds, same event
stream, same numbers.  ``simlint`` rule SIM003 enforces this by
rejecting ``import random`` everywhere except this module; use
:func:`make_rng` instead and thread the instance through.

The module-level ``random.*`` functions (and unseeded ``Random()``)
are banned outright: they share hidden global state across otherwise
independent components, so adding one draw anywhere perturbs every
number downstream of it.
"""

from __future__ import annotations

import random


def make_rng(seed: int) -> random.Random:
    """A dedicated, explicitly seeded pseudo-random generator.

    Thin by design — the point is the choke point, not the wrapper.
    Callers keep their own instance; nothing here is shared.
    """
    if seed is None:
        raise ValueError("simulation RNGs must be explicitly seeded")
    return random.Random(seed)
