"""The BMcast VMM: device mediators, streaming deployment, devirt."""

from repro.vmm.bitmap import BlockBitmap, BlockState
from repro.vmm.bmcast import (
    DEPLOY_CONDITION,
    DEVIRT_CONDITION,
    BmcastVmm,
)
from repro.vmm.copier import BackgroundCopier
from repro.vmm.deploy import DeploymentContext
from repro.vmm.devirt import Devirtualizer
from repro.vmm.mediator import DeviceMediator, MediatorMode
from repro.vmm.mediator_ahci import AhciMediator
from repro.vmm.mediator_ide import IdeMediator
from repro.vmm.mediator_nic import NicMediator, SharedNicPort
from repro.vmm.moderation import (
    FULL_SPEED,
    ModerationPolicy,
    interval_sweep_policy,
)

__all__ = [
    "AhciMediator",
    "BackgroundCopier",
    "BlockBitmap",
    "BlockState",
    "BmcastVmm",
    "DEPLOY_CONDITION",
    "DEVIRT_CONDITION",
    "DeploymentContext",
    "DeviceMediator",
    "Devirtualizer",
    "FULL_SPEED",
    "IdeMediator",
    "MediatorMode",
    "ModerationPolicy",
    "NicMediator",
    "SharedNicPort",
    "interval_sweep_policy",
]
