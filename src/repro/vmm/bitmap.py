"""Deployment block bitmap (paper 3.3).

The VMM tracks, per copy block (1024 KB), whether the local disk already
holds the authoritative data.  The consistency hazard the paper describes:
the VMM requests block B from the server; before the reply lands, the
guest writes to B; the reply must NOT clobber the guest's newer data.  The
bitmap is checked *atomically at write time* to prevent that.

Guest writes are sector-granular but blocks are 1 MB, so a sector-granular
*dirty overlay* records guest-written ranges inside not-yet-filled blocks;
the copier masks those sectors out of its writes, and the redirector
serves them from the local disk rather than the server.
"""

from __future__ import annotations

import enum

from repro import params
from repro.util.intervalmap import IntervalMap


class BlockState(enum.Enum):
    EMPTY = "empty"       # local disk does not hold this block yet
    COPYING = "copying"   # a background fetch for it is in flight
    FILLED = "filled"     # local disk is authoritative


#: Declared claim protocol for ``repro check``'s FSM pass.  The
#: checker recovers the implemented transition relation from how
#: ``BlockBitmap``'s methods mutate the claimed-set and the filled-map
#: (``try_claim`` adds -> EMPTY->COPYING; ``commit_fill`` discards,
#: fills and raises on unclaimed -> COPYING->FILLED;
#: ``record_guest_write`` also fills unclaimed blocks ->
#: EMPTY->FILLED; ``release_claim`` discards -> COPYING->EMPTY) and
#: diffs it against this spec.
SIMCHECK_FSM = {
    "name": "block-claim",
    "initial": "empty",
    "states": ("empty", "copying", "filled"),
    "transitions": {
        "empty": ("copying", "filled"),
        "copying": ("filled", "empty"),
        "filled": (),
    },
    "terminal": ("filled",),
    "extract": {
        "kind": "claim-methods",
        "class": "BlockBitmap",
        "claimed": "_copying",
        "filled": "_filled",
        "states": ("empty", "copying", "filled"),
    },
}


class BlockBitmap:
    """Per-block deployment state plus the sector-granular dirty overlay."""

    def __init__(self, image_sectors: int,
                 block_bytes: int = params.COPY_BLOCK_BYTES):
        if image_sectors <= 0:
            raise ValueError("image_sectors must be positive")
        if block_bytes % params.SECTOR_BYTES != 0:
            raise ValueError("block size must be sector-aligned")
        self.image_sectors = image_sectors
        self.block_sectors = block_bytes // params.SECTOR_BYTES
        self.block_count = (image_sectors + self.block_sectors - 1) \
            // self.block_sectors
        self._filled = IntervalMap()      # block index -> True
        self._copying: set[int] = set()
        #: Sector ranges the guest wrote inside non-FILLED blocks.
        self.dirty = IntervalMap()
        #: Called with ``(lba, sector_count)`` on every recorded guest
        #: write — the provenance signal peer chunk services taint on
        #: (the disk itself cannot tell who programmed the controller).
        self.guest_write_listeners: list = []
        #: Called with ``(event, block, **details)`` on every state
        #: transition attempt — ``"claim"``, ``"release"``, ``"commit"``
        #: and ``"guest-fill"``.  The write-race sanitizer replays these
        #: to check the claim protocol; listeners must not mutate the
        #: bitmap.
        self.transition_listeners: list = []
        # Metrics.
        self.copier_skips = 0
        #: Claims attempted on a block already in COPYING — a second
        #: retriever racing the first, which the protocol forbids.
        self.double_claims = 0

    # -- block geometry ---------------------------------------------------------

    def block_of(self, lba: int) -> int:
        return lba // self.block_sectors

    def block_range(self, block: int) -> tuple[int, int]:
        """(first LBA, sector count) of ``block``, clipped to the image."""
        start = block * self.block_sectors
        count = min(self.block_sectors, self.image_sectors - start)
        return start, count

    def blocks_overlapping(self, lba: int, sector_count: int):
        first = self.block_of(lba)
        last = self.block_of(lba + sector_count - 1)
        return range(first, min(last, self.block_count - 1) + 1)

    # -- state queries -------------------------------------------------------------

    def state(self, block: int) -> BlockState:
        if self._filled.get(block):
            return BlockState.FILLED
        if block in self._copying:
            return BlockState.COPYING
        return BlockState.EMPTY

    def is_filled(self, block: int) -> bool:
        return self._filled.get(block) is not None

    @property
    def filled_count(self) -> int:
        return self._filled.total_covered()

    def filled_runs(self) -> list[tuple[int, int, object]]:
        """FILLED block-index runs as ``(start, end, value)``, ``end``
        exclusive — the raw material for peer bitmap summaries."""
        return self._filled.runs()

    @property
    def complete(self) -> bool:
        return self.filled_count == self.block_count

    def first_empty_from(self, block: int) -> int | None:
        """The first non-FILLED, non-COPYING block at/after ``block``,
        wrapping around; ``None`` when everything is filled/claimed."""
        for base in (block, 0):
            cursor = base
            while cursor < self.block_count:
                gap = self._filled.first_gap(cursor, self.block_count)
                if gap is None:
                    break
                gap_start, gap_end = gap
                for candidate in range(gap_start, gap_end):
                    if candidate not in self._copying:
                        return candidate
                cursor = gap_end
        return None

    # -- sector-level coverage (read-path decisions) -----------------------------------

    def sectors_local(self, lba: int, sector_count: int) -> bool:
        """True if every sector in range is served by the local disk
        (inside a FILLED block, or guest-dirty)."""
        cursor = lba
        end = lba + sector_count
        while cursor < end:
            block = self.block_of(cursor)
            block_end = min((block + 1) * self.block_sectors, end)
            if not self.is_filled(block):
                span = block_end - cursor
                if self.dirty.covered_length(cursor, span) != span:
                    return False
            cursor = block_end
        return True

    def local_subranges(self, lba: int, sector_count: int):
        """Yield (start, count) subranges that must come from the local
        disk when redirecting the enclosing read."""
        cursor = lba
        end = lba + sector_count
        while cursor < end:
            block = self.block_of(cursor)
            block_end = min((block + 1) * self.block_sectors, end)
            if self.is_filled(block):
                yield (cursor, block_end - cursor)
            else:
                for run_start, run_end, value in self.dirty.runs_in(
                        cursor, block_end - cursor):
                    if value is not None:
                        yield (run_start, run_end - run_start)
            cursor = block_end

    # -- transitions --------------------------------------------------------------------

    def _notify(self, event: str, block: int, **details) -> None:
        for listener in self.transition_listeners:
            listener(event, block, **details)

    def try_claim(self, block: int) -> bool:
        """Copier: atomically move EMPTY -> COPYING.  False if not EMPTY."""
        state = self.state(block)
        if state is not BlockState.EMPTY:
            self.copier_skips += 1
            if state is BlockState.COPYING:
                self.double_claims += 1
            if self.transition_listeners:
                self._notify("claim", block, granted=False,
                             state=state.value)
            return False
        self._copying.add(block)
        if self.transition_listeners:
            self._notify("claim", block, granted=True, state=state.value)
        return True

    def claim_run(self, block: int, max_blocks: int) -> int:
        """Copier: claim up to ``max_blocks`` contiguous EMPTY blocks
        starting at ``block`` (EMPTY -> COPYING each), for one coalesced
        bulk fetch.  Stops at the first non-EMPTY block and returns how
        many were claimed (0 when ``block`` itself was not EMPTY).

        Emits the same per-block ``"claim"`` notifications as
        :meth:`try_claim`, so the claim-protocol sanitizer and the FSM
        extractor observe an identical protocol stream.
        """
        if max_blocks < 1:
            raise ValueError("max_blocks must be positive")
        if not self.try_claim(block):
            return 0
        limit = min(block + max_blocks, self.block_count)
        cursor = block + 1
        while cursor < limit and self.state(cursor) is BlockState.EMPTY:
            self._copying.add(cursor)
            if self.transition_listeners:
                self._notify("claim", cursor, granted=True, state="empty")
            cursor += 1
        return cursor - block

    def release_run(self, block: int, count: int) -> None:
        """Release a run of claims (failed coalesced fetch)."""
        for cursor in range(block, block + count):
            self.release_claim(cursor)

    def release_claim(self, block: int) -> None:
        was_claimed = block in self._copying
        self._copying.discard(block)
        if self.transition_listeners:
            self._notify("release", block, was_claimed=was_claimed,
                         state=self.state(block).value)

    def commit_fill(self, block: int) -> None:
        """Copier: COPYING -> FILLED after the disk write completed."""
        was_claimed = block in self._copying
        if self.transition_listeners:
            # Emitted before raising so the sanitizer sees the attempt
            # even if the caller swallows the exception.
            self._notify("commit", block, was_claimed=was_claimed,
                         state=self.state(block).value)
        if not was_claimed:
            raise ValueError(f"block {block} was not claimed")
        self._copying.discard(block)
        self._filled.set_range(block, 1, True)
        # The overlay for this block is no longer needed.
        start, count = self.block_range(block)
        self.dirty.clear_range(start, count)

    def commit_fill_run(self, block: int, count: int) -> None:
        """Copier: COPYING -> FILLED for ``count`` contiguous blocks as
        one atomic bitmap update (single filled-map range set, single
        dirty-overlay clear).  Every block must be claimed — validated
        up front, before any state changes — and per-block ``"commit"``
        notifications are emitted exactly as :meth:`commit_fill` would.
        """
        if count < 1:
            raise ValueError("count must be positive")
        end = block + count
        unclaimed = None
        for cursor in range(block, end):
            was_claimed = cursor in self._copying
            if self.transition_listeners:
                # Emitted before raising so the sanitizer sees the
                # attempt even if the caller swallows the exception.
                self._notify("commit", cursor, was_claimed=was_claimed,
                             state=self.state(cursor).value)
            if not was_claimed and unclaimed is None:
                unclaimed = cursor
        if unclaimed is not None:
            raise ValueError(f"block {unclaimed} was not claimed")
        for cursor in range(block, end):
            self._copying.discard(cursor)
        self._filled.set_range(block, count, True)
        start = block * self.block_sectors
        sectors = min(count * self.block_sectors,
                      self.image_sectors - start)
        self.dirty.clear_range(start, sectors)

    def record_guest_write(self, lba: int, sector_count: int) -> None:
        """Mediator: the guest wrote this range.

        Blocks that the write covers completely become FILLED outright
        (newest data, nothing left to copy); partially covered non-filled
        blocks get a dirty-overlay entry.
        """
        for listener in self.guest_write_listeners:
            listener(lba, sector_count)
        end = lba + sector_count
        for block in self.blocks_overlapping(lba, sector_count):
            if self.is_filled(block):
                continue
            block_start, block_count = self.block_range(block)
            block_end = block_start + block_count
            overlap_start = max(lba, block_start)
            overlap_end = min(end, block_end)
            if overlap_start == block_start and overlap_end == block_end:
                # Whole block overwritten by the guest.
                was_claimed = block in self._copying
                self._copying.discard(block)
                self._filled.set_range(block, 1, True)
                self.dirty.clear_range(block_start, block_count)
                if self.transition_listeners:
                    self._notify("guest-fill", block,
                                 was_claimed=was_claimed)
            else:
                self.dirty.set_range(overlap_start,
                                     overlap_end - overlap_start, True)

    def writable_runs(self, block: int) -> list[tuple[int, int]]:
        """(start, count) ranges of ``block`` the copier may write —
        everything except guest-dirty sectors.  **The atomic check**: call
        this immediately before the disk write."""
        start, count = self.block_range(block)
        return [
            (run_start, run_end - run_start)
            for run_start, run_end, value in self.dirty.runs_in(start, count)
            if value is None
        ]

    # -- persistence (paper: saved to an unused on-disk region) ---------------------------

    def snapshot(self) -> dict:
        """Serializable state for the on-disk bitmap save.

        Runs are tuples so the snapshot is immutable: the on-disk copy
        must not alias live state.
        """
        return {
            "image_sectors": self.image_sectors,
            "block_sectors": self.block_sectors,
            "filled": tuple(self._filled.runs()),
            "dirty": tuple(self.dirty.runs()),
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "BlockBitmap":
        bitmap = cls(snapshot["image_sectors"],
                     snapshot["block_sectors"] * params.SECTOR_BYTES)
        bitmap.load_snapshot(snapshot)
        return bitmap

    def load_snapshot(self, snapshot: dict) -> None:
        """Replace this bitmap's state with a saved snapshot (resume)."""
        if snapshot["image_sectors"] != self.image_sectors:
            raise ValueError("snapshot is for a different image size")
        if snapshot["block_sectors"] != self.block_sectors:
            raise ValueError("snapshot uses a different block size")
        self._filled = IntervalMap()
        self.dirty = IntervalMap()
        self._copying.clear()
        for start, end, value in snapshot["filled"]:
            self._filled.set_range(start, end - start, value)
        for start, end, value in snapshot["dirty"]:
            self.dirty.set_range(start, end - start, value)
