"""BMcast: the de-virtualizable deployment VMM (the paper's system).

Lifecycle (paper 3.1, Figure 1):

* **initialization** — network-boot the tiny VMM (~5 s), VMXON every
  CPU, reserve VMM memory by carving the BIOS map, enable identity-mapped
  nested paging with the mediated device's MMIO/PIO trapped, install the
  device mediator, connect to the storage server.
* **deployment** — the guest boots and runs with direct hardware access;
  copy-on-read redirects reads of empty blocks; the background copier
  streams the rest of the image, moderated.
* **de-virtualization** — once the bitmap is complete, tear everything
  down seamlessly (see :mod:`repro.vmm.devirt`).
* **bare-metal** — the VMM is gone; zero overhead.
"""

from __future__ import annotations

from repro import params
from repro.aoe.client import AoeInitiator
from repro.hw.cpu import ExitReason
from repro.hw.platform import PlatformCondition
from repro.metrics.eventlog import NULL_LOG, EventLog
from repro.obs.telemetry import NULL_TELEMETRY
from repro.sim import Environment
from repro.vmm.bitmap import BlockBitmap
from repro.vmm.copier import BackgroundCopier
from repro.vmm.deploy import DeploymentContext
from repro.vmm.devirt import Devirtualizer
from repro.vmm.mediator import mediator_for
# Importing the mediator modules registers them with the VMM core.
from repro.vmm import mediator_ahci  # noqa: F401
from repro.vmm import mediator_ide  # noqa: F401
from repro.vmm import mediator_megaraid  # noqa: F401
from repro.vmm.moderation import ModerationPolicy


#: Condition published while BMcast is deploying.
DEPLOY_CONDITION = PlatformCondition(
    label="bmcast-deploy",
    nested_paging=True,
    vmm_cpu_fraction=params.BMCAST_DEPLOY_CPU_FRACTION,
    # The 12-core machine mostly absorbs the deployment threads on idle
    # cores (paper 5.2: the 6% total CPU cost shaves throughput ~5%, not
    # the full 6% + TLB cost, because the workload is not core-saturated).
    vmm_cpu_contention=0.35,
    ib_latency_factor=params.BMCAST_IB_LATENCY_FACTOR,
)

#: Condition after de-virtualization: identical to bare metal.
DEVIRT_CONDITION = PlatformCondition(label="bmcast-devirt")


class BmcastVmm:
    """One BMcast instance managing one machine."""

    def __init__(self, env: Environment, machine, vmm_nic, server: str,
                 image_sectors: int,
                 policy: ModerationPolicy | None = None,
                 poll_interval: float | None = None,
                 vmxoff_mode: str = "full",
                 management_nic_slot: int | None = None,
                 boot_seconds: float = params.BMCAST_VMM_BOOT_SECONDS,
                 auto_devirtualize: bool = True,
                 resume: bool = False,
                 release_memory: bool = False,
                 prefetch_lbas=None,
                 extra_mediators=(),
                 trace: bool = False,
                 fabric=None,
                 peer_nic=None,
                 fluid: bool = False,
                 coalesce_blocks: int | None = None,
                 initial_rto: float | None = None,
                 telemetry=NULL_TELEMETRY):
        self.env = env
        self.machine = machine
        self.vmm_nic = vmm_nic
        self.boot_seconds = boot_seconds
        self.auto_devirtualize = auto_devirtualize
        #: Resume a previously interrupted deployment from the on-disk
        #: bitmap (paper 3.3's shutdown-and-reboot case).
        self.resume = resume
        self.resumed_from_disk = False
        #: Memory hot-plug extension (paper 4.3 lists the prototype's
        #: failure to return the 128 MB as a fixable limitation): give
        #: the reservation back to the guest at de-virtualization.
        self.release_memory = release_memory

        if poll_interval is None:
            if machine.spec.has_preemption_timer:
                poll_interval = params.POLL_INTERVAL_SECONDS
            else:
                # Soft-timer fallback: coarser polling (paper 4.1).
                poll_interval = params.SOFT_TIMER_INTERVAL_SECONDS
        self.poll_interval = poll_interval

        #: Metrics registry + span tracer (opt-in; see repro.obs).
        self.telemetry = telemetry
        #: Parent for this VMM's phase spans: whatever deployment span
        #: is ambient at construction (the provisioner's root), if any.
        self._span_parent = telemetry.tracer.ambient
        self._phase_span = None
        # Fleet-deploy profiles raise the cold-start RTO (TCP-style):
        # a multi-megabyte coalesced fetch takes longer than the 50 ms
        # protocol default, and Karn's rule keeps the estimator cold
        # while every transaction retransmits — a storm, not a signal.
        rto_kwargs = {} if initial_rto is None \
            else {"initial_rto": initial_rto}
        self.initiator = AoeInitiator(env, vmm_nic, server,
                                      poll_interval=poll_interval,
                                      telemetry=telemetry, **rto_kwargs)
        self.bitmap = BlockBitmap(image_sectors)
        #: Structured event log (opt-in; see repro.metrics.eventlog).
        self.tracer = EventLog(env) if trace else NULL_LOG
        self.deployment = DeploymentContext(
            env, self.bitmap, self.initiator,
            poll_interval=poll_interval,
            protected_lba=image_sectors + 8,
            protected_sectors=64,
            tracer=self.tracer,
            telemetry=telemetry,
        )
        #: Distribution fabric (repro.dist): route fetches through a
        #: replica selector, and optionally serve local blocks to peers.
        self.fabric = fabric
        self.router = None
        self.peer_service = None
        if fabric is not None:
            from repro.dist.router import FetchRouter
            self.router = FetchRouter(env, self.initiator, fabric,
                                      node_port=vmm_nic.name,
                                      telemetry=telemetry)
            self.deployment.fetcher = self.router
            if fabric.p2p and peer_nic is not None:
                from repro.dist.peer import PeerChunkService
                self.peer_service = PeerChunkService(
                    env, peer_nic, machine.disk_controller.disk,
                    self.bitmap, fabric.directory, telemetry=telemetry)
                self.deployment.block_filled_listeners.append(
                    self.peer_service.note_block_filled)
        #: Copy blocks a guest write has touched: their on-disk content
        #: no longer matches the image.  Mirrors the peer service's
        #: taint signals but is always on, so the reclaim path
        #: (repro.ctl) can compute the warm/preserve set on non-p2p
        #: testbeds too.  Pre-devirt writes arrive mediated (bitmap
        #: listener); post-devirt direct I/O arrives via the disk
        #: observer, gated on the flag set at de-virtualization.
        self.tainted_blocks: set[int] = set()
        self._direct_io_taint = False
        self.bitmap.guest_write_listeners.append(self._taint_range)
        machine.disk_controller.disk.write_observers.append(
            self._taint_direct_write)
        self.mediator = self._build_mediator()
        prefetch_blocks = None
        if prefetch_lbas:
            seen = set()
            prefetch_blocks = []
            for lba in prefetch_lbas:
                block = self.bitmap.block_of(lba)
                if block not in seen:
                    seen.add(block)
                    prefetch_blocks.append(block)
        #: Fluid-flow opt-in (repro.net.flow): armed at boot, demoted
        #: permanently the moment any fidelity-bearing dynamic engages.
        from repro.net.flow import FluidState
        self.fluid = FluidState(requested=fluid, telemetry=telemetry)
        self.copier = BackgroundCopier(env, self.deployment, self.mediator,
                                       policy=policy,
                                       prefetch_blocks=prefetch_blocks,
                                       coalesce_blocks=coalesce_blocks,
                                       fluid_state=self.fluid)
        #: Additional mediators (e.g. a shared-NIC mediator, paper 6)
        #: installed at boot and removed at de-virtualization.
        self.extra_mediators = list(extra_mediators)
        self.devirtualizer = Devirtualizer(
            env, machine, [self.mediator] + self.extra_mediators,
            vmxoff_mode=vmxoff_mode,
            management_nic_slot=management_nic_slot)

        self.phase = "off"
        self.phase_log: list[tuple[float, str]] = [(env.now, "off")]
        self._devirt_watcher = None

    # -- bitmap persistence (paper 3.3: saved to an unused disk region) --------

    #: Token tag identifying an on-disk bitmap save.
    BITMAP_TOKEN = "bmcast-bitmap"

    def persist_bitmap(self):
        """Generator: write the bitmap snapshot to the protected region.

        Survives shutdown/reboot mid-deployment; the region is invisible
        to the guest (reads are converted to dummy data).
        """
        from repro.storage.blockdev import BlockOp, BlockRequest
        snapshot = self.bitmap.snapshot()
        lba = self.deployment.protected_lba
        count = self.deployment.protected_sectors
        request = BlockRequest(BlockOp.WRITE, lba, count, origin="vmm")
        request.buffer.runs = [(lba, lba + count,
                                (self.BITMAP_TOKEN, snapshot))]
        yield from self.mediator.vmm_request(request)

    def load_saved_bitmap(self):
        """Generator: read a previously persisted bitmap, or ``None``."""
        from repro.storage.blockdev import BlockOp, BlockRequest
        lba = self.deployment.protected_lba
        count = self.deployment.protected_sectors
        request = BlockRequest(BlockOp.READ, lba, count, origin="vmm")
        yield from self.machine.disk_controller.disk.execute(request)
        for _, _, token in request.buffer.runs:
            if (isinstance(token, tuple) and len(token) == 2
                    and token[0] == self.BITMAP_TOKEN):
                return token[1]
        return None

    def shutdown(self):
        """Generator: graceful power-off mid-deployment.

        Stops the copier, saves the bitmap to disk (paper 3.3's
        shutdown/reboot case), and tears the VMM down so the machine can
        power off.  A later VMM boot with ``resume=True`` continues from
        the saved state instead of refetching filled blocks.
        """
        if self.phase != "deployment":
            raise RuntimeError(f"cannot shut down from {self.phase!r}")
        self.copier.stop()
        # Let any in-flight mediation settle.
        while not self.mediator.quiescent:
            yield self.env.timeout(1e-3)
        yield from self.persist_bitmap()
        if self.peer_service is not None:
            self.peer_service.stop()
        self.initiator.stop()
        self.mediator.uninstall()
        for cpu in self.machine.cpus:
            cpu.npt.disable()
            cpu.vmxoff()
        self.machine.memory.release(self.reserved_region)
        self.machine.set_condition(DEVIRT_CONDITION.with_(label="off"))
        self._enter_phase("off")

    def _build_mediator(self):
        return mediator_for(self.env, self.machine, self.deployment)

    # -- image-content provenance (the reclaim path's warm set) ---------------

    def _taint_range(self, lba: int, sector_count: int) -> None:
        if lba >= self.bitmap.image_sectors:
            return  # bitmap-save region, not image data
        for block in self.bitmap.blocks_overlapping(lba, sector_count):
            self.tainted_blocks.add(block)

    def _taint_direct_write(self, request) -> None:
        if self._direct_io_taint:
            self._taint_range(request.lba, request.sector_count)

    def pristine_blocks(self) -> set[int]:
        """FILLED copy blocks whose disk content still equals the image.

        The reclaim path preserves exactly this set: a reclaimed node
        re-deploying the same image may trust these blocks as already
        local, and may serve them to peers, because no guest write ever
        touched them.
        """
        return {
            block
            for start, end, _ in self.bitmap.filled_runs()
            for block in range(start, end)
            if block not in self.tainted_blocks
        }

    # -- phase machine ------------------------------------------------------------------

    def _enter_phase(self, phase: str) -> None:
        self.phase = phase
        self.phase_log.append((self.env.now, phase))
        self.tracer.log("phase", f"entered {phase}")
        # One phase span open at a time; new work (AoE round-trips,
        # mediated commands, the copier) attaches to the current phase.
        spans = self.telemetry.tracer
        if self._phase_span is not None:
            spans.end(self._phase_span)
        self._phase_span = spans.start(f"phase:{phase}",
                                       parent=self._span_parent)
        spans.ambient = self._phase_span

    def phase_at(self, time: float) -> str:
        current = self.phase_log[0][1]
        for stamp, phase in self.phase_log:
            if stamp <= time:
                current = phase
            else:
                break
        return current

    # -- initialization phase ---------------------------------------------------------------

    def boot(self):
        """Generator: the initialization phase.

        The machine's firmware must already be initialized (the
        provisioner network-boots the VMM).  Afterwards the guest may be
        started; the deployment phase is active.
        """
        self._enter_phase("initialization")
        # Tiny VMM, parallelized init: ~5 s total (paper 5.1), which
        # covers PXE load, VMX setup, and NIC bring-up.
        yield self.env.timeout(self.boot_seconds)

        # Reserve VMM memory by carving the BIOS map (paper 3.4) and
        # protect it with nested paging.
        memory = self.machine.memory
        reserve_start = memory.size_bytes - params.VMM_RESERVED_BYTES
        self.reserved_region = memory.reserve(reserve_start,
                                              params.VMM_RESERVED_BYTES)
        for cpu in self.machine.cpus:
            cpu.npt.protect(reserve_start, params.VMM_RESERVED_BYTES)
            cpu.vmxon()
            cpu.npt.enable()

        # Install the device mediator (this also registers the MMIO trap
        # ranges on the nested page tables) and enter the guest.
        self.mediator.install()
        for mediator in self.extra_mediators:
            mediator.install()

        if self.resume:
            snapshot = yield from self.load_saved_bitmap()
            if snapshot is not None:
                self.bitmap.load_snapshot(snapshot)
                self.resumed_from_disk = True

        for cpu in self.machine.cpus:
            cpu.vmenter()

        self.initiator.start()
        if self.peer_service is not None:
            self.peer_service.start()
        self.machine.set_condition(DEPLOY_CONDITION)
        self._enter_phase("deployment")
        if self.fluid.requested:
            self._fluid_arm()
        self.copier.start()
        if self.auto_devirtualize:
            self._devirt_watcher = self.env.process(
                self._watch_for_completion(), name="bmcast-devirt-watcher")

    # -- fluid-flow fast path (repro.net.flow) ----------------------------------------------------

    def _fluid_arm(self) -> None:
        """Engage fluid transfers iff no fidelity-bearing dynamic is on.

        Static demotion triggers are evaluated here, at deployment
        start; runtime triggers (NAK / timeout / retransmission) demote
        via the initiator observer so the very next copier fetch falls
        back to the exact per-packet path.
        """
        policy = self.copier.policy
        if policy.write_interval != 0.0 or policy.suspend_interval != 0.0:
            self.fluid.demote("moderation")
        loss = getattr(self.vmm_nic.switch, "loss", None)
        if loss is not None and loss.loss_probability > 0.0:
            self.fluid.demote("loss-injection")
        if self.fabric is not None and self.fabric.p2p:
            self.fluid.demote("peer-gossip")
        if self.fluid.engage():
            self.initiator.observers.append(self._fluid_observer)

    def _fluid_observer(self, kind: str, **fields) -> None:
        if not self.fluid.active:
            return
        if kind == "nak":
            self.fluid.demote("nak")
        elif kind == "timeout":
            self.fluid.demote("timeout")
        elif kind == "send" and fields.get("retransmit"):
            self.fluid.demote("retransmission")

    # -- deployment -> de-virtualization ---------------------------------------------------------

    def _watch_for_completion(self):
        yield self.copier.done
        yield from self.devirtualize()

    def devirtualize(self):
        """Generator: run the de-virtualization phase now."""
        if self.phase != "deployment":
            raise RuntimeError(f"cannot de-virtualize from {self.phase!r}")
        self._enter_phase("devirtualization")
        self._account_polling_exits()
        # From here the mediator disappears mid-teardown: switch the
        # taint source to raw disk writes (double-reporting a mediated
        # write during the hand-over is harmless — same set).
        self._direct_io_taint = True
        self.copier.stop()
        if self.peer_service is not None:
            self.peer_service.mark_direct_io()
        yield from self.devirtualizer.run()
        self.initiator.stop()
        if self.peer_service is not None:
            # The responder survives de-virtualization (it runs as a
            # host-level agent, not inside the VMM): a fully deployed
            # node is the fabric's best seed for later waves.
            self.peer_service.publish()
        if self.release_memory:
            # Memory hot-plug: hand the VMM's reservation back.
            self.machine.memory.release(self.reserved_region)
        self.machine.set_condition(DEVIRT_CONDITION)
        self._enter_phase("baremetal")
        self.telemetry.causal.mark("devirtualize")

    def _account_polling_exits(self) -> None:
        """Bulk-account the preemption-timer exits the polling threads
        cost during deployment (kept out of the hot event loop)."""
        deploy_start = next(stamp for stamp, phase in self.phase_log
                            if phase == "deployment")
        elapsed = self.env.now - deploy_start
        if self.poll_interval > 0:
            ticks = int(elapsed / self.poll_interval)
            cpu = self.machine.boot_cpu
            cpu.exit_counts[ExitReason.PREEMPTION_TIMER] += ticks
            cpu.exit_seconds += ticks * params.VM_EXIT_SECONDS

    # -- reporting ------------------------------------------------------------------------------

    def summary(self) -> dict:
        """Deployment metrics in one bundle."""
        dist = {}
        if self.router is not None:
            dist = self.router.stats()
        if self.peer_service is not None:
            dist["peer_chunks_served"] = self.peer_service.chunks_served
            dist["peer_naks_sent"] = self.peer_service.naks_sent
        return {
            "phase": self.phase,
            "fluid": self.fluid.describe(),
            **dist,
            "blocks_filled": self.copier.blocks_filled,
            "bytes_written": self.copier.bytes_written,
            "writeback_bytes": self.copier.writeback_bytes,
            "redirected_reads": self.mediator.redirected_reads,
            "redirected_bytes": self.deployment.redirected_bytes,
            "multiplexed_requests": self.mediator.multiplexed_requests,
            "queued_guest_commands": self.mediator.queued_guest_commands,
            "interpreted_commands": self.mediator.interpreted_commands,
            "retransmissions": self.initiator.retransmissions,
            "deployment_seconds": self.copier.elapsed,
            "total_vm_exits": self.machine.total_vm_exits(),
        }
