"""Background copy: retriever and writer threads over a FIFO (paper 3.3).

The retriever pulls empty blocks from the server (seek-affine order: it
jumps next to wherever the guest last touched the disk); the writer pops
the FIFO and writes blocks to the local disk through the device
mediator's I/O multiplexing, paced by the moderation policy.  The writer
also drains the copy-on-read write-back queue so redirected reads become
local for free.

Consistency is enforced by the block bitmap: the writer re-derives the
writable sector runs *at write time*, so a guest write that raced the
fetch is never overwritten.
"""

from __future__ import annotations

from repro import params
from repro.sim import Environment, Interrupt, Store
from repro.storage.blockdev import BlockOp, BlockRequest, SectorBuffer
from repro.vmm.bitmap import BlockState
from repro.vmm.deploy import DeploymentContext
from repro.vmm.mediator import DeviceMediator
from repro.vmm.moderation import ModerationPolicy


class BackgroundCopier:
    """Retriever + writer thread pair with a bounded FIFO between them.

    Under an *unmoderated* policy (write and suspend intervals both
    zero — the full-speed deploys the startup-latency figures measure),
    the retriever coalesces contiguous pristine (EMPTY) blocks into runs
    of up to ``coalesce_blocks`` and fetches each run as ONE bulk
    transaction — same bytes on the wire, one command/ack round trip and
    one server read instead of per-block events — and the writer lands
    each run with a single disk transaction and an atomic bitmap
    range-commit.  Moderated policies keep the per-block pipeline
    untouched: pacing stays per VMM write and the FIFO's lookahead stays
    at ``fifo_capacity`` blocks, so interference and outage behavior are
    byte-for-byte what they were before coalescing existed.
    """

    #: Idle poll granularity of the writer thread.
    IDLE_POLL_SECONDS = 5e-3

    #: Max contiguous blocks fetched as one bulk transaction.
    DEFAULT_COALESCE_BLOCKS = 8

    def __init__(self, env: Environment, deployment: DeploymentContext,
                 mediator: DeviceMediator,
                 policy: ModerationPolicy | None = None,
                 fifo_capacity: int = 4,
                 prefetch_blocks=None,
                 coalesce_blocks: int | None = None,
                 fluid_state=None):
        self.env = env
        self.deployment = deployment
        self.mediator = mediator
        self.policy = policy or ModerationPolicy()
        #: The deployment's FluidState, when the platform opted in —
        #: checked per fetch so a runtime demotion (NAK, retransmit)
        #: flips the very next fetch back to packet mode.
        self.fluid_state = fluid_state
        self.coalesce_blocks = coalesce_blocks \
            if coalesce_blocks is not None else self.DEFAULT_COALESCE_BLOCKS
        if self.coalesce_blocks < 1:
            raise ValueError("coalesce_blocks must be positive")
        self.fifo: Store = Store(env, capacity=fifo_capacity)
        #: Blocks to copy first, exempt from moderation: the regions the
        #: OS reads while booting (paper 3.3's prefetch optimization).
        self.prefetch_blocks: list[int] = list(prefetch_blocks or ())
        self._retriever = None
        self._writer = None
        #: Fires when the whole image is on the local disk.
        self.done = env.event()
        self._next_sequential_block = 0
        # Metrics.
        self.blocks_filled = 0
        self.bytes_written = 0
        self.writeback_bytes = 0
        self.suspensions = 0
        self.fetch_errors = 0
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.telemetry = deployment.telemetry
        registry = self.telemetry.registry
        self._m_blocks_filled = registry.gauge(
            "copy_blocks_filled",
            help="image blocks made local by the background copy")
        self._m_progress = registry.gauge(
            "copy_progress_ratio",
            help="fraction of the image present on the local disk")
        self._m_bytes_written = registry.counter(
            "copy_bytes_written_total",
            help="bytes the background copy wrote to the local disk")
        self._m_writeback_bytes = registry.counter(
            "copy_writeback_bytes_total",
            help="copy-on-read bytes persisted by the writer thread")
        self._m_suspensions = registry.counter(
            "copy_suspensions_total",
            help="moderation suspensions taken before VMM writes")
        self._m_fetch_errors = registry.counter(
            "copy_fetch_errors_total",
            help="block fetches abandoned after the AoE retry budget")
        self._m_throughput = registry.series(
            "copy_throughput_bytes_per_second", unit="B/s",
            help="background-copy write rate sampled per filled block")
        self._span = None

    # -- lifecycle -----------------------------------------------------------------

    def start(self):
        if self._retriever is not None:
            raise RuntimeError("copier already started")
        self.started_at = self.env.now
        self._span = self.telemetry.tracer.start(
            "background-copy",
            blocks=self.deployment.bitmap.block_count)
        self._retriever = self.env.process(self._retrieve_loop(),
                                           name="copier-retriever")
        self._writer = self.env.process(self._write_loop(),
                                        name="copier-writer")
        return self.done

    def stop(self) -> None:
        for process in (self._retriever, self._writer):
            if process is not None and process.is_alive:
                process.interrupt("stop")
        self._retriever = None
        self._writer = None
        self._end_span()

    def _end_span(self) -> None:
        if self._span is not None:
            self.telemetry.tracer.end(
                self._span, blocks_filled=self.blocks_filled,
                bytes_written=self.bytes_written,
                writeback_bytes=self.writeback_bytes)
            self._span = None

    @property
    def running(self) -> bool:
        return self._writer is not None and self._writer.is_alive

    # -- retriever thread ----------------------------------------------------------------

    #: Backoff after a failed fetch (server unreachable) before retrying.
    FETCH_RETRY_BACKOFF_SECONDS = 2.0

    def _retrieve_loop(self):
        from repro.aoe.client import AoeTimeoutError
        bitmap = self.deployment.bitmap
        try:
            while not bitmap.complete:
                block, is_prefetch = self._next_block()
                if block is None:
                    # Everything claimed or filled; let the writer drain.
                    yield self.env.timeout(self.IDLE_POLL_SECONDS)
                    continue
                # Prefetch blocks are individually chosen (boot working
                # set), so they are never coalesced with their
                # neighbors; moderated policies stay per-block (see the
                # class docstring).
                limit = self.coalesce_blocks \
                    if (not is_prefetch and self._unmoderated()) else 1
                claimed = bitmap.claim_run(block, limit)
                if claimed == 0:
                    continue
                start = block * bitmap.block_sectors
                count = min(claimed * bitmap.block_sectors,
                            bitmap.image_sectors - start)
                try:
                    with self.telemetry.profiler.track("copier",
                                                       "fetch-block"):
                        # Two call forms so the packet path stays
                        # byte-identical to pre-fluid builds (and keeps
                        # working against fetchers that predate the
                        # fluid kwarg).
                        if self.fluid_state is not None \
                                and self.fluid_state.active:
                            runs = yield from \
                                self.deployment.fetcher.read_blocks(
                                    start, count, bulk=True, fluid=True)
                        else:
                            runs = yield from \
                                self.deployment.fetcher.read_blocks(
                                    start, count, bulk=True)
                except AoeTimeoutError:
                    # Server unreachable: release the claims, back off,
                    # and keep trying — a degraded deployment stalls,
                    # it does not die (and resumes when the server is
                    # back).
                    bitmap.release_run(block, claimed)
                    self.fetch_errors += 1
                    self._m_fetch_errors.inc()
                    yield self.env.timeout(
                        self.FETCH_RETRY_BACKOFF_SECONDS)
                    continue
                yield self.fifo.put((block, claimed, runs, is_prefetch))
        except Interrupt:
            return

    def _next_block(self):
        """(block, is_prefetch): prefetch list first, then normal order."""
        bitmap = self.deployment.bitmap
        while self.prefetch_blocks:
            candidate = self.prefetch_blocks.pop(0)
            if bitmap.state(candidate).value == "empty":
                return candidate, True
        return self._pick_block(), False

    def _pick_block(self) -> int | None:
        """Low-to-high LBA order, but jump next to the guest's last
        access to minimize seeking (paper 3.3)."""
        bitmap = self.deployment.bitmap
        last_guest = self.deployment.last_guest_lba
        if last_guest is not None:
            preferred = bitmap.block_of(min(last_guest,
                                            bitmap.image_sectors - 1))
            self.deployment.last_guest_lba = None
        else:
            preferred = self._next_sequential_block
        block = bitmap.first_empty_from(preferred)
        if block is not None:
            self._next_sequential_block = block + 1 \
                if block + 1 < bitmap.block_count else 0
        return block

    # -- writer thread ---------------------------------------------------------------------

    def _write_loop(self):
        bitmap = self.deployment.bitmap
        try:
            while True:
                # Copy-on-read write-backs take priority: they make the
                # guest's own hot data local first.  They are moderated
                # like any other VMM write — a boot's worth of queued
                # write-backs must not starve the guest afterwards.
                writeback = self.deployment.pop_writeback()
                if writeback is not None:
                    yield from self._moderate()
                    yield from self._do_writeback(*writeback)
                    continue
                item = self.fifo.try_get()
                if item is not None:
                    block, count, runs, is_prefetch = item
                    if count > 1 and self._unmoderated():
                        # Unmoderated: land the whole fetched run as one
                        # disk transaction and one atomic range-commit.
                        yield from self._moderate()
                        yield from self._write_run(block, count, runs)
                        continue
                    # Moderated (or single-block): unbundle the run so
                    # pacing stays per VMM write, exactly as before
                    # coalescing existed.
                    for offset in range(count):
                        cursor = block + offset
                        if not is_prefetch:
                            # Prefetch blocks skip moderation: copying
                            # the boot working set early IS the point.
                            yield from self._moderate()
                        cursor_start, cursor_count = \
                            bitmap.block_range(cursor)
                        yield from self._write_block(
                            cursor, _clip(runs, cursor_start,
                                          cursor_count))
                    continue
                if bitmap.complete:
                    break
                yield self.env.timeout(self.IDLE_POLL_SECONDS)
        except Interrupt:
            return
        self.finished_at = self.env.now
        self._end_span()
        self.telemetry.causal.mark("deploy-complete")
        if not self.done.triggered:
            self.done.succeed(self.env.now)

    def _unmoderated(self) -> bool:
        """True when the policy never paces writes — the only regime
        where run-coalescing is allowed to restructure the pipeline."""
        policy = self.policy
        return (policy.write_interval == 0.0
                and policy.suspend_interval == 0.0)

    def _moderate(self):
        """Paper 3.3's pacing rule, applied before each VMM write: if the
        guest's I/O frequency exceeds the threshold, wait the (long)
        suspend interval; otherwise wait the (short) write interval.  A
        busy guest therefore still concedes one VMM write per suspend
        interval — the residual interference Figure 10 measures."""
        policy = self.policy
        if policy.is_suspended(self.deployment):
            self.suspensions += 1
            self._m_suspensions.inc()
            with self.telemetry.profiler.track("copier", "moderate-hold"):
                yield self.env.timeout(policy.suspend_interval)
        elif policy.write_interval > 0:
            with self.telemetry.profiler.track("copier", "moderate-pace"):
                yield self.env.timeout(policy.write_interval)

    def _write_block(self, block: int, runs: list):
        bitmap = self.deployment.bitmap
        if bitmap.state(block).value != "copying":
            # The guest overwrote the whole block while we fetched it;
            # its data is newer — drop ours.
            return
        start, count = bitmap.block_range(block)
        request = BlockRequest(BlockOp.WRITE, start, count, origin="vmm")
        request.buffer.runs = list(runs)

        def revalidate(pending: BlockRequest) -> list:
            # THE atomic check (paper 3.3), performed after the mediator
            # owns the device: exclude everything the guest has written
            # by now — no later guest write can reach the disk before
            # ours anymore (it would be queued and replayed after).
            if bitmap.state(block).value != "copying":
                return []
            clean: list = []
            for run_start, run_count in bitmap.writable_runs(block):
                clean.extend(_clip(runs, run_start, run_count))
            return clean

        with self.telemetry.profiler.track("copier", "write-block"):
            yield from self.mediator.vmm_request(request, revalidate)
        written = sum(end - begin for begin, end, _ in
                      request.buffer.runs)
        self.bytes_written += written * params.SECTOR_BYTES
        self._m_bytes_written.inc(written * params.SECTOR_BYTES)
        state = bitmap.state(block)
        if state is BlockState.FILLED:
            # Claim vanished mid-write (guest full-block write was queued
            # and recorded): the guest's replayed write will land after
            # ours, so the disk still converges to the newest data.
            # Committing here would be a protocol violation — the block
            # is the guest's now.
            return
        if state is not BlockState.COPYING:
            # EMPTY with our write completed means someone released our
            # claim out from under us: a genuine protocol bug, not the
            # benign race above.  The old code swallowed this under a
            # blanket ``except ValueError``.
            raise RuntimeError(
                f"copier lost its claim on block {block} "
                f"(state is {state.value!r} after write)")
        bitmap.commit_fill(block)
        self.deployment.note_block_filled(block)
        self.blocks_filled += 1
        self._m_blocks_filled.set(self.blocks_filled)
        self._m_progress.set(bitmap.filled_count
                             / bitmap.block_count)
        self._m_throughput.record(self.env.now, self.write_rate())
        if self.blocks_filled % 256 == 0 or bitmap.complete:
            self.deployment.tracer.log(
                "copy", "background copy progress",
                filled=bitmap.filled_count,
                total=bitmap.block_count)

    def _write_run(self, first_block: int, block_count: int, runs: list):
        """Land a coalesced run with one disk transaction.

        The same atomic rule as :meth:`_write_block` applies, but once
        per run instead of once per block: under device ownership the
        revalidation masks out, per block, everything the guest wrote
        or filled meanwhile.  Afterwards each maximal still-COPYING
        stretch commits through ``commit_fill_run`` — blocks the guest
        fully overwrote mid-write are the guest's and are skipped, just
        as the per-block path skips them.
        """
        bitmap = self.deployment.bitmap
        start = first_block * bitmap.block_sectors
        count = min(block_count * bitmap.block_sectors,
                    bitmap.image_sectors - start)
        request = BlockRequest(BlockOp.WRITE, start, count, origin="vmm")
        request.buffer.runs = list(runs)
        end_block = first_block + block_count

        def revalidate(pending: BlockRequest) -> list:
            clean: list = []
            for block in range(first_block, end_block):
                if bitmap.state(block).value != "copying":
                    continue
                for run_start, run_count in bitmap.writable_runs(block):
                    clean.extend(_clip(runs, run_start, run_count))
            return clean

        with self.telemetry.profiler.track("copier", "write-block"):
            yield from self.mediator.vmm_request(request, revalidate)
        written = sum(end - begin for begin, end, _ in
                      request.buffer.runs)
        self.bytes_written += written * params.SECTOR_BYTES
        self._m_bytes_written.inc(written * params.SECTOR_BYTES)
        cursor = first_block
        while cursor < end_block:
            state = bitmap.state(cursor)
            if state is BlockState.FILLED:
                # Guest full-block write recorded mid-transaction; its
                # replayed write lands after ours — the block is the
                # guest's now, committing it would be a violation.
                cursor += 1
                continue
            if state is not BlockState.COPYING:
                raise RuntimeError(
                    f"copier lost its claim on block {cursor} "
                    f"(state is {state.value!r} after write)")
            commit_start = cursor
            while (cursor < end_block
                   and bitmap.state(cursor) is BlockState.COPYING):
                cursor += 1
            bitmap.commit_fill_run(commit_start, cursor - commit_start)
            for block in range(commit_start, cursor):
                self.deployment.note_block_filled(block)
                self.blocks_filled += 1
                self._m_blocks_filled.set(self.blocks_filled)
                self._m_progress.set(bitmap.filled_count
                                     / bitmap.block_count)
                self._m_throughput.record(self.env.now, self.write_rate())
                if self.blocks_filled % 256 == 0 or bitmap.complete:
                    self.deployment.tracer.log(
                        "copy", "background copy progress",
                        filled=bitmap.filled_count,
                        total=bitmap.block_count)

    def _do_writeback(self, lba: int, sector_count: int, runs: list):
        """Persist data fetched by copy-on-read.

        The same atomic rule applies: sectors in FILLED blocks (already
        local, possibly guest-newest) and guest-dirty sectors are
        excluded at write time, under device ownership.
        """
        bitmap = self.deployment.bitmap
        span = self.telemetry.tracer.start("write-back", lba=lba,
                                           sectors=sector_count)
        request = BlockRequest(BlockOp.WRITE, lba, sector_count,
                               origin="vmm")
        request.buffer.runs = list(runs)

        def revalidate(pending: BlockRequest) -> list:
            clean: list = []
            cursor = lba
            end = lba + sector_count
            while cursor < end:
                block = bitmap.block_of(cursor)
                block_end = min((block + 1) * bitmap.block_sectors, end)
                if not bitmap.is_filled(block):
                    for start, stop, value in bitmap.dirty.runs_in(
                            cursor, block_end - cursor):
                        if value is None:
                            clean.extend(_clip(runs, start, stop - start))
                cursor = block_end
            return clean

        with self.telemetry.profiler.track("copier", "write-back"):
            yield from self.mediator.vmm_request(request, revalidate)
        written = sum(end - begin for begin, end, _ in
                      request.buffer.runs)
        self.writeback_bytes += written * params.SECTOR_BYTES
        self._m_writeback_bytes.inc(written * params.SECTOR_BYTES)
        self.telemetry.tracer.end(span)

    # -- reporting ------------------------------------------------------------------------------

    @property
    def elapsed(self) -> float | None:
        if self.started_at is None:
            return None
        end = self.finished_at if self.finished_at is not None \
            else self.env.now
        return end - self.started_at

    def write_rate(self) -> float:
        """Average VMM write throughput so far, bytes/second."""
        elapsed = self.elapsed
        if not elapsed:
            return 0.0
        return (self.bytes_written + self.writeback_bytes) / elapsed


def _clip(runs: list, start: int, count: int) -> list:
    end = start + count
    return [
        (max(run_start, start), min(run_end, end), token)
        for run_start, run_end, token in runs
        if run_start < end and run_end > start
    ]
