"""Shared deployment state: bitmap, server link, and guest-I/O telemetry.

One :class:`DeploymentContext` is shared by the device mediator (which
consults the bitmap on every interpreted guest command and fetches from
the server on redirects), the background copier (which fills empty
blocks), and the moderation policy (which reads the guest I/O frequency).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro import params
from repro.aoe.client import AoeInitiator
from repro.metrics.eventlog import NULL_LOG
from repro.obs.telemetry import NULL_TELEMETRY
from repro.sim import Environment
from repro.storage.blockdev import BlockOp
from repro.vmm.bitmap import BlockBitmap


@dataclass
class RedirectRecord:
    """Metrics entry for one redirected guest read."""

    time: float
    lba: int
    sector_count: int
    latency: float


class DeploymentContext:
    """Everything the deployment phase shares across components."""

    def __init__(self, env: Environment, bitmap: BlockBitmap,
                 initiator: AoeInitiator,
                 poll_interval: float = params.POLL_INTERVAL_SECONDS,
                 dummy_lba: int | None = None,
                 protected_lba: int | None = None,
                 protected_sectors: int = 0,
                 tracer=NULL_LOG,
                 telemetry=NULL_TELEMETRY):
        self.env = env
        self.bitmap = bitmap
        self.initiator = initiator
        #: Where image fetches actually go: the raw initiator by
        #: default, a :class:`repro.dist.FetchRouter` when the testbed
        #: runs a distribution fabric.  Must expose the initiator's
        #: ``read_blocks(lba, n, bulk=)`` generator signature.
        self.fetcher = initiator
        #: Callbacks invoked with each block index the copier commits
        #: (the peer chunk service hangs its gossip batching here).
        self.block_filled_listeners: list = []
        self.poll_interval = poll_interval
        #: Structured event tracer (a no-op unless tracing is enabled).
        self.tracer = tracer
        #: Metrics/span telemetry shared by mediator and copier.
        self.telemetry = telemetry
        self._m_fetch_latency = telemetry.registry.histogram(
            "redirect_fetch_seconds",
            help="server fetch latency for redirected guest reads")
        self._m_redirected_bytes = telemetry.registry.counter(
            "redirected_bytes_total",
            help="bytes served to the guest from the storage server")
        #: Sector the dummy-completion reads target (defaults to the
        #: sector right after the image, which is otherwise unused).
        self.dummy_lba = dummy_lba if dummy_lba is not None \
            else bitmap.image_sectors
        #: On-disk region holding the persisted bitmap, protected from
        #: the guest (paper 3.3).
        self.protected_lba = protected_lba
        self.protected_sectors = protected_sectors

        # Guest I/O telemetry for moderation: timestamps of recent
        # guest commands (sliding one-second window).
        self._recent_guest_io: deque = deque()
        self.guest_reads = 0
        self.guest_writes = 0
        #: LBA of the guest's most recent request (seek-affine copying);
        #: consumed (reset to None) by the copier when it picks a block.
        self.last_guest_lba: int | None = None

        # Redirect metrics.
        self.redirects: list[RedirectRecord] = []
        self.redirected_bytes = 0

        #: Copy-on-read write-back queue consumed by the copier's writer.
        self.writeback_queue: deque = deque()

    # -- guest telemetry -------------------------------------------------------

    def note_guest_io(self, op: BlockOp, lba: int | None = None) -> None:
        now = self.env.now
        self._recent_guest_io.append(now)
        if lba is not None:
            self.last_guest_lba = lba
        if op is BlockOp.READ:
            self.guest_reads += 1
        else:
            self.guest_writes += 1

    def guest_io_frequency(self, window: float = 1.0) -> float:
        """Guest requests/second over the trailing ``window`` seconds."""
        horizon = self.env.now - window
        while self._recent_guest_io and self._recent_guest_io[0] < horizon:
            self._recent_guest_io.popleft()
        return len(self._recent_guest_io) / window

    # -- server fetch ------------------------------------------------------------

    def note_block_filled(self, block: int) -> None:
        """The copier committed ``block``; fan out to listeners."""
        for listener in self.block_filled_listeners:
            listener(block)

    def fetch(self, lba: int, sector_count: int):
        """Generator: content runs for a range, from the fabric/server."""
        start = self.env.now
        runs = yield from self.fetcher.read_blocks(lba, sector_count)
        self.redirected_bytes += sector_count * params.SECTOR_BYTES
        self._m_redirected_bytes.inc(sector_count * params.SECTOR_BYTES)
        self._m_fetch_latency.observe(self.env.now - start)
        self.redirects.append(RedirectRecord(
            time=start, lba=lba, sector_count=sector_count,
            latency=self.env.now - start))
        return runs

    # -- copy-on-read write-back ----------------------------------------------------

    def enqueue_writeback(self, lba: int, sector_count: int,
                          runs: list) -> None:
        """Hand fetched data to the copier for persistence to local disk."""
        self.writeback_queue.append((lba, sector_count, runs))

    def pop_writeback(self, max_sectors: int = 2048):
        """Pop the oldest write-back, coalescing LBA-adjacent successors.

        Boot-time copy-on-read produces bursts of small sequential
        fetches; merging them into one disk write (up to ``max_sectors``)
        keeps the drain cheap.
        """
        queue = self.writeback_queue
        if not queue:
            return None
        lba, count, runs = queue.popleft()
        runs = list(runs)
        while queue and queue[0][0] == lba + count \
                and count + queue[0][1] <= max_sectors:
            _, next_count, next_runs = queue.popleft()
            runs.extend(next_runs)
            count += next_count
        return lba, count, runs

    # -- protected-region test -----------------------------------------------------------

    def overlaps_protected(self, lba: int, sector_count: int) -> bool:
        if self.protected_lba is None or self.protected_sectors == 0:
            return False
        return (lba < self.protected_lba + self.protected_sectors
                and self.protected_lba < lba + sector_count)
