"""De-virtualization (paper 3.4): the VMM removes itself.

Steps, in order:

1. Wait for a *consistent hardware state*: every mediator passthrough,
   no queued guest commands, no VMM I/O in flight.
2. Per-CPU nested-paging teardown.  Because the guest-physical map is
   identity for the VMM's whole lifetime, CPUs may flush their TLBs and
   disable nested paging at independent times — no IPI-based TLB
   shootdown is needed (the VMM cannot send IPIs anyway, as it never
   owned the interrupt controllers).
3. Remove all I/O intercepts (the bus routes everything directly).
4. VMXOFF on every CPU — or, in ``resident`` mode, keep a dormant VMM
   that only hides the management NIC's PCI config space (paper 4.3's
   alternative when the NIC must stay invisible).
"""

from __future__ import annotations

from repro.hw.cpu import VmxMode
from repro.sim import Environment


#: Per-CPU cost of INVEPT + disabling nested paging.
PER_CPU_TEARDOWN_SECONDS = 20e-6


class Devirtualizer:
    """Executes the de-virtualization phase for one machine."""

    def __init__(self, env: Environment, machine, mediators,
                 vmxoff_mode: str = "full",
                 management_nic_slot: int | None = None):
        if vmxoff_mode not in ("full", "module-assisted", "resident"):
            raise ValueError(f"unknown vmxoff mode {vmxoff_mode!r}")
        self.env = env
        self.machine = machine
        self.mediators = list(mediators)
        self.vmxoff_mode = vmxoff_mode
        self.management_nic_slot = management_nic_slot
        self.completed_at: float | None = None
        #: No-argument callables invoked the instant de-virtualization
        #: finishes — the point of no return, and hence the natural spot
        #: for end-of-mediation invariant checks (repro.analysis).
        self.completion_listeners: list = []

    def run(self, poll_interval: float = 1e-3):
        """Generator: perform de-virtualization; returns elapsed seconds."""
        start = self.env.now

        # 1. Consistent hardware state.
        while not all(mediator.quiescent for mediator in self.mediators):
            yield self.env.timeout(poll_interval)

        # 2. Asynchronous per-CPU nested paging teardown.
        for cpu in self.machine.cpus:
            cpu.npt.disable()
            yield self.env.timeout(PER_CPU_TEARDOWN_SECONDS)

        # 3. Remove intercepts: all I/O now flows directly.
        for mediator in self.mediators:
            mediator.uninstall()

        # 4. Terminate virtualization.
        if self.vmxoff_mode == "resident":
            # The VMM stays dormant to keep the management NIC hidden;
            # only CPUID still exits, which is negligible (paper 5.5.2).
            if self.management_nic_slot is not None:
                self.machine.pci.hide(self.management_nic_slot)
        else:
            # "full": VMXOFF issued from a trampoline without guest help
            # (future-work path in the paper); "module-assisted": with a
            # guest kernel module.  Mechanically identical from here.
            for cpu in self.machine.cpus:
                if cpu.mode is not VmxMode.OFF:
                    cpu.vmxoff()

        self.completed_at = self.env.now
        for listener in self.completion_listeners:
            listener()
        return self.env.now - start

    @property
    def residual_vmx(self) -> bool:
        """True if CPUs are still in VMX mode after de-virtualization."""
        return any(cpu.mode is not VmxMode.OFF for cpu in self.machine.cpus)


def reset_virtualization(machine, management_nic_slot: int | None = None):
    """Return a machine's virtualization state to cold bare metal.

    The reclaim path (repro.ctl) re-takes control of a node once its
    guest epoch ends.  A ``resident``-mode node still carries the
    dormant VMM: its CPUs sit in VMX with the management NIC hidden, so
    re-virtualization is just re-arming what never left — VMXOFF the
    CPUs so the next deployment's VMM can VMXON afresh, un-hide the
    NIC, and leave nested paging disabled.  A fully de-virtualized node
    is already in this state; the call is then a no-op.  Mirrors step 4
    of :class:`Devirtualizer`, but driven from outside a running VMM.
    """
    for cpu in machine.cpus:
        if cpu.mode is not VmxMode.OFF:
            cpu.vmxoff()
        cpu.npt.disable()
    if management_nic_slot is not None \
            and machine.pci.is_hidden(management_nic_slot):
        machine.pci.unhide(management_nic_slot)
