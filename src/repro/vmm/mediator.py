"""Device mediator base: the paper's core mechanism (Section 3.2).

A device mediator performs *device-interface-level I/O mediation*:

* **I/O interpretation** — watch the guest's register traffic and recover
  the context (command, status, data) without virtual devices;
* **I/O redirection** — block a guest read of not-yet-copied blocks,
  fetch the data from the server, place it in the guest's DMA buffer,
  then make the *real* device generate the completion interrupt by
  restarting the blocked command as a one-sector dummy read that hits
  the disk cache;
* **I/O multiplexing** — slip the VMM's own requests (background copy)
  into idle gaps, emulating idle status to the guest, queueing guest
  commands issued meanwhile, and detecting completion by polling with
  interrupts masked, so the guest never observes the VMM's I/O.

This module holds everything device-independent; the IDE and AHCI
subclasses add register-level mechanics only — which is why the paper's
mediators are so much smaller than device drivers.
"""

from __future__ import annotations

import enum

from repro.sim import Environment, Resource
from repro.storage.blockdev import BlockOp, BlockRequest, SectorBuffer
from repro.vmm.deploy import DeploymentContext


class MediatorMode(enum.Enum):
    PASSTHROUGH = "passthrough"
    REDIRECTING = "redirecting"
    VMM_OWNED = "vmm-owned"


#: Registry of mediator classes by controller kind.  Adding support for
#: a new host controller means registering a new mediator here — the VMM
#: core is never modified (the paper's 4.3 claim, kept honest by
#: construction).
MEDIATOR_CLASSES: dict[str, type] = {}


def register_mediator(kind: str):
    """Class decorator: register a mediator for a controller kind."""
    def decorator(cls):
        if kind in MEDIATOR_CLASSES:
            raise ValueError(f"mediator for {kind!r} already registered")
        MEDIATOR_CLASSES[kind] = cls
        return cls
    return decorator


def mediator_for(env, machine, deployment):
    """Build the right mediator for the machine's disk controller."""
    controller = machine.disk_controller
    if controller is None:
        raise RuntimeError("machine has no disk controller")
    cls = MEDIATOR_CLASSES.get(controller.kind)
    if cls is None:
        raise TypeError(
            f"no device mediator registered for controller "
            f"{controller.kind!r} (have: {sorted(MEDIATOR_CLASSES)})")
    return cls(env, machine, deployment)


class DeviceMediator:
    """Device-independent mediation engine.

    Subclasses implement the register-level primitives:

    * ``_install_intercepts()`` / ``_uninstall_intercepts()``
    * ``_guest_buffer()`` -> the DMA buffer of the blocked guest command
    * ``_issue_to_device(request, buffer)`` -> program + start (root mode)
    * ``_device_done()`` -> has the VMM's raw request completed?
    * ``_ack_device()`` -> clear device completion state (root mode)
    * ``_save_guest_registers()`` / ``_restore_guest_registers()``
    * ``_deliver_dummy_completion()`` -> restart the blocked guest command
      as a dummy-sector read so the device interrupts for real
    * ``_replay_guest_command(snapshot)`` -> reissue a queued command
    """

    def __init__(self, env: Environment, machine,
                 deployment: DeploymentContext):
        self.env = env
        self.machine = machine
        self.deployment = deployment
        self.mode = MediatorMode.PASSTHROUGH
        self.installed = False
        #: Serializes redirects and VMM requests against each other.
        self._device_lock = Resource(env, capacity=1)
        #: Guest commands absorbed while the VMM owned the device.
        self._queued_commands: list = []
        # Metrics (per paper terminology).
        self.interpreted_commands = 0
        self.redirected_reads = 0
        self.multiplexed_requests = 0
        self.queued_guest_commands = 0
        self.dummy_completions = 0
        # Labeled telemetry, shared through the deployment context.
        self.telemetry = deployment.telemetry
        registry = self.telemetry.registry
        controller = machine.disk_controller
        kind = controller.kind if controller is not None else "none"
        self.controller_kind = kind
        self._m_interpreted = registry.counter(
            "mediator_interpreted_commands_total", controller=kind,
            help="guest commands decoded from register traffic")
        self._m_redirected = registry.counter(
            "mediator_redirected_reads_total", controller=kind,
            help="guest reads served from the server (copy-on-read)")
        self._m_multiplexed = registry.counter(
            "mediator_multiplexed_requests_total", controller=kind,
            help="VMM requests slipped into device idle gaps")
        self._m_queued = registry.counter(
            "mediator_queued_commands_total", controller=kind,
            help="guest commands absorbed while the VMM owned the device")
        self._m_redirect_latency = registry.histogram(
            "mediated_read_latency_seconds", controller=kind,
            help="guest-visible latency of a redirected read")
        self._m_multiplex_latency = registry.histogram(
            "vmm_multiplexed_request_seconds", controller=kind,
            help="lock-to-release time of a VMM multiplexed request")

    # -- lifecycle ----------------------------------------------------------------

    def install(self) -> None:
        if self.installed:
            raise RuntimeError("mediator already installed")
        self._install_intercepts()
        self.installed = True

    def uninstall(self) -> None:
        """De-virtualization: remove every intercept.

        Refuses while mediation is mid-flight — the caller (the
        de-virtualizer) must wait for a consistent hardware state.
        """
        if not self.installed:
            return
        if self.mode is not MediatorMode.PASSTHROUGH \
                or self._queued_commands:
            raise RuntimeError(
                "cannot de-virtualize while mediation is in flight")
        self._uninstall_intercepts()
        self.installed = False

    @property
    def quiescent(self) -> bool:
        """True when nothing VMM-related is in flight on this device."""
        return (self.mode is MediatorMode.PASSTHROUGH
                and not self._queued_commands
                and self._device_lock.count == 0)

    # -- classification of interpreted guest commands ---------------------------------

    def classify(self, request: BlockRequest) -> str:
        """Decide what to do with an interpreted guest command.

        Returns one of ``"pass"``, ``"redirect"``, ``"queue"``,
        ``"protect"``.
        """
        self.interpreted_commands += 1
        self._m_interpreted.inc()
        self.deployment.note_guest_io(request.op, request.lba)
        is_protected = self.deployment.overlaps_protected(
            request.lba, request.sector_count)
        if request.op is BlockOp.WRITE and not is_protected:
            # Record the write NOW, before any queueing decision: a
            # write absorbed during VMM ownership lands on the disk only
            # at replay, but the bitmap must already protect it from the
            # background copy (the 3.3 race, queued-write variant).
            self.deployment.bitmap.record_guest_write(request.lba,
                                                      request.sector_count)
        if self.mode is MediatorMode.VMM_OWNED:
            return "queue"
        if is_protected:
            return "protect"
        if request.op is BlockOp.WRITE:
            return "pass"
        # Reads beyond the image are ordinary disk traffic.
        if request.lba >= self.deployment.bitmap.image_sectors:
            return "pass"
        if self.deployment.bitmap.sectors_local(request.lba,
                                                request.sector_count):
            return "pass"
        return "redirect"

    def queue_guest_command(self, snapshot) -> None:
        self._queued_commands.append(snapshot)
        self.queued_guest_commands += 1
        self._m_queued.inc()
        self.deployment.tracer.log(
            "queue", "guest command absorbed while VMM owns device")

    # -- I/O redirection (copy-on-read) ---------------------------------------------------

    def redirect(self, request: BlockRequest):
        """Generator: serve a blocked guest read from the server.

        The guest command has already been absorbed; the guest is waiting
        on what it believes is a busy device.
        """
        bitmap = self.deployment.bitmap
        started = self.env.now
        span = self.telemetry.tracer.start(
            "mediated-read", lba=request.lba,
            sectors=request.sector_count)
        with self._device_lock.request() as grant, \
                self.telemetry.profiler.track("mediator", "redirect"):
            yield grant
            self.mode = MediatorMode.REDIRECTING
            try:
                # 1. Retrieve the data from the server.
                server_runs = yield from self.deployment.fetch(
                    request.lba, request.sector_count)
                # 2. Overlay locally authoritative sectors (guest-dirty,
                #    or blocks already filled) by reading the local disk.
                local = list(bitmap.local_subranges(request.lba,
                                                    request.sector_count))
                merged = _RunComposer(request.lba, request.sector_count,
                                      server_runs)
                if local:
                    yield from self._read_local_overlays(local, merged)
                # 3. Copy into the guest's DMA buffer (the mediator acts
                #    as a virtual DMA controller).
                buffer = self._guest_buffer()
                buffer.lba = request.lba
                buffer.sector_count = request.sector_count
                buffer.runs = merged.runs()
                # 4. Persist the fetched data locally for future use.
                self.deployment.enqueue_writeback(
                    request.lba, request.sector_count, server_runs)
                # 5. Make the real device interrupt: dummy-sector restart.
                self.dummy_completions += 1
                self._deliver_dummy_completion()
                self.redirected_reads += 1
                self._m_redirected.inc()
                self.deployment.tracer.log(
                    "redirect", "served guest read from server",
                    lba=request.lba, sectors=request.sector_count)
            finally:
                self.mode = MediatorMode.PASSTHROUGH
                self.telemetry.tracer.end(span)
                self._m_redirect_latency.observe(self.env.now - started)
        # Replay anything the guest issued while we were redirecting
        # (possible if the guest OS overlaps I/O across CPUs).
        yield from self._drain_queue()

    def _read_local_overlays(self, local, composer):
        """Fetch locally authoritative subranges with masked interrupts.

        Uses the same take-over discipline as :meth:`vmm_request`: save
        the guest-visible register state, issue raw, acknowledge the
        device after every read, and restore on the way out — otherwise
        the device is left pointing at VMM structures with interrupts
        silenced and the guest's dummy completion never fires.
        """
        interrupts = self.machine.interrupts
        line = self.irq_line
        # A completion the *guest* is owed may already be pending (raised
        # before its ISR got to wait).  Only drop what our own request
        # adds.
        guest_owed = interrupts.is_pending(line)
        interrupts.mask(line)
        self._save_guest_registers()
        try:
            for start, count in local:
                overlay = BlockRequest(BlockOp.READ, start, count,
                                       origin="vmm")
                buffer = SectorBuffer(start, count)
                yield from self._issue_raw_and_poll(overlay, buffer)
                self._ack_device()
                composer.overlay(buffer.runs)
        finally:
            self._restore_guest_registers()
            if not guest_owed:
                interrupts.clear_pending(line)
            interrupts.unmask(line)

    # -- I/O multiplexing (VMM-issued requests) ---------------------------------------------

    def vmm_request(self, request: BlockRequest, revalidate=None):
        """Generator: execute the VMM's own disk request transparently.

        ``revalidate``, if given, is called with the request *after* the
        VMM owns the device — the instant at which no guest command can
        slip in underneath — and must return the content runs that are
        still safe to write (empty list aborts the write).  This is the
        paper 3.3 "atomically checks the status" step: any check done
        earlier can be invalidated by a guest write that reaches the
        device while the VMM is still waiting for it to go idle.
        """
        request.origin = "vmm"
        started = self.env.now
        span = self.telemetry.tracer.start(
            "vmm-request", op=request.op.value, lba=request.lba,
            sectors=request.sector_count)
        with self._device_lock.request() as grant, \
                self.telemetry.profiler.track("mediator", "vmm-request"):
            yield grant
            # 1. Find proper timing: wait until the device is idle.
            yield from self._wait_device_idle()
            self.mode = MediatorMode.VMM_OWNED
            interrupts = self.machine.interrupts
            # Preserve any completion the guest is still owed: only the
            # interrupt *our* request generates may be dropped.
            guest_owed = interrupts.is_pending(self.irq_line)
            interrupts.mask(self.irq_line)
            self._save_guest_registers()
            try:
                safe = True
                if revalidate is not None:
                    request.buffer.runs = revalidate(request)
                    safe = bool(request.buffer.runs)
                if safe:
                    # 2. Issue and poll with interrupts suppressed.
                    yield from self._issue_raw_and_poll(request,
                                                        request.buffer)
                    self.multiplexed_requests += 1
                    self._m_multiplexed.inc()
            finally:
                # 3. Hide all evidence: ack the device, restore the
                #    guest-visible register state, drop the suppressed
                #    interrupt, re-enable delivery.
                self._ack_device()
                self._restore_guest_registers()
                if not guest_owed:
                    interrupts.clear_pending(self.irq_line)
                interrupts.unmask(self.irq_line)
                self.mode = MediatorMode.PASSTHROUGH
                self.telemetry.tracer.end(span)
                self._m_multiplex_latency.observe(self.env.now - started)
        # 4. Send queued guest requests to the device.
        yield from self._drain_queue()
        return request

    def _issue_raw_and_poll(self, request: BlockRequest,
                            buffer: SectorBuffer):
        # The controller stamps decoded requests with request_origin;
        # while the VMM owns the device, commands are the VMM's.  The
        # device lock guarantees no guest command executes inside this
        # window (queued ones replay after restore, as the guest).
        controller = self.machine.disk_controller
        controller.request_origin = "vmm"
        try:
            self._issue_to_device(request, buffer)
            poll = self.deployment.poll_interval
            while not self._device_done():
                yield self.env.timeout(poll)
        finally:
            controller.request_origin = "guest"

    def _wait_device_idle(self):
        poll = self.deployment.poll_interval
        while self._device_busy():
            yield self.env.timeout(poll)

    def _drain_queue(self):
        while self._queued_commands:
            snapshot = self._queued_commands.pop(0)
            self.deployment.tracer.log(
                "replay", "reissuing queued guest command")
            yield from self._replay_guest_command(snapshot)

    # -- protected-region handling -----------------------------------------------------------

    def protect_access(self, request: BlockRequest):
        """Generator: guest touched the bitmap save region.

        Paper 3.3: converted to a dummy-sector read; writes are dropped,
        reads return dummy data.
        """
        if request.op is BlockOp.READ:
            buffer = self._guest_buffer()
            buffer.lba = request.lba
            buffer.sector_count = request.sector_count
            buffer.fill_constant(None)
        self.dummy_completions += 1
        self._deliver_dummy_completion()
        yield self.env.timeout(0)

    # -- subclass responsibilities ------------------------------------------------------------

    irq_line: int = 0

    def _install_intercepts(self) -> None:
        raise NotImplementedError

    def _uninstall_intercepts(self) -> None:
        raise NotImplementedError

    def _guest_buffer(self) -> SectorBuffer:
        raise NotImplementedError

    def _issue_to_device(self, request: BlockRequest,
                         buffer: SectorBuffer) -> None:
        raise NotImplementedError

    def _device_done(self) -> bool:
        raise NotImplementedError

    def _device_busy(self) -> bool:
        raise NotImplementedError

    def _ack_device(self) -> None:
        raise NotImplementedError

    def _save_guest_registers(self) -> None:
        raise NotImplementedError

    def _restore_guest_registers(self) -> None:
        raise NotImplementedError

    def _deliver_dummy_completion(self) -> None:
        raise NotImplementedError

    def _replay_guest_command(self, snapshot):
        raise NotImplementedError


class _RunComposer:
    """Merges server-fetched runs with locally authoritative overlays."""

    def __init__(self, lba: int, sector_count: int, base_runs: list):
        from repro.util.intervalmap import IntervalMap
        self.lba = lba
        self.sector_count = sector_count
        self._map = IntervalMap()
        for start, end, token in base_runs:
            if token is not None:
                self._map.set_range(start, end - start, token)

    def overlay(self, runs: list) -> None:
        for start, end, token in runs:
            if token is not None:
                self._map.set_range(start, end - start, token)
            else:
                self._map.clear_range(start, end - start)

    def runs(self) -> list:
        return list(self._map.runs_in(self.lba, self.sector_count))
