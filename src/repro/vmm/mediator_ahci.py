"""AHCI device mediator (the paper's 2,285-LOC mediator, reproduced).

Interpretation works by following the guest's own in-memory structures:
a ``PxCI`` write names a command slot; the mediator walks command list ->
command header -> command table -> FIS/PRDT exactly as the HBA would.
Redirection rewrites the guest's command table in place to the dummy
sector (the paper's "manipulate the command information") before letting
the HBA run it; multiplexing swaps in the VMM's own command list and
disables ``PxIE`` so the guest never sees the VMM's completions.
"""

from __future__ import annotations

from repro.storage import ahci
from repro.storage.blockdev import BlockOp, BlockRequest, SectorBuffer
from repro.storage.ide import CMD_READ_DMA_EXT, CMD_WRITE_DMA_EXT
from repro.vmm.mediator import (DeviceMediator, MediatorMode,
                                register_mediator)


@register_mediator("ahci")
class AhciMediator(DeviceMediator):
    """Mediator for the AHCI controller."""

    def __init__(self, env, machine, deployment):
        super().__init__(env, machine, deployment)
        self.controller = machine.disk_controller
        if self.controller.kind != "ahci":
            raise TypeError("AhciMediator requires an AHCI controller")
        self.irq_line = self.controller.irq_line
        #: Every trapped ABAR access — the raw interpretation workload.
        self._m_intercepts = self.telemetry.registry.counter(
            "mediator_io_intercepts_total", controller="ahci")
        # Shadow port registers (interpretation).
        self.shadow_pxclb = 0
        self.shadow_pxie = 0
        self.shadow_pxcmd = 0
        self.shadow_pxci = 0
        # Redirect bookkeeping.
        self._blocked_slot: int | None = None
        self._blocked_request: BlockRequest | None = None
        # Device-produced state captured at VMM takeover (an unacked
        # PxIS completion the guest is still owed).
        self._saved_pxis = 0
        # The VMM's private command list + dummy transfer buffer.
        self._dummy_buffer = SectorBuffer(0, 65536)
        self._dummy_address = machine.hostmem.allocate(self._dummy_buffer)
        self._vmm_command_list: list = [None] * ahci.COMMAND_SLOTS
        self._vmm_clb = machine.hostmem.allocate(self._vmm_command_list)
        self._vmm_table_address: int | None = None
        self._vmm_buffer_address: int | None = None

    # -- intercept installation ---------------------------------------------------

    def _install_intercepts(self) -> None:
        # Bind once: uninstall removes by identity.
        self._installed_hook = self._hook
        self.machine.bus.intercept_mmio(self.controller.abar,
                                        ahci.ABAR_SIZE,
                                        self._installed_hook)
        # MMIO traps are backed by nested-paging unmapping: register the
        # range on every CPU's NPT.
        for cpu in self.machine.cpus:
            cpu.npt.add_trap_range(self.controller.abar, ahci.ABAR_SIZE,
                                   "ahci-abar")

    def _uninstall_intercepts(self) -> None:
        self.machine.bus.uninstall_mmio_intercepts(self._installed_hook)

    # -- the intercept hook -----------------------------------------------------------

    def _hook(self, access):
        self._m_intercepts.inc()
        offset = access.address - self.controller.abar
        if access.is_write:
            yield from self._hook_write(access, offset)
        else:
            yield from self._hook_read(access, offset)

    def _hook_write(self, access, offset: int):
        value = access.value
        owned = self.mode is MediatorMode.VMM_OWNED

        if offset == ahci.REG_PXCLB:
            self.shadow_pxclb = value
            if owned:
                access.absorb = True
        elif offset == ahci.REG_PXIE:
            self.shadow_pxie = value
            if owned:
                access.absorb = True
        elif offset == ahci.REG_PXCMD:
            self.shadow_pxcmd = value
            if owned:
                access.absorb = True
        elif offset == ahci.REG_PXIS:
            if owned:
                # Write-1-to-clear against the saved view so restore
                # does not resurrect an acked completion.
                access.absorb = True
                self._saved_pxis &= ~value
        elif offset == ahci.REG_PXCI:
            yield from self._on_command_issue(access, value)
            return
        yield self.env.timeout(0)

    def _hook_read(self, access, offset: int):
        if self.mode is MediatorMode.VMM_OWNED:
            # Emulate the guest's view: its commands appear in flight,
            # the VMM's activity is invisible.
            if offset == ahci.REG_PXCI:
                access.reply = self.shadow_pxci
            elif offset == ahci.REG_PXIS:
                access.reply = self._saved_pxis
            elif offset == ahci.REG_PXTFD:
                access.reply = 0x50  # DRDY, not busy
            elif offset == ahci.REG_PXCLB:
                access.reply = self.shadow_pxclb
            elif offset == ahci.REG_PXIE:
                access.reply = self.shadow_pxie
        elif self._blocked_slot is not None:
            if offset == ahci.REG_PXCI:
                real = self.controller.pxci
                access.reply = real | (1 << self._blocked_slot)
            elif offset == ahci.REG_PXTFD:
                access.reply = 0x50 | ahci.TFD_BSY
        yield self.env.timeout(0)

    # -- guest command handling -------------------------------------------------------------

    def _on_command_issue(self, access, value: int):
        """A PxCI write: interpret each newly issued slot.

        The mediator takes charge of the whole issue: slots needing no
        help are forwarded verbatim, the rest are served one by one —
        and while the VMM owns the device everything is queued (after
        classification, so writes are recorded in the bitmap even while
        queued).
        """
        access.absorb = True
        owned = self.mode is MediatorMode.VMM_OWNED
        already = self.shadow_pxci if owned else self.controller.pxci
        new_slots = value & ~already
        pass_mask = 0
        queue_mask = 0
        special: list[tuple[int, BlockRequest, str]] = []
        for slot in range(ahci.COMMAND_SLOTS):
            if not new_slots & (1 << slot):
                continue
            request = self._decode_slot(slot)
            if request is None:
                # Non-data command: irrelevant to deployment, but it
                # still cannot reach an owned device.
                if owned:
                    queue_mask |= (1 << slot)
                else:
                    pass_mask |= (1 << slot)
                continue
            action = self.classify(request)
            if action == "pass":
                pass_mask |= (1 << slot)
            elif action == "queue":
                queue_mask |= (1 << slot)
            else:
                special.append((slot, request, action))
        if queue_mask:
            self.shadow_pxci |= queue_mask
            self.queue_guest_command(queue_mask)
        if pass_mask:
            self.controller.mmio_write(
                self.controller.abar + ahci.REG_PXCI, pass_mask)
        for slot, request, action in special:
            yield from self._claim_blocked(slot, request)
            try:
                if action == "redirect":
                    yield from self.redirect(request)
                else:
                    yield from self.protect_access(request)
            finally:
                self._blocked_slot = None
                self._blocked_request = None
        yield self.env.timeout(0)

    def _claim_blocked(self, slot: int, request: BlockRequest):
        """Serialize redirect contexts: hooks are re-entrant across guest
        processes (AHCI allows concurrent slots), but the engine serves
        one blocked command at a time."""
        while self._blocked_slot is not None:
            yield self.env.timeout(self.deployment.poll_interval)
        self._blocked_slot = slot
        self._blocked_request = request

    def _decode_slot(self, slot: int) -> BlockRequest | None:
        """I/O interpretation: walk the guest's command structures."""
        command_list = self.machine.hostmem.lookup(self.shadow_pxclb)
        header = command_list[slot]
        if header is None:
            return None
        table = self.machine.hostmem.lookup(header.ctba)
        return ahci.decode_fis(table.cfis)

    def _slot_table(self, slot: int) -> ahci.CommandTable:
        command_list = self.machine.hostmem.lookup(self.shadow_pxclb)
        return self.machine.hostmem.lookup(command_list[slot].ctba)

    # -- primitives used by the base engine ------------------------------------------------------

    def _guest_buffer(self) -> SectorBuffer:
        table = self._slot_table(self._blocked_slot)
        return self.machine.hostmem.lookup(table.prdt[0])

    def _issue_to_device(self, request: BlockRequest,
                         buffer: SectorBuffer) -> None:
        controller = self.controller
        if self._vmm_buffer_address is not None:
            self._free_vmm_structures()
        self._vmm_buffer_address = self.machine.hostmem.allocate(buffer)
        command = CMD_READ_DMA_EXT if request.op is BlockOp.READ \
            else CMD_WRITE_DMA_EXT
        table = ahci.CommandTable(
            ahci.CommandFis(command, request.lba, request.sector_count),
            prdt=[self._vmm_buffer_address])
        self._vmm_table_address = self.machine.hostmem.allocate(table)
        self._vmm_command_list[0] = ahci.CommandHeader(
            self._vmm_table_address)
        # Swap in the VMM's command list, silence the port's interrupts,
        # make sure the DMA engine runs, and fire slot 0.
        controller.pxclb = self._vmm_clb
        controller.pxie = 0
        controller.pxcmd |= ahci.PXCMD_ST
        controller.mmio_write(controller.abar + ahci.REG_PXCI, 1)

    def _device_done(self) -> bool:
        return not self.controller.pxci & 1 and not self.controller.busy

    def _device_busy(self) -> bool:
        return self.controller.busy or bool(self.controller.pxci)

    def _ack_device(self) -> None:
        # Clear the completion the VMM's request left behind.
        self.controller.mmio_write(
            self.controller.abar + ahci.REG_PXIS, ahci.PXIS_DHRS)
        self._free_vmm_structures()

    def _free_vmm_structures(self) -> None:
        if self._vmm_table_address is not None:
            self.machine.hostmem.free(self._vmm_table_address)
            self._vmm_table_address = None
        if self._vmm_buffer_address is not None:
            self.machine.hostmem.free(self._vmm_buffer_address)
            self._vmm_buffer_address = None
        self._vmm_command_list[0] = None

    def _save_guest_registers(self) -> None:
        # The shadow registers track every guest write; capture the
        # device-produced completion state the guest has not consumed.
        self._saved_pxis = self.controller.pxis

    def _restore_guest_registers(self) -> None:
        controller = self.controller
        controller.pxclb = self.shadow_pxclb
        controller.pxie = self.shadow_pxie
        controller.pxcmd = self.shadow_pxcmd
        controller.pxis = self._saved_pxis

    def _deliver_dummy_completion(self) -> None:
        """Rewrite the blocked slot's command table to a 1-sector dummy
        read, then let the HBA run it so the completion path (PxIS, CI
        clear, interrupt) is entirely genuine."""
        slot = self._blocked_slot
        table = self._slot_table(slot)
        self._dummy_buffer.lba = self.deployment.dummy_lba
        self._dummy_buffer.sector_count = 1
        table.cfis = ahci.CommandFis(CMD_READ_DMA_EXT,
                                     self.deployment.dummy_lba, 1)
        table.prdt = [self._dummy_address]
        controller = self.controller
        controller.pxcmd |= ahci.PXCMD_ST
        controller.mmio_write(controller.abar + ahci.REG_PXCI, 1 << slot)

    def _replay_guest_command(self, ci_value: int):
        """Re-classify and reissue slots queued during VMM ownership."""
        self.shadow_pxci &= ~ci_value
        bitmap = self.deployment.bitmap
        forward_mask = 0
        for slot in range(ahci.COMMAND_SLOTS):
            if not ci_value & (1 << slot):
                continue
            request = self._decode_slot(slot)
            needs_protect = request is not None \
                and self.deployment.overlaps_protected(
                    request.lba, request.sector_count)
            needs_redirect = (
                request is not None
                and request.op is BlockOp.READ
                and request.lba < bitmap.image_sectors
                and not bitmap.sectors_local(request.lba,
                                             request.sector_count))
            if needs_protect or needs_redirect:
                yield from self._claim_blocked(slot, request)
                try:
                    if needs_redirect:
                        yield from self.redirect(request)
                    else:
                        yield from self.protect_access(request)
                finally:
                    self._blocked_slot = None
                    self._blocked_request = None
            else:
                forward_mask |= (1 << slot)
        if forward_mask:
            yield from self._wait_device_idle()
            self.controller.mmio_write(
                self.controller.abar + ahci.REG_PXCI, forward_mask)
