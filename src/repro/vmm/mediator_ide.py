"""IDE device mediator (the paper's 1,472-LOC mediator, reproduced).

Intercepts the taskfile and bus-master ports, keeps a shadow copy of
everything the guest programs (interpretation), and implements the
redirect / multiplex primitives on top of the raw controller registers.
"""

from __future__ import annotations

from repro.storage import ide
from repro.storage.blockdev import BlockOp, BlockRequest, SectorBuffer
from repro.vmm.mediator import (DeviceMediator, MediatorMode,
                                register_mediator)


class _QueuedIdeCommand:
    """Snapshot of a guest command absorbed while the VMM owned the bus."""

    def __init__(self, taskfile: ide.Taskfile, command: int,
                 bm_prdt: int, bm_direction: int):
        self.taskfile = taskfile
        self.command = command
        self.bm_prdt = bm_prdt
        self.bm_direction = bm_direction


def _copy_taskfile(source: ide.Taskfile) -> ide.Taskfile:
    clone = ide.Taskfile()
    clone.current = dict(source.current)
    clone.hob = dict(source.hob)
    return clone


@register_mediator("ide")
class IdeMediator(DeviceMediator):
    """Mediator for the IDE controller."""

    irq_line = ide.IDE_IRQ

    def __init__(self, env, machine, deployment):
        super().__init__(env, machine, deployment)
        self.controller = machine.disk_controller
        if self.controller.kind != "ide":
            raise TypeError("IdeMediator requires an IDE controller")
        # Shadow register state (interpretation).
        self.shadow_taskfile = ide.Taskfile()
        self.shadow_bm_prdt = 0
        self.shadow_bm_command = 0
        # Redirect bookkeeping: command absorbed, waiting for BM start.
        self._blocked: BlockRequest | None = None
        self._blocked_kind: str | None = None
        # Device status captured at VMM takeover: the guest may still be
        # owed a completion (unacked IRQ bit); its ISR must see it.
        self._saved_status = ide.STATUS_DRDY
        self._saved_bm_status = 0
        #: Every trapped PIO access, including taskfile programming —
        #: the raw interpretation workload (paper Table 1's "I/O
        #: interpretation" cost driver).
        self._m_intercepts = self.telemetry.registry.counter(
            "mediator_io_intercepts_total", controller="ide")
        # A dummy buffer for restarted reads (1 sector is enough, but the
        # VMM keeps a block-sized one for local overlay reads too).
        self._dummy_buffer = SectorBuffer(0, 65536)
        self._dummy_address = machine.hostmem.allocate(self._dummy_buffer)
        self._vmm_buffer_address: int | None = None

    # -- intercept installation -------------------------------------------------------

    def _install_intercepts(self) -> None:
        self.machine.bus.intercept_pio(ide.ALL_PORTS, self._hook)

    def _uninstall_intercepts(self) -> None:
        self.machine.bus.uninstall_pio_intercepts(ide.ALL_PORTS)

    # -- the intercept hook (runs on every guest access, in root mode) ------------------

    def _hook(self, access):
        self._m_intercepts.inc()
        if access.is_write:
            yield from self._hook_write(access)
        else:
            yield from self._hook_read(access)

    def _hook_write(self, access):
        port, value = access.address, access.value
        owned = self.mode is MediatorMode.VMM_OWNED

        if port in ide.TASKFILE_PORTS and port != ide.REG_COMMAND:
            self.shadow_taskfile.write(port, value)
            if owned:
                access.absorb = True
            yield self.env.timeout(0)
            return

        if port == ide.REG_COMMAND:
            yield from self._on_guest_command(access, value)
            return

        if port == ide.BM_PRDT:
            self.shadow_bm_prdt = value
            if owned:
                access.absorb = True
            yield self.env.timeout(0)
            return

        if port == ide.BM_COMMAND:
            previous = self.shadow_bm_command
            self.shadow_bm_command = value
            if owned:
                access.absorb = True
            elif value & ide.BM_CMD_START \
                    and not previous & ide.BM_CMD_START \
                    and self._blocked is not None:
                # The start of a blocked command: absorb and act.
                access.absorb = True
                yield from self._launch_blocked()
            yield self.env.timeout(0)
            return

        if port == ide.BM_STATUS:
            if owned:
                # Apply the guest's write-1-to-clear ack to the saved
                # view so restore does not resurrect an acked interrupt.
                access.absorb = True
                if value & ide.BM_STATUS_IRQ:
                    self._saved_bm_status &= ~ide.BM_STATUS_IRQ
            yield self.env.timeout(0)
            return

        yield self.env.timeout(0)

    def _hook_read(self, access):
        port = access.address
        if self.mode is MediatorMode.VMM_OWNED:
            # Emulate the state the guest last saw (idle, but with any
            # completion it is still owed): the VMM's request in flight
            # must be invisible.
            if port == ide.REG_COMMAND:
                access.reply = self._saved_status & ~ide.STATUS_BSY
            elif port == ide.BM_STATUS:
                access.reply = self._saved_bm_status \
                    & ~ide.BM_STATUS_ACTIVE
            elif port == ide.BM_COMMAND:
                access.reply = self.shadow_bm_command
            elif port == ide.BM_PRDT:
                access.reply = self.shadow_bm_prdt
        elif (self.mode is MediatorMode.REDIRECTING
                or self._blocked is not None):
            # Emulate a busy device while the redirect is being served.
            if port == ide.REG_COMMAND:
                access.reply = ide.STATUS_BSY | ide.STATUS_DRDY
            elif port == ide.BM_STATUS:
                access.reply = ide.BM_STATUS_ACTIVE
        yield self.env.timeout(0)

    # -- guest command handling -----------------------------------------------------------

    def _on_guest_command(self, access, command: int):
        if command not in ide.DMA_COMMANDS:
            # Non-data command (IDENTIFY, FLUSH...): irrelevant to
            # deployment, but must still be queued while the VMM owns
            # the device.
            if self.mode is MediatorMode.VMM_OWNED:
                access.absorb = True
                self.queue_guest_command(_QueuedIdeCommand(
                    _copy_taskfile(self.shadow_taskfile), command,
                    self.shadow_bm_prdt, self.shadow_bm_command))
            yield self.env.timeout(0)
            return

        request = ide.decode_request(self.shadow_taskfile, command)
        action = self.classify(request)

        if action == "pass":
            yield self.env.timeout(0)
            return

        access.absorb = True
        if action == "queue":
            self.queue_guest_command(_QueuedIdeCommand(
                _copy_taskfile(self.shadow_taskfile), command,
                self.shadow_bm_prdt, self.shadow_bm_command))
        else:
            # redirect / protect: block the command until BM start, then
            # serve it ourselves.  (IDE is single-outstanding, but a
            # replayed redirect can overlap a fresh hook: serialize.)
            while self._blocked is not None:
                yield self.env.timeout(self.deployment.poll_interval)
            self._blocked = request
            self._blocked_kind = action
        yield self.env.timeout(0)

    def _launch_blocked(self):
        request = self._blocked
        kind = self._blocked_kind
        # `_blocked` stays set until the handler finishes so that status
        # reads emulate a busy device for the whole service time.
        handler = self.redirect if kind == "redirect" else \
            self.protect_access
        try:
            yield from handler(request)
        finally:
            self._blocked = None
            self._blocked_kind = None

    # -- primitives used by the base engine -------------------------------------------------

    def _guest_buffer(self) -> SectorBuffer:
        return self.machine.hostmem.lookup(self.shadow_bm_prdt)

    def _issue_to_device(self, request: BlockRequest,
                         buffer: SectorBuffer) -> None:
        controller = self.controller
        if self._vmm_buffer_address is not None:
            self.machine.hostmem.free(self._vmm_buffer_address)
        self._vmm_buffer_address = self.machine.hostmem.allocate(buffer)
        taskfile = ide.Taskfile()
        taskfile.load(request.lba, request.sector_count, ext=True)
        for port in (ide.REG_SECTOR_COUNT, ide.REG_LBA_LOW,
                     ide.REG_LBA_MID, ide.REG_LBA_HIGH):
            controller.pio_write(port, taskfile.hob[port])
            controller.pio_write(port, taskfile.current[port])
        controller.pio_write(ide.REG_DEVICE,
                             taskfile.current[ide.REG_DEVICE])
        controller.pio_write(ide.BM_PRDT, self._vmm_buffer_address)
        direction = ide.BM_CMD_WRITE_TO_MEMORY \
            if request.op is BlockOp.READ else 0
        controller.pio_write(ide.BM_COMMAND, direction)
        command = ide.CMD_READ_DMA_EXT if request.op is BlockOp.READ \
            else ide.CMD_WRITE_DMA_EXT
        controller.pio_write(ide.REG_COMMAND, command)
        controller.pio_write(ide.BM_COMMAND, direction | ide.BM_CMD_START)

    def _device_done(self) -> bool:
        return (not self.controller.busy
                and bool(self.controller.bm_status & ide.BM_STATUS_IRQ))

    def _device_busy(self) -> bool:
        return self.controller.busy

    def _ack_device(self) -> None:
        self.controller.pio_write(ide.BM_STATUS, ide.BM_STATUS_IRQ)
        self.controller.pio_write(ide.BM_COMMAND, 0)
        if self._vmm_buffer_address is not None:
            self.machine.hostmem.free(self._vmm_buffer_address)
            self._vmm_buffer_address = None

    def _save_guest_registers(self) -> None:
        # The shadow tracks every guest write already; what must be
        # captured here is *device-produced* state the guest has not yet
        # consumed (an unacked completion).
        self._saved_status = self.controller.status
        self._saved_bm_status = self.controller.bm_status

    def _restore_guest_registers(self) -> None:
        controller = self.controller
        for port, value in self.shadow_taskfile.current.items():
            if port != ide.REG_COMMAND:
                controller.taskfile.write(port, value)
        controller.taskfile.hob = dict(self.shadow_taskfile.hob)
        controller.bm_prdt = self.shadow_bm_prdt
        controller.bm_command = self.shadow_bm_command & ~ide.BM_CMD_START
        controller.bm_status = self._saved_bm_status \
            & ~ide.BM_STATUS_ACTIVE

    def _deliver_dummy_completion(self) -> None:
        """Restart the blocked read as a 1-sector dummy that hits the
        drive cache, so the device itself raises the completion IRQ."""
        controller = self.controller
        self._dummy_buffer.lba = self.deployment.dummy_lba
        self._dummy_buffer.sector_count = 1
        taskfile = ide.Taskfile()
        taskfile.load(self.deployment.dummy_lba, 1, ext=False)
        for port, value in taskfile.current.items():
            if port != ide.REG_COMMAND:
                controller.taskfile.write(port, value)
        controller.pio_write(ide.BM_PRDT, self._dummy_address)
        controller.pio_write(ide.BM_COMMAND, ide.BM_CMD_WRITE_TO_MEMORY)
        controller.pio_write(ide.REG_COMMAND, ide.CMD_READ_DMA)
        controller.pio_write(ide.BM_COMMAND,
                             ide.BM_CMD_WRITE_TO_MEMORY | ide.BM_CMD_START)

    def _replay_guest_command(self, snapshot: _QueuedIdeCommand):
        # Re-classify: a read queued during VMM ownership may target
        # still-empty blocks and must be redirected, not forwarded.
        if snapshot.command in ide.DMA_COMMANDS:
            request = ide.decode_request(snapshot.taskfile,
                                         snapshot.command)
            self.shadow_bm_prdt = snapshot.bm_prdt
            bitmap = self.deployment.bitmap
            needs_redirect = (
                request.op is BlockOp.READ
                and request.lba < bitmap.image_sectors
                and not bitmap.sectors_local(request.lba,
                                             request.sector_count))
            if self.deployment.overlaps_protected(request.lba,
                                                  request.sector_count):
                yield from self.protect_access(request)
                return
            if needs_redirect:
                yield from self.redirect(request)
                return
        yield from self._wait_device_idle()
        controller = self.controller
        for port, value in snapshot.taskfile.current.items():
            if port != ide.REG_COMMAND:
                controller.taskfile.write(port, value)
        controller.taskfile.hob = dict(snapshot.taskfile.hob)
        controller.pio_write(ide.BM_PRDT, snapshot.bm_prdt)
        direction = snapshot.bm_direction & ~ide.BM_CMD_START
        controller.pio_write(ide.BM_COMMAND, direction)
        controller.pio_write(ide.REG_COMMAND, snapshot.command)
        if snapshot.command in ide.DMA_COMMANDS:
            controller.pio_write(ide.BM_COMMAND,
                                 direction | ide.BM_CMD_START)
