"""MegaRAID device mediator.

The paper argues (Sections 1 and 6) that storage host controllers share
enough interface structure that device mediators generalize: "MegaRAID
SAS and Revo Drive PCIe SSD devices have similar straightforward
interfaces" and "when adding device mediators for new devices, the VMM
core does not need to be modified".  This module is the proof by
construction: a mediator for the message-passing MFI interface that
registers itself with the VMM core's registry and reuses the entire
device-independent engine (classification, redirect orchestration,
multiplex take-over, queue replay) untouched.
"""

from __future__ import annotations

from itertools import count

from repro.storage import megaraid
from repro.storage.blockdev import BlockOp, BlockRequest, SectorBuffer
from repro.vmm.mediator import (DeviceMediator, MediatorMode,
                                register_mediator)

#: Context ids the VMM uses for its own frames (far above the guest's).
VMM_CONTEXT_BASE = 1 << 30


@register_mediator("megaraid")
class MegaRaidMediator(DeviceMediator):
    """Mediator for the MegaRAID-style controller."""

    def __init__(self, env, machine, deployment):
        super().__init__(env, machine, deployment)
        self.controller = machine.disk_controller
        if self.controller.kind != "megaraid":
            raise TypeError(
                "MegaRaidMediator requires a MegaRAID controller")
        self.irq_line = self.controller.irq_line
        #: Every trapped MFI-window access — the interpretation workload.
        self._m_intercepts = self.telemetry.registry.counter(
            "mediator_io_intercepts_total", controller="megaraid")
        self._vmm_contexts = count(VMM_CONTEXT_BASE)
        self._vmm_context_inflight: int | None = None
        # Redirect bookkeeping: the blocked frame (absorbed post).
        self._blocked_frame: megaraid.MfiFrame | None = None
        self._blocked_address: int | None = None
        self._dummy_buffer = SectorBuffer(0, 65536)
        self._dummy_address = machine.hostmem.allocate(self._dummy_buffer)
        self._vmm_frame_address: int | None = None
        self._vmm_buffer_address: int | None = None

    # -- intercept installation ----------------------------------------------------

    def _install_intercepts(self) -> None:
        self._installed_hook = self._hook
        self.machine.bus.intercept_mmio(self.controller.mmio_base,
                                        megaraid.MFI_SIZE,
                                        self._installed_hook)
        for cpu in self.machine.cpus:
            cpu.npt.add_trap_range(self.controller.mmio_base,
                                   megaraid.MFI_SIZE, "megaraid-mfi")

    def _uninstall_intercepts(self) -> None:
        self.machine.bus.uninstall_mmio_intercepts(self._installed_hook)

    # -- the intercept hook --------------------------------------------------------------

    def _hook(self, access):
        self._m_intercepts.inc()
        offset = access.address - self.controller.mmio_base
        if access.is_write:
            yield from self._hook_write(access, offset)
        else:
            yield from self._hook_read(access, offset)

    def _hook_write(self, access, offset: int):
        owned = self.mode is MediatorMode.VMM_OWNED
        if offset == megaraid.REG_INBOUND_QUEUE:
            yield from self._on_guest_post(access, access.value)
            return
        if offset == megaraid.REG_DOORBELL_CLEAR and owned:
            access.absorb = True
        yield self.env.timeout(0)

    def _hook_read(self, access, offset: int):
        if self.mode is MediatorMode.VMM_OWNED:
            if offset == megaraid.REG_STATUS:
                # Emulate idle firmware, surfacing only guest replies.
                status = 0
                if self._guest_reply_pending():
                    status |= megaraid.STATUS_REPLY_PENDING
                access.reply = status
            elif offset == megaraid.REG_OUTBOUND_REPLY:
                access.reply = self._pop_guest_reply()
                access.absorb = True
        elif self._blocked_frame is not None:
            if offset == megaraid.REG_STATUS:
                access.reply = megaraid.STATUS_BUSY
            elif offset == megaraid.REG_OUTBOUND_REPLY:
                access.reply = self._pop_guest_reply()
                access.absorb = True
        yield self.env.timeout(0)

    def _guest_reply_pending(self) -> bool:
        return any(context < VMM_CONTEXT_BASE
                   for context in self.controller.peek_completions())

    def _pop_guest_reply(self) -> int:
        """Pop the next *guest* completion, skipping the VMM's own."""
        for context in self.controller.peek_completions():
            if context < VMM_CONTEXT_BASE:
                self.controller.take_completion(context)
                return context
        return megaraid.REPLY_NONE

    # -- guest command handling --------------------------------------------------------------

    def _on_guest_post(self, access, frame_address: int):
        frame = self.machine.hostmem.lookup(frame_address)
        request = megaraid.decode_frame(frame)
        if request is None:
            # Flush etc.: only queue while the VMM owns the firmware.
            if self.mode is MediatorMode.VMM_OWNED:
                access.absorb = True
                self.queue_guest_command(frame_address)
            yield self.env.timeout(0)
            return
        action = self.classify(request)
        if action == "pass":
            yield self.env.timeout(0)
            return
        access.absorb = True
        if action == "queue":
            self.queue_guest_command(frame_address)
            yield self.env.timeout(0)
            return
        # redirect / protect: the message-passing interface needs no
        # separate start doorbell — serve immediately.
        yield from self._claim_blocked(frame, frame_address)
        try:
            if action == "redirect":
                yield from self.redirect(request)
            else:
                yield from self.protect_access(request)
        finally:
            self._blocked_frame = None
            self._blocked_address = None

    def _claim_blocked(self, frame, frame_address: int):
        """Serialize redirect contexts across re-entrant hook calls."""
        while self._blocked_frame is not None:
            yield self.env.timeout(self.deployment.poll_interval)
        self._blocked_frame = frame
        self._blocked_address = frame_address

    # -- primitives used by the base engine ------------------------------------------------------

    def _guest_buffer(self) -> SectorBuffer:
        return self.machine.hostmem.lookup(
            self._blocked_frame.buffer_address)

    def _issue_to_device(self, request: BlockRequest,
                         buffer: SectorBuffer) -> None:
        hostmem = self.machine.hostmem
        if self._vmm_buffer_address is not None:
            self._free_vmm_structures()
        self._vmm_buffer_address = hostmem.allocate(buffer)
        context = next(self._vmm_contexts)
        frame = megaraid.MfiFrame(
            "read" if request.op is BlockOp.READ else "write",
            request.lba, request.sector_count,
            self._vmm_buffer_address, context)
        self._vmm_frame_address = hostmem.allocate(frame)
        self._vmm_context_inflight = context
        self.controller.mmio_write(
            self.controller.mmio_base + megaraid.REG_INBOUND_QUEUE,
            self._vmm_frame_address)

    def _device_done(self) -> bool:
        context = self._vmm_context_inflight
        return context is not None \
            and context in self.controller.peek_completions()

    def _device_busy(self) -> bool:
        return self.controller.busy

    def _ack_device(self) -> None:
        if self._vmm_context_inflight is not None:
            # Reap our own completion so the guest never sees it.
            self.controller.take_completion(self._vmm_context_inflight)
            self._vmm_context_inflight = None
        self.controller.mmio_write(
            self.controller.mmio_base + megaraid.REG_DOORBELL_CLEAR, 1)
        self._free_vmm_structures()

    def _free_vmm_structures(self) -> None:
        hostmem = self.machine.hostmem
        if self._vmm_frame_address is not None:
            hostmem.free(self._vmm_frame_address)
            self._vmm_frame_address = None
        if self._vmm_buffer_address is not None:
            hostmem.free(self._vmm_buffer_address)
            self._vmm_buffer_address = None

    def _save_guest_registers(self) -> None:
        # Guest-owed completions stay in the firmware's reply queue and
        # are served (filtered) by the virtualized reply register; there
        # is no latched register state to capture.
        pass

    def _restore_guest_registers(self) -> None:
        pass

    def _deliver_dummy_completion(self) -> None:
        """Rewrite the blocked frame to a 1-sector dummy read and post
        it, so the firmware completes it with the guest's own context."""
        frame = self._blocked_frame
        self._dummy_buffer.lba = self.deployment.dummy_lba
        self._dummy_buffer.sector_count = 1
        frame.command = "read"
        frame.lba = self.deployment.dummy_lba
        frame.sector_count = 1
        frame.buffer_address = self._dummy_address
        self.controller.mmio_write(
            self.controller.mmio_base + megaraid.REG_INBOUND_QUEUE,
            self._blocked_address)

    def _replay_guest_command(self, frame_address: int):
        frame = self.machine.hostmem.lookup(frame_address)
        request = megaraid.decode_frame(frame)
        if request is not None:
            bitmap = self.deployment.bitmap
            if self.deployment.overlaps_protected(request.lba,
                                                  request.sector_count):
                yield from self._claim_blocked(frame, frame_address)
                try:
                    yield from self.protect_access(request)
                finally:
                    self._blocked_frame = None
                    self._blocked_address = None
                return
            if (request.op is BlockOp.READ
                    and request.lba < bitmap.image_sectors
                    and not bitmap.sectors_local(request.lba,
                                                 request.sector_count)):
                yield from self._claim_blocked(frame, frame_address)
                try:
                    yield from self.redirect(request)
                finally:
                    self._blocked_frame = None
                    self._blocked_address = None
                return
        yield from self._wait_device_idle()
        self.controller.mmio_write(
            self.controller.mmio_base + megaraid.REG_INBOUND_QUEUE,
            frame_address)
