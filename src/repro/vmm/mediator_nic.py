"""Shared-NIC device mediator (paper Section 6).

When no dedicated management NIC is available, the VMM shares the guest's
NIC using shadow ring buffers: the *real* device is programmed with
VMM-owned rings; the guest's rings live untouched in its own memory; the
mediator virtualizes the head/tail/ICR registers and copies descriptors
between the two, interleaving the VMM's AoE traffic with the guest's
frames.  Interrupts are NOT virtualized: the device's interrupts reach
the guest even when they are for the VMM's frames, and the guest driver
dismisses them as spurious after reading a clean (virtual) ICR — exactly
the behaviour the paper describes and the reason it prefers a dedicated
NIC (extra latency, jitter, and bandwidth contention, quantified by the
shared-NIC ablation bench).
"""

from __future__ import annotations

from repro.net import e1000
from repro.net.packet import Frame
from repro.sim import Environment, Event, Interrupt, Store


class SharedNicPort:
    """The VMM's view of the shared NIC (duck-types the simple Nic)."""

    def __init__(self, mediator: "NicMediator"):
        self._mediator = mediator
        self.name = mediator.nic.name
        self.switch = mediator.nic.switch

    def send(self, dst: str, payload, payload_bytes: int,
             protocol: str = "aoe"):
        """Generator: transmit through the shadow ring."""
        return (yield from self._mediator.vmm_send(
            dst, payload, payload_bytes, protocol))

    def recv(self):
        """Generator: next frame addressed to the VMM."""
        frame = yield self._mediator.vmm_rx.get()
        return frame

    def poll(self):
        return self._mediator.vmm_rx.try_get()


class _VmmTxItem:
    def __init__(self, env: Environment, payload_address: int):
        self.payload_address = payload_address
        self.done = Event(env)


class NicMediator:
    """Mediates one E1000 NIC between the guest and the VMM."""

    def __init__(self, env: Environment, machine, nic: e1000.E1000Nic,
                 poll_interval: float = 100e-6):
        self.env = env
        self.machine = machine
        self.nic = nic
        self.poll_interval = poll_interval

        # Guest's virtual register file.
        self.g_rdba = 0
        self.g_tdba = 0
        self.g_rdt = 0
        self.g_tdt = 0
        self.g_rdh = 0
        self.g_tdh = 0
        self.g_ims = 0
        self.g_icr = 0
        self.g_rdlen = 0
        self.g_tdlen = 0
        self._g_tx_consumed = 0   # guest descriptors copied so far

        # Shadow rings programmed into the real device.
        self._s_tx_ring = e1000.make_ring(e1000.TxDescriptor)
        self._s_rx_ring = e1000.make_ring(e1000.RxDescriptor)
        self._s_tx_address = machine.hostmem.allocate(self._s_tx_ring)
        self._s_rx_address = machine.hostmem.allocate(self._s_rx_ring)
        self._s_tx_next = 0       # next free shadow TX slot
        self._s_tx_reaped = 0     # next shadow TX slot to reap
        self._s_rx_next = 0       # next shadow RX slot to examine
        #: shadow TX slot -> ("guest", guest_slot) | ("vmm", item)
        self._tx_owner: dict[int, tuple] = {}

        self._vmm_tx_queue: list[_VmmTxItem] = []
        self.vmm_rx: Store = Store(env)

        self.installed = False
        self._poller = None

        # Metrics.
        self.guest_frames_delivered = 0
        self.guest_frames_dropped = 0
        self.vmm_frames_sent = 0
        self.guest_tx_forwarded = 0
        self.spurious_guest_interrupts = 0

    # -- lifecycle ---------------------------------------------------------------

    def install(self) -> None:
        if self.installed:
            raise RuntimeError("NIC mediator already installed")
        nic = self.nic
        # Program the real device with the shadow rings (root mode).
        for descriptor in self._s_rx_ring:
            descriptor.buffer_address = \
                self.machine.hostmem.allocate(object())
        nic.mmio_write(nic.mmio_base + e1000.REG_TDBA, self._s_tx_address)
        nic.mmio_write(nic.mmio_base + e1000.REG_RDBA, self._s_rx_address)
        nic.mmio_write(nic.mmio_base + e1000.REG_RDT,
                       len(self._s_rx_ring) - 1)
        nic.mmio_write(nic.mmio_base + e1000.REG_IMS,
                       e1000.ICR_TXDW | e1000.ICR_RXT0)
        self._installed_hook = self._hook
        self.machine.bus.intercept_mmio(nic.mmio_base,
                                        e1000.E1000_MMIO_SIZE,
                                        self._installed_hook)
        for cpu in self.machine.cpus:
            cpu.npt.add_trap_range(nic.mmio_base, e1000.E1000_MMIO_SIZE,
                                   "e1000-shared")
        self._poller = self.env.process(self._poll_loop(),
                                        name="nic-mediator-poll")
        self.installed = True

    def uninstall(self) -> None:
        """De-virtualization: hand the real NIC over to the guest.

        Requires quiescence.  A real implementation resets the device
        and replays the guest's programming (the paper notes this
        transition is the fiddly part); the model transfers the guest's
        ring state onto the device directly.
        """
        if not self.installed:
            return
        if not self.quiescent:
            raise RuntimeError(
                "cannot de-virtualize the NIC with VMM traffic in flight")
        if self._poller is not None and self._poller.is_alive:
            self._poller.interrupt("devirt")
        self.machine.bus.uninstall_mmio_intercepts(self._installed_hook)
        nic = self.nic
        nic.tdba = self.g_tdba
        nic.rdba = self.g_rdba
        nic.tdh = self.g_tdh
        nic.tdt = self.g_tdt
        nic.rdh = self.g_rdh
        nic.rdt = self.g_rdt
        nic.ims = self.g_ims
        nic.icr = self.g_icr
        self.installed = False

    @property
    def quiescent(self) -> bool:
        return (not self._vmm_tx_queue
                and all(owner[0] != "vmm"
                        for owner in self._tx_owner.values()))

    # -- the intercept hook -----------------------------------------------------------

    def _hook(self, access):
        offset = access.address - self.nic.mmio_base
        access.absorb = True  # the guest never touches the real device
        if access.is_write:
            self._on_guest_write(offset, access.value)
        else:
            access.reply = self._on_guest_read(offset)
        yield self.env.timeout(0)

    def _on_guest_write(self, offset: int, value: int) -> None:
        if offset == e1000.REG_RDBA:
            self.g_rdba = value
        elif offset == e1000.REG_TDBA:
            self.g_tdba = value
            self._g_tx_consumed = 0
        elif offset == e1000.REG_RDLEN:
            self.g_rdlen = value
        elif offset == e1000.REG_TDLEN:
            self.g_tdlen = value
        elif offset == e1000.REG_RDT:
            self.g_rdt = value
        elif offset == e1000.REG_TDT:
            self.g_tdt = value
            self._pump_guest_tx()
        elif offset == e1000.REG_IMS:
            self.g_ims = value
        elif offset == e1000.REG_ICR:
            self.g_icr &= ~value
        # CTRL and others: accepted, nothing to mirror.

    def _on_guest_read(self, offset: int) -> int:
        if offset == e1000.REG_ICR:
            # Pump first so fresh completions/frames are visible in the
            # cause the guest is about to act on.
            self._pump_tx_completions()
            self._pump_rx()
            value = self.g_icr
            if value == 0:
                self.spurious_guest_interrupts += 1
            self.g_icr = 0
            return value
        return {
            e1000.REG_RDBA: self.g_rdba, e1000.REG_TDBA: self.g_tdba,
            e1000.REG_RDH: self.g_rdh, e1000.REG_RDT: self.g_rdt,
            e1000.REG_TDH: self.g_tdh, e1000.REG_TDT: self.g_tdt,
            e1000.REG_IMS: self.g_ims,
            e1000.REG_RDLEN: self.g_rdlen,
            e1000.REG_TDLEN: self.g_tdlen,
            e1000.REG_CTRL: 0,
        }.get(offset, 0)

    # -- pumping: guest TX -> shadow ring ------------------------------------------------

    def _shadow_tx_free(self) -> int:
        return len(self._s_tx_ring) - len(self._tx_owner)

    def _take_shadow_tx_slot(self) -> int | None:
        if self._shadow_tx_free() <= 1:
            return None
        slot = self._s_tx_next
        self._s_tx_next = (self._s_tx_next + 1) % len(self._s_tx_ring)
        return slot

    def _pump_guest_tx(self) -> None:
        if not self.g_tdba:
            return
        guest_ring = self.machine.hostmem.lookup(self.g_tdba)
        size = len(guest_ring)
        kicked = False
        while self._g_tx_consumed != self.g_tdt:
            slot = self._take_shadow_tx_slot()
            if slot is None:
                break  # shadow ring full; the poll loop retries
            guest_slot = self._g_tx_consumed
            descriptor = guest_ring[guest_slot]
            shadow = self._s_tx_ring[slot]
            shadow.buffer_address = descriptor.buffer_address
            shadow.length = descriptor.length
            shadow.dd = False
            self._tx_owner[slot] = ("guest", guest_slot)
            self._g_tx_consumed = (guest_slot + 1) % size
            kicked = True
        if kicked:
            self._kick_device()

    def _pump_vmm_tx(self) -> None:
        kicked = False
        while self._vmm_tx_queue:
            slot = self._take_shadow_tx_slot()
            if slot is None:
                break
            item = self._vmm_tx_queue.pop(0)
            shadow = self._s_tx_ring[slot]
            shadow.buffer_address = item.payload_address
            shadow.dd = False
            self._tx_owner[slot] = ("vmm", item)
            kicked = True
        if kicked:
            self._kick_device()

    def _kick_device(self) -> None:
        nic = self.nic
        nic.mmio_write(nic.mmio_base + e1000.REG_TDT, self._s_tx_next)

    def _pump_tx_completions(self) -> None:
        guest_ring = self.machine.hostmem.lookup(self.g_tdba) \
            if self.g_tdba else None
        while self._s_tx_reaped in self._tx_owner \
                and self._s_tx_ring[self._s_tx_reaped].dd:
            kind, target = self._tx_owner.pop(self._s_tx_reaped)
            self._s_tx_ring[self._s_tx_reaped].dd = False
            if kind == "guest" and guest_ring is not None:
                guest_ring[target].dd = True
                self.g_tdh = (target + 1) % len(guest_ring)
                self.g_icr |= e1000.ICR_TXDW
                self.guest_tx_forwarded += 1
            elif kind == "vmm":
                self.vmm_frames_sent += 1
                if not target.done.triggered:
                    target.done.succeed()
            self._s_tx_reaped = (self._s_tx_reaped + 1) \
                % len(self._s_tx_ring)

    # -- pumping: shadow RX -> guest ring / VMM store --------------------------------------

    def _pump_rx(self) -> None:
        ring = self._s_rx_ring
        size = len(ring)
        recycled = False
        while ring[self._s_rx_next].dd:
            descriptor = ring[self._s_rx_next]
            frame = descriptor.frame
            descriptor.dd = False
            descriptor.frame = None
            self._s_rx_next = (self._s_rx_next + 1) % size
            recycled = True
            if frame.protocol == "aoe":
                self.vmm_rx.put(frame)
            else:
                self._deliver_to_guest(frame)
        if recycled:
            nic = self.nic
            new_tail = (self._s_rx_next - 1) % size
            nic.mmio_write(nic.mmio_base + e1000.REG_RDT, new_tail)

    def _deliver_to_guest(self, frame: Frame) -> None:
        if not self.g_rdba:
            self.guest_frames_dropped += 1
            return
        guest_ring = self.machine.hostmem.lookup(self.g_rdba)
        size = len(guest_ring)
        if self.g_rdh == self.g_rdt:
            self.guest_frames_dropped += 1
            return
        descriptor = guest_ring[self.g_rdh]
        descriptor.frame = frame
        descriptor.length = frame.payload_bytes
        descriptor.dd = True
        self.g_rdh = (self.g_rdh + 1) % size
        self.g_icr |= e1000.ICR_RXT0
        self.guest_frames_delivered += 1

    # -- the VMM transmit path ------------------------------------------------------------

    def vmm_send(self, dst: str, payload, payload_bytes: int,
                 protocol: str = "aoe"):
        """Generator: send one VMM frame; returns True when on the wire."""
        address = self.machine.hostmem.allocate(
            e1000.TxPayload(dst, payload, payload_bytes, protocol))
        item = _VmmTxItem(self.env, address)
        self._vmm_tx_queue.append(item)
        self._pump_vmm_tx()
        yield item.done
        self.machine.hostmem.free(address)
        return True

    # -- the polling thread -----------------------------------------------------------------

    def _poll_loop(self):
        try:
            while True:
                yield self.env.timeout(self.poll_interval)
                self._pump_tx_completions()
                self._pump_vmm_tx()
                self._pump_guest_tx()
                self._pump_rx()
        except Interrupt:
            return
