"""Background-copy moderation policy (paper 3.3, evaluated in 5.6).

Three configurable parameters govern the copier's write pacing:

* **guest I/O frequency threshold** — above it, the guest is considered
  busy and the copier suspends;
* **VMM-write interval** — the gap between block writes when the guest
  is quiet;
* **VMM-write suspend interval** — how long to back off when busy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import params
from repro.vmm.deploy import DeploymentContext


@dataclass(frozen=True)
class ModerationPolicy:
    """The paper's three-parameter pacing policy."""

    guest_io_threshold: float = params.MODERATION_GUEST_IO_THRESHOLD
    write_interval: float = params.MODERATION_WRITE_INTERVAL_SECONDS
    suspend_interval: float = params.MODERATION_SUSPEND_INTERVAL_SECONDS

    def next_delay(self, deployment: DeploymentContext) -> float:
        """Seconds to wait before the copier's next block write."""
        if deployment.guest_io_frequency() > self.guest_io_threshold:
            return self.suspend_interval
        return self.write_interval

    def is_suspended(self, deployment: DeploymentContext) -> bool:
        return deployment.guest_io_frequency() > self.guest_io_threshold

    def next_delay_simple(self) -> float:
        """Pacing without guest-I/O telemetry (used by the OS-streaming
        baseline, whose in-kernel driver only has a fixed interval)."""
        return self.write_interval


#: Full-speed policy (the right end of Figure 14's sweep): no pacing.
FULL_SPEED = ModerationPolicy(guest_io_threshold=float("inf"),
                              write_interval=0.0,
                              suspend_interval=0.0)


def interval_sweep_policy(write_interval: float) -> ModerationPolicy:
    """A policy for Figure 14: fixed write interval, no suspension."""
    return ModerationPolicy(guest_io_threshold=float("inf"),
                            write_interval=write_interval,
                            suspend_interval=0.0)
