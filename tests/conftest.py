"""Shared fixtures: sanitized deployments (repro.analysis).

``sanitized_cluster`` deploys a BMcast fleet with every runtime
sanitizer attached, so key scenarios run under the full invariant
check by default (ISSUE 3's "pytest fixture that runs key scenarios
sanitized").
"""

import pytest

from repro.analysis import SanitizerSuite
from repro.cloud import Cluster, build_testbed
from repro.guest.osimage import OsImage
from repro.vmm.moderation import FULL_SPEED

MB = 2**20


@pytest.fixture
def sanitized_cluster():
    """Factory: deploy ``node_count`` BMcast nodes fully sanitized.

    Returns ``(testbed, cluster, suite)`` after the deployment (and,
    with ``wait=True``, the background copy) has finished.  The suite
    is *not* finalized — tests inspect or ``assert_clean()`` it.
    """

    def run(node_count=1, image_mb=32, wait=True, policy=FULL_SPEED,
            **testbed_kwargs):
        image = OsImage(size_bytes=image_mb * MB,
                        boot_read_bytes=min(2 * MB, image_mb * MB // 4),
                        boot_think_seconds=0.5)
        testbed = build_testbed(node_count=node_count, image=image,
                                **testbed_kwargs)
        suite = SanitizerSuite(testbed.env)
        cluster = Cluster(testbed)

        def scenario():
            yield from cluster.deploy_all("bmcast", policy=policy,
                                          sanitizers=suite)
            if wait:
                yield from cluster.wait_deployment_complete(
                    settle_seconds=1.0)

        testbed.env.run(until=testbed.env.process(scenario()))
        return testbed, cluster, suite

    return run
