"""Negative control: disabling the bitmap's atomic check loses writes.

DESIGN.md item 5.4 — the paper's consistency mechanism (3.3) is not
decorative.  This test builds a copier whose block writes skip the
at-ownership revalidation (writing exactly what was fetched), drives the
same racing workload the property tests use, and shows a guest write
being overwritten by stale image data — the bug the real design
prevents.
"""

import pytest

from repro.cloud.scenario import build_testbed
from repro.guest.kernel import GuestOs
from repro.guest.osimage import OsImage
from repro.storage.blockdev import BlockOp, BlockRequest
from repro.vmm import copier as copier_module
from repro.vmm.bmcast import BmcastVmm
from repro.vmm.moderation import FULL_SPEED

MB = 2**20


class UncheckedCopier(copier_module.BackgroundCopier):
    """A copier with the paper's atomic check ripped out."""

    def _write_block(self, block, runs):
        bitmap = self.deployment.bitmap
        start, count = bitmap.block_range(block)
        request = BlockRequest(BlockOp.WRITE, start, count, origin="vmm")
        request.buffer.runs = list(runs)
        # No revalidate: whatever was fetched gets written, even over
        # sectors the guest has written since.
        yield from self.mediator.vmm_request(request)
        try:
            bitmap.commit_fill(block)
            self.blocks_filled += 1
        except ValueError:
            pass

    def _write_run(self, first_block, block_count, runs):
        # The coalesced path must be equally unchecked, or the ablation
        # would silently exercise the real revalidation.
        bitmap = self.deployment.bitmap
        start = first_block * bitmap.block_sectors
        count = min(block_count * bitmap.block_sectors,
                    bitmap.image_sectors - start)
        request = BlockRequest(BlockOp.WRITE, start, count, origin="vmm")
        request.buffer.runs = list(runs)
        yield from self.mediator.vmm_request(request)
        for block in range(first_block, first_block + block_count):
            try:
                bitmap.commit_fill(block)
                self.blocks_filled += 1
            except ValueError:
                pass


def run_race(copier_cls):
    image = OsImage(size_bytes=24 * MB, boot_read_bytes=1 * MB,
                    boot_think_seconds=0.2)
    testbed = build_testbed(image=image)
    node = testbed.node
    env = testbed.env
    vmm = BmcastVmm(env, node.machine, node.vmm_nic, testbed.server_port,
                    image_sectors=image.total_sectors, policy=FULL_SPEED)
    if copier_cls is not copier_module.BackgroundCopier:
        # Swap in the broken copier before anything starts.
        vmm.copier = copier_cls(env, vmm.deployment, vmm.mediator,
                                policy=FULL_SPEED)
    guest = GuestOs(node.machine, image)
    writes = {}

    def scenario():
        yield from node.machine.power_on()
        yield from node.machine.firmware.network_boot()
        yield from vmm.boot()
        # Race writes against the full-speed copy across many blocks.
        for index in range(24):
            lba = index * 2048 + 7  # mid-block, partial
            token = ("race", index)
            yield from guest.driver.write(lba, 16, token)
            guest.written.set_range(lba, 16, True)
            writes[lba] = token
            yield env.timeout(5e-3)
        yield vmm.copier.done

    env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    disk = node.disk.contents
    lost = [lba for lba, token in writes.items()
            if disk.get(lba) != token]
    return lost


def test_atomic_check_prevents_lost_writes():
    assert run_race(copier_module.BackgroundCopier) == []


def test_disabling_atomic_check_loses_writes():
    lost = run_race(UncheckedCopier)
    assert lost, ("expected the unchecked copier to overwrite at least "
                  "one racing guest write — if this starts passing, the "
                  "race window moved and the ablation needs a rethink")
