"""simlint: every rule has a positive and a negative case."""

import textwrap

from repro.analysis.lint import (
    Finding,
    all_rules,
    lint_paths,
    lint_source,
    main,
    module_name_for,
)

SRC = __file__.rsplit("/tests/", 1)[0] + "/src/repro"


def findings(source, module="repro.sim.example"):
    return lint_source(textwrap.dedent(source), module=module,
                       path="example.py")


def rules_of(results):
    return [finding.rule for finding in results]


# -- SIM001: wall clock ------------------------------------------------------

def test_wall_clock_detected():
    results = findings("""
        import time
        def now():
            return time.time()
    """)
    assert "SIM001" in rules_of(results)


def test_wall_clock_via_alias_detected():
    results = findings("""
        from time import monotonic as fast_clock
        def now():
            return fast_clock()
    """)
    assert "SIM001" in rules_of(results)


def test_datetime_now_detected():
    results = findings("""
        import datetime
        def today():
            return datetime.datetime.now()
    """)
    assert "SIM001" in rules_of(results)


def test_env_now_is_fine():
    results = findings("""
        def now(env):
            return env.now
    """)
    assert results == []


# -- SIM002/SIM003: randomness ------------------------------------------------

def test_global_random_draw_detected():
    results = findings("""
        import random
        def roll():
            return random.random()
    """)
    assert "SIM002" in rules_of(results)
    assert "SIM003" in rules_of(results)  # the import itself, too


def test_unseeded_random_instance_detected():
    results = findings("""
        import random
        def make():
            return random.Random()
    """)
    assert "SIM002" in rules_of(results)


def test_random_import_allowed_only_in_rng_module():
    source = """
        import random
        def make_rng(seed):
            return random.Random(seed)
    """
    assert "SIM003" in rules_of(findings(source))
    assert rules_of(findings(source, module="repro.util.rng")) == []


def test_seeded_rng_helper_is_fine():
    results = findings("""
        from repro.util.rng import make_rng
        def make():
            return make_rng(42)
    """, module="repro.net.example")
    assert results == []


# -- SIM004: mutable defaults -------------------------------------------------

def test_mutable_default_detected():
    results = findings("""
        def collect(items=[]):
            return items
    """)
    assert rules_of(results) == ["SIM004"]


def test_mutable_default_call_and_kwonly_detected():
    results = findings("""
        def collect(*, cache=dict()):
            return cache
    """)
    assert rules_of(results) == ["SIM004"]


def test_none_default_is_fine():
    results = findings("""
        def collect(items=None, mapping=()):
            return items, mapping
    """)
    assert results == []


# -- SIM005: layering ---------------------------------------------------------

def test_upward_import_detected():
    results = findings("""
        from repro.vmm.bitmap import BlockBitmap
    """, module="repro.sim.engine")
    assert rules_of(results) == ["SIM005"]


def test_downward_import_is_fine():
    results = findings("""
        from repro.sim import Environment
        from repro.net.nic import Nic
    """, module="repro.vmm.bmcast")
    assert results == []


def test_from_repro_import_package_detected():
    results = findings("""
        from repro import cloud
    """, module="repro.net.link")
    assert rules_of(results) == ["SIM005"]


# -- SIM006: blocking primitives ---------------------------------------------

def test_time_sleep_detected():
    results = findings("""
        import time
        def wait():
            time.sleep(1.0)
    """)
    assert "SIM006" in rules_of(results)


def test_threading_import_detected():
    results = findings("""
        import threading
    """)
    assert rules_of(results) == ["SIM006"]


# -- suppressions -------------------------------------------------------------

def test_targeted_suppression():
    results = findings("""
        import time
        def now():
            return time.time()  # simlint: ignore[SIM001] test clock
    """)
    assert results == []


def test_bare_suppression_silences_all_rules():
    results = findings("""
        import threading  # simlint: ignore
    """)
    assert results == []


def test_suppression_for_other_rule_does_not_apply():
    results = findings("""
        import time
        def now():
            return time.time()  # simlint: ignore[SIM006]
    """)
    assert "SIM001" in rules_of(results)


def test_multi_rule_suppression():
    results = findings("""
        import time
        import threading  # simlint: ignore[SIM001,SIM006]
        def now():
            return time.time()
    """)
    # Both ids on the comment line suppress; the uncommented call does
    # not.
    assert rules_of(results) == ["SIM001"]


def test_multi_rule_suppression_with_spaces():
    results = findings("""
        import time
        def now():
            return time.time()  # simlint: ignore[SIM001, SIM006]
    """)
    assert results == []


def test_ignore_next_line_suppresses_the_next_line():
    results = findings("""
        import time
        def now():
            # simlint: ignore-next-line[SIM001] -- test clock
            return time.time()
    """)
    assert results == []


def test_ignore_next_line_does_not_suppress_its_own_line():
    results = findings("""
        import time
        def now():
            return time.time()  # simlint: ignore-next-line[SIM001]
    """)
    assert "SIM001" in rules_of(results)


def test_bare_ignore_next_line():
    results = findings("""
        # simlint: ignore-next-line
        import threading
    """)
    assert results == []


def test_suppression_table_for_other_tool_prefix():
    from repro.analysis.lint import suppression_table

    source = textwrap.dedent("""
        x = 1  # simcheck: ignore[CHECK001]
        # simcheck: ignore-next-line[CHECK020,CHECK050]
        y = 2
        z = 3  # simlint: ignore[SIM001]
    """)
    table = suppression_table(source, "simcheck")
    assert table[2] == {"CHECK001"}
    assert table[4] == {"CHECK020", "CHECK050"}
    # The simlint-prefixed comment does not leak into simcheck's table.
    assert 5 not in table


# -- framework ----------------------------------------------------------------

def test_syntax_error_becomes_finding():
    results = lint_source("def broken(:\n", module="repro.x",
                          path="broken.py")
    assert rules_of(results) == ["SIM000"]


def test_module_name_for_anchors_at_repro():
    assert module_name_for(SRC + "/vmm/bitmap.py") == "repro.vmm.bitmap"
    assert module_name_for(SRC + "/sim/__init__.py") == "repro.sim"


def test_finding_format_is_tool_style():
    finding = Finding("a.py", 3, 7, "SIM001", "error", "boom")
    assert finding.format() == "a.py:3:7: SIM001 error: boom"


def test_rule_catalog_is_complete():
    ids = sorted(rule.id for rule in all_rules())
    assert ids == ["SIM001", "SIM002", "SIM003", "SIM004", "SIM005",
                   "SIM006"]


# -- the real tree ------------------------------------------------------------

def test_repro_tree_is_lint_clean():
    results = lint_paths([SRC])
    errors = [finding for finding in results
              if finding.severity == "error"]
    assert errors == []


def test_injected_violation_fails_the_run(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nSTART = time.time()\n")
    assert main([str(bad)]) == 1
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 42\n")
    assert main([str(clean)]) == 0
