"""Replay-divergence checker: identical runs hash identically, and
cross-run shared state (the bug class it exists for) is caught."""

import pytest

from repro.analysis import ReplayRecorder, check_replay, deployment_scenario
from repro.guest.osimage import OsImage
from repro.sim import Environment

MB = 2**20


def _image():
    return OsImage(size_bytes=8 * MB, boot_read_bytes=1 * MB,
                   boot_think_seconds=0.2)


def test_deterministic_deployment_replays_identically():
    scenario = deployment_scenario(_image)
    report = check_replay(scenario, runs=2)
    assert not report.divergent
    assert report.event_counts[0] == report.event_counts[1]
    assert report.event_counts[0] > 0
    assert "identical" in report.describe()


def test_scaleout_scenario_replays_identically():
    # The full elasticity path: waves, replica selection, p2p serving.
    scenario = deployment_scenario(_image, node_count=3, server_count=2,
                                   p2p=True, wave_size=2)
    report = check_replay(scenario, runs=2)
    assert not report.divergent, report.describe()


def test_cross_run_shared_state_detected():
    shared = {"runs": 0}

    def scenario(recorder):
        env = Environment()
        recorder.attach(env)
        shared["runs"] += 1  # the bug: state leaking across runs

        def process():
            yield env.timeout(0.1 * shared["runs"])

        env.run(until=env.process(process()))

    report = check_replay(scenario, runs=2)
    assert report.divergent
    assert "DIVERGENT" in report.describe()


def test_recorder_refuses_double_attach():
    env = Environment()
    ReplayRecorder().attach(env)
    with pytest.raises(RuntimeError):
        ReplayRecorder().attach(env)


def test_check_replay_needs_two_runs():
    with pytest.raises(ValueError):
        check_replay(lambda recorder: None, runs=1)


def test_trace_hook_sees_every_popped_event():
    env = Environment()
    recorder = ReplayRecorder().attach(env)

    def process():
        yield env.timeout(1.0)
        yield env.timeout(2.0)

    env.run(until=env.process(process()))
    assert recorder.events == env.events_processed
    assert recorder.events > 0
