"""Runtime sanitizers detect injected violations; clean runs stay clean.

Each of the four sanitizer families gets at least one ablation-style
test that seeds the race/bug it exists to catch (ISSUE 3 acceptance
criterion), plus a clean-run control proving zero false positives.
"""

import pytest

from repro.analysis import SanitizerSuite
from repro.analysis.aoe_conformance import AoeConformanceValidator
from repro.analysis.consistency import BitmapDiskChecker
from repro.analysis.sanitizers import SanitizerError
from repro.analysis.write_race import WriteRaceDetector
from repro.aoe.client import AoeInitiator, AoeTimeoutError
from repro.cloud.scenario import build_testbed
from repro.dist.fabric import DistFabric
from repro.guest.kernel import GuestOs
from repro.guest.osimage import OsImage
from repro.sim import Environment
from repro.storage.blockdev import BlockOp, BlockRequest
from repro.storage.disk import Disk
from repro.vmm import copier as copier_module
from repro.vmm.bitmap import BlockBitmap
from repro.vmm.bmcast import BmcastVmm
from repro.vmm.moderation import FULL_SPEED

MB = 2**20


# -- shared scenario: guest writes racing a full-speed copier ----------------

class UncheckedCopier(copier_module.BackgroundCopier):
    """Copier with the at-write-time revalidation ripped out."""

    def _write_block(self, block, runs):
        bitmap = self.deployment.bitmap
        start, count = bitmap.block_range(block)
        request = BlockRequest(BlockOp.WRITE, start, count, origin="vmm")
        request.buffer.runs = list(runs)
        yield from self.mediator.vmm_request(request)
        try:
            bitmap.commit_fill(block)
            self.blocks_filled += 1
        except ValueError:
            pass

    def _write_run(self, first_block, block_count, runs):
        # Full-speed deploys land coalesced runs through this path; the
        # ablation must skip revalidation here too.
        bitmap = self.deployment.bitmap
        start = first_block * bitmap.block_sectors
        count = min(block_count * bitmap.block_sectors,
                    bitmap.image_sectors - start)
        request = BlockRequest(BlockOp.WRITE, start, count, origin="vmm")
        request.buffer.runs = list(runs)
        yield from self.mediator.vmm_request(request)
        for block in range(first_block, first_block + block_count):
            try:
                bitmap.commit_fill(block)
                self.blocks_filled += 1
            except ValueError:
                pass


def run_sanitized_race(copier_cls, write_count=24):
    """Racing-writes deployment with the full suite attached.

    Returns ``(suite, lost)`` where ``lost`` lists guest writes whose
    tokens no longer sit on disk (ground truth for the detector).
    """
    image = OsImage(size_bytes=24 * MB, boot_read_bytes=1 * MB,
                    boot_think_seconds=0.2)
    testbed = build_testbed(image=image)
    node = testbed.node
    env = testbed.env
    vmm = BmcastVmm(env, node.machine, node.vmm_nic, testbed.server_port,
                    image_sectors=image.total_sectors, policy=FULL_SPEED)
    if copier_cls is not copier_module.BackgroundCopier:
        vmm.copier = copier_cls(env, vmm.deployment, vmm.mediator,
                                policy=FULL_SPEED)
    suite = SanitizerSuite(env)
    suite.attach_deployment(vmm, image=image)  # after the copier swap
    guest = GuestOs(node.machine, image)
    writes = {}

    def scenario():
        yield from node.machine.power_on()
        yield from node.machine.firmware.network_boot()
        yield from vmm.boot()
        for index in range(write_count):
            lba = index * 2048 + 7  # mid-block, partial
            token = ("race", index)
            yield from guest.driver.write(lba, 16, token)
            guest.written.set_range(lba, 16, True)
            writes[lba] = token
            yield env.timeout(5e-3)
        yield vmm.copier.done

    env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    disk = node.disk.contents
    lost = [lba for lba, token in writes.items()
            if disk.get(lba) != token]
    suite.finalize()
    return suite, lost


def test_clean_racing_deploy_reports_nothing():
    suite, lost = run_sanitized_race(copier_module.BackgroundCopier)
    assert lost == []
    suite.assert_clean()
    assert len(suite.sanitizers) == 3


def test_write_race_detector_catches_unchecked_copier():
    suite, lost = run_sanitized_race(UncheckedCopier)
    assert lost, "the ablation should actually lose writes"
    rules = {violation.rule for violation in suite.violations}
    assert "vmm-overwrote-guest" in rules
    # The consistency checker independently sees the same lost updates.
    assert "guest-overwritten" in rules
    with pytest.raises(SanitizerError):
        suite.assert_clean()


# -- claim-protocol violations (unit level) ----------------------------------

def make_detector(image_sectors=4096):
    env = Environment()
    bitmap = BlockBitmap(image_sectors)
    detector = WriteRaceDetector(env, bitmap=bitmap, disk=Disk(env))
    return bitmap, detector


def test_double_claim_detected():
    bitmap, detector = make_detector()
    assert bitmap.try_claim(0)
    assert not bitmap.try_claim(0)
    assert [v.rule for v in detector.violations] == ["double-claim"]
    assert bitmap.double_claims == 1


def test_commit_fill_without_claim_raises_and_reports():
    bitmap, detector = make_detector()
    with pytest.raises(ValueError):
        bitmap.commit_fill(1)
    assert [v.rule for v in detector.violations] == ["fill-without-claim"]


def test_release_after_commit_detected():
    bitmap, detector = make_detector()
    bitmap.try_claim(0)
    bitmap.commit_fill(0)
    bitmap.release_claim(0)
    assert [v.rule for v in detector.violations] == ["release-after-commit"]


def test_release_without_claim_detected():
    bitmap, detector = make_detector()
    bitmap.release_claim(1)
    assert [v.rule for v in detector.violations] == \
        ["release-without-claim"]


def test_guest_fill_then_release_is_benign():
    bitmap, detector = make_detector()
    bitmap.try_claim(0)
    bitmap.record_guest_write(0, bitmap.block_sectors)  # whole block
    bitmap.release_claim(0)  # copier notices its claim evaporated
    assert detector.violations == []


# -- bitmap<->disk consistency: injected silent corruption -------------------

def test_consistency_checker_catches_silent_corruption():
    image = OsImage(size_bytes=16 * MB, boot_read_bytes=1 * MB,
                    boot_think_seconds=0.2)
    testbed = build_testbed(image=image)
    node = testbed.node
    env = testbed.env
    vmm = BmcastVmm(env, node.machine, node.vmm_nic, testbed.server_port,
                    image_sectors=image.total_sectors, policy=FULL_SPEED)
    suite = SanitizerSuite(env)
    suite.attach_deployment(vmm, image=image)

    def scenario():
        yield from node.machine.power_on()
        yield from node.machine.firmware.network_boot()
        yield from vmm.boot()
        yield vmm.copier.done

    env.run(until=env.process(scenario()))
    env.run(until=env.now + 5.0)
    checker = next(s for s in suite.sanitizers
                   if isinstance(s, BitmapDiskChecker))
    assert checker.check(when="pre-corruption") == 0
    # Flip sectors in a FILLED block behind every observer's back —
    # the kind of bug a buggy redirector or DMA error would cause.
    target = image.total_sectors // 2 + 3
    node.disk.contents.set_range(target, 4, ("corrupt",))
    assert checker.check(when="post-corruption") > 0
    rules = {v.rule for v in checker.violations}
    assert rules == {"filled-mismatch"}


# -- AoE conformance: Karn's algorithm ---------------------------------------

class KarnIgnorantInitiator(AoeInitiator):
    """Feeds the estimator from retransmitted replies (the bug)."""

    def _sample_rtt(self, transaction):
        self._record_rtt_sample(transaction)


def run_lossy_reads(initiator_cls, reads=60):
    image = OsImage(size_bytes=8 * MB, boot_read_bytes=1 * MB,
                    boot_think_seconds=0.2)
    testbed = build_testbed(image=image, loss_probability=0.05)
    env = testbed.env
    initiator = initiator_cls(env, testbed.node.vmm_nic,
                              testbed.server_port)
    validator = AoeConformanceValidator(env, initiator=initiator)

    def scenario():
        for index in range(reads):
            lba = (index * 64) % (image.total_sectors - 64)
            try:
                yield from initiator.read_blocks(lba, 64)
            except AoeTimeoutError:
                pass

    env.run(until=env.process(scenario()))
    validator.finalize()
    return initiator, validator


def test_karn_gate_keeps_clean_initiator_clean():
    initiator, validator = run_lossy_reads(AoeInitiator)
    assert initiator.retransmissions > 0, \
        "scenario must actually provoke retransmissions"
    assert validator.samples_seen > 0
    assert validator.violations == []


def test_karn_violation_detected_on_buggy_initiator():
    initiator, validator = run_lossy_reads(KarnIgnorantInitiator)
    assert initiator.retransmissions > 0
    rules = [v.rule for v in validator.violations]
    assert "karn-violation" in rules


# -- AoE conformance: duplicate tags -----------------------------------------

def test_duplicate_tag_detected():
    from itertools import chain, count

    image = OsImage(size_bytes=8 * MB, boot_read_bytes=1 * MB,
                    boot_think_seconds=0.2)
    testbed = build_testbed(image=image)
    env = testbed.env
    initiator = AoeInitiator(env, testbed.node.vmm_nic,
                             testbed.server_port)
    initiator._tags = chain([7, 7], count(100))
    validator = AoeConformanceValidator(env, initiator=initiator)

    def read(lba):
        try:
            yield from initiator.read_blocks(lba, 64)
        except AoeTimeoutError:
            pass

    env.process(read(0))
    env.process(read(1024))
    env.run(until=env.now + 10.0)
    rules = [v.rule for v in validator.violations]
    assert "duplicate-tag" in rules


# -- AoE conformance: NAK must invalidate the directory ----------------------

class _StubInitiator:
    def __init__(self):
        self.observers = []

    def emit(self, kind, **fields):
        for observer in self.observers:
            observer(kind, **fields)


def make_nak_validator():
    env = Environment()
    fabric = DistFabric(["server-0"], p2p=True)
    stub = _StubInitiator()
    validator = AoeConformanceValidator(env, initiator=stub,
                                        fabric=fabric)
    return fabric, stub, validator


def _nak(stub, fabric, target, block):
    stub.emit("nak", tag=3, target=target,
              lba=block * fabric.block_sectors,
              sector_count=fabric.block_sectors, reason="stale")


def test_nak_without_invalidate_reported():
    fabric, stub, validator = make_nak_validator()
    fabric.directory.publish("peer-1", {0, 1, 2})
    _nak(stub, fabric, "peer-1", 0)
    validator.finalize()
    assert [v.rule for v in validator.violations] == \
        ["nak-without-invalidate"]


def test_invalidate_resolves_nak_expectation():
    fabric, stub, validator = make_nak_validator()
    fabric.directory.publish("peer-1", {0, 1, 2})
    _nak(stub, fabric, "peer-1", 0)
    fabric.directory.invalidate("peer-1", 0)
    validator.finalize()
    assert validator.violations == []


def test_republish_dropping_block_resolves_nak_expectation():
    fabric, stub, validator = make_nak_validator()
    fabric.directory.publish("peer-1", {0, 1})
    _nak(stub, fabric, "peer-1", 1)
    fabric.directory.publish("peer-1", {0})
    validator.finalize()
    assert validator.violations == []


def test_nak_from_origin_server_needs_no_invalidation():
    fabric, stub, validator = make_nak_validator()
    _nak(stub, fabric, "server-0", 0)  # origins are not in the directory
    validator.finalize()
    assert validator.violations == []


# -- the sanitized-deploy fixture (cluster-wide attachment) ------------------

def test_sanitized_cluster_fixture_runs_clean(sanitized_cluster):
    testbed, cluster, suite = sanitized_cluster(node_count=2, p2p=True)
    assert len(suite.sanitizers) == 6  # 3 per VMM
    suite.assert_clean()
