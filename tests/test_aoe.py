"""Tests for the extended AoE protocol: fragmentation, client, server."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import params
from repro.aoe.client import AoeInitiator, AoeTimeoutError
from repro.aoe.protocol import (
    ReassemblyBuffer,
    fragment_count,
    sectors_per_frame,
    split_read_reply,
)
from repro.aoe.server import AoeServer, ImageStore
from repro.net import EthernetSwitch, LossModel, Nic
from repro.sim import Environment
from repro.util.intervalmap import IntervalMap


# -- protocol fragmentation -------------------------------------------------------

def test_sectors_per_frame_jumbo_vs_standard():
    jumbo = sectors_per_frame(params.GBE_MTU)
    standard = sectors_per_frame(params.ETH_MTU_STANDARD)
    assert jumbo == 17
    assert standard == 2


def test_sectors_per_frame_too_small_mtu():
    with pytest.raises(ValueError):
        sectors_per_frame(256)


def test_fragment_count():
    assert fragment_count(1, params.GBE_MTU) == 1
    assert fragment_count(17, params.GBE_MTU) == 1
    assert fragment_count(18, params.GBE_MTU) == 2
    assert fragment_count(2048, params.GBE_MTU) == 121


def test_split_and_reassemble_roundtrip():
    runs = [(0, 10, "a"), (10, 40, "b"), (40, 64, None)]
    fragments = split_read_reply(tag=7, lba=0, runs=runs, mtu=params.GBE_MTU)
    buffer = ReassemblyBuffer(7)
    for fragment in reversed(fragments):  # out-of-order arrival
        buffer.add(fragment)
    assert buffer.complete
    assembled = buffer.assemble()
    # Reassembly must cover the same sectors with the same tokens.
    flat = {}
    for start, end, token in assembled:
        for key in range(start, end):
            flat[key] = token
    for key in range(64):
        expected = "a" if key < 10 else ("b" if key < 40 else None)
        assert flat[key] == expected


def test_reassembly_duplicate_fragments_idempotent():
    runs = [(0, 34, "x")]
    fragments = split_read_reply(tag=1, lba=0, runs=runs, mtu=params.GBE_MTU)
    buffer = ReassemblyBuffer(1)
    buffer.add(fragments[0])
    buffer.add(fragments[0])
    assert not buffer.complete
    buffer.add(fragments[1])
    assert buffer.complete


def test_reassembly_wrong_tag_rejected():
    runs = [(0, 2, "x")]
    [fragment] = split_read_reply(tag=1, lba=0, runs=runs, mtu=9000)
    buffer = ReassemblyBuffer(2)
    with pytest.raises(ValueError):
        buffer.add(fragment)


def test_incomplete_assemble_rejected():
    buffer = ReassemblyBuffer(1)
    with pytest.raises(ValueError):
        buffer.assemble()


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 500), st.integers(0, 1000),
       st.sampled_from([1500, 4000, 9000]))
def test_fragments_tile_exactly(sector_count, lba, mtu):
    """Fragments must cover [lba, lba+n) exactly once, in order."""
    runs = [(lba, lba + sector_count, "t")]
    fragments = split_read_reply(tag=0, lba=lba, runs=runs, mtu=mtu)
    assert len(fragments) == fragment_count(sector_count, mtu)
    cursor = lba
    for fragment in fragments:
        assert fragment.lba == cursor
        assert fragment.sector_count >= 1
        assert fragment.payload_bytes <= mtu
        cursor += fragment.sector_count
    assert cursor == lba + sector_count


# -- client/server end-to-end ----------------------------------------------------------

def make_aoe(loss=0.0, workers=8, mtu=None, poll_interval=0.0, seed=7):
    env = Environment()
    kwargs = {}
    if mtu is not None:
        kwargs["mtu"] = mtu
    switch = EthernetSwitch(env, loss=LossModel(loss, seed=seed), **kwargs)
    client_nic = Nic(env, switch, "vmm0")
    server_nic = Nic(env, switch, "server", rx_ring_size=4096)
    image = IntervalMap()
    image.set_range(0, 1 << 20, ("img", 0))
    store = ImageStore(env, image, image_sectors=1 << 20)
    server = AoeServer(env, server_nic, store, workers=workers)
    server.start()
    client = AoeInitiator(env, client_nic, "server",
                          poll_interval=poll_interval)
    client.start()
    return env, client, server, store


def run(env, generator):
    return env.run(until=env.process(generator))


def test_read_returns_image_runs():
    env, client, server, store = make_aoe()

    def proc():
        runs = yield from client.read_blocks(100, 64)
        return runs

    runs = run(env, proc())
    assert runs == [(100, 164, ("img", 0))]
    assert client.reads_completed == 1
    assert server.commands_served == 1


def test_large_read_fragments_on_wire():
    env, client, server, store = make_aoe()
    sectors = 2048  # 1 MB

    def proc():
        runs = yield from client.read_blocks(0, sectors)
        return runs

    runs = run(env, proc())
    assert runs[0][2] == ("img", 0)
    assert server.fragments_sent == fragment_count(sectors, params.GBE_MTU)


def test_read_throughput_near_line_rate():
    """Bulk reads with jumbo frames should achieve most of gigabit."""
    env, client, server, store = make_aoe()
    total_mb = 64

    def proc():
        for block in range(total_mb):
            yield from client.read_blocks(block * 2048, 2048)

    run(env, proc())
    throughput = total_mb * 2**20 / env.now
    assert throughput > 80e6  # > 80 MB/s over GbE


def test_standard_mtu_slower_than_jumbo():
    def elapsed_for(mtu):
        env, client, server, store = make_aoe(mtu=mtu)

        def proc():
            for block in range(8):
                yield from client.read_blocks(block * 2048, 2048)

        run(env, proc())
        return env.now

    assert elapsed_for(1500) > elapsed_for(9000)


def test_retransmission_recovers_from_loss():
    env, client, server, store = make_aoe(loss=0.05, seed=3)

    def proc():
        for block in range(20):
            runs = yield from client.read_blocks(block * 1024, 1024)
            assert runs[0][2] == ("img", 0)

    run(env, proc())
    assert client.retransmissions > 0
    assert client.reads_completed == 20


def test_heavy_loss_eventually_gives_up():
    env, client, server, store = make_aoe(loss=0.95, seed=11)

    def proc():
        yield from client.read_blocks(0, 2048)

    with pytest.raises(AoeTimeoutError):
        run(env, proc())


def test_write_blocks_stores_on_server():
    env, client, server, store = make_aoe()

    def proc():
        yield from client.write_blocks(50, 10, [(50, 60, "written")])

    run(env, proc())
    assert store.contents.get(55) == "written"
    assert client.writes_completed == 1


def test_rtt_estimator_converges():
    env, client, server, store = make_aoe()

    def proc():
        for _ in range(30):
            yield from client.read_blocks(0, 17)

    run(env, proc())
    # One-fragment read over an idle switch: sub-millisecond RTT.
    assert 0 < client.srtt < 2e-3
    assert client.rto >= client.min_rto


def test_poll_interval_adds_latency():
    def mean_latency(poll_interval):
        env, client, server, store = make_aoe(poll_interval=poll_interval)
        samples = []

        def proc():
            for _ in range(10):
                start = env.now
                yield from client.read_blocks(0, 17)
                samples.append(env.now - start)

        run(env, proc())
        return sum(samples) / len(samples)

    fast = mean_latency(0.0)
    slow = mean_latency(1e-3)
    assert slow > fast
    assert slow - fast == pytest.approx(0.5e-3, rel=0.3)


def test_single_threaded_vblade_bottlenecks():
    """Stock vblade (1 worker) serves concurrent reads slower than the
    thread-pool version (paper 4.2)."""
    def elapsed_for(workers):
        env, client, server, store = make_aoe(workers=workers)
        procs = []

        def reader(base):
            for block in range(4):
                yield from client.read_blocks(base + block * 2048, 2048)

        for stream in range(6):
            procs.append(env.process(reader(stream * 100000)))
        env.run()
        return env.now

    single = elapsed_for(1)
    pooled = elapsed_for(8)
    assert single > pooled * 1.1


def test_server_stop_terminates_cleanly():
    env, client, server, store = make_aoe()

    def proc():
        yield from client.read_blocks(0, 17)

    run(env, proc())
    server.stop()
    client.stop()
    env.run()
